//! serve_timeline: renders the serving telemetry plane end to end and
//! proves its central claim — the `sa.events.v1` lifecycle event log is
//! a **complete** record of a serving run, sufficient to reconstruct
//! every aggregate SLO number without touching the plans or the ledger.
//!
//! Four legs:
//!
//! 1. **Reconstruction sweep**: replays the exact `slo_sweep` workload
//!    grid (3 arrival shapes × the rate ladder, 3 tenants) through both
//!    planners' `*_with_events` variants and rebuilds each point's
//!    [`SloSummary`] *from the event log alone* (terminal kinds, first
//!    token stamps, and the regenerated request stream). Every
//!    reconstructed summary must equal the plan-derived one bit for bit
//!    — including `goodput_per_sec` — and, when `<out>/slo_report.json`
//!    exists with the same seed, must match its numbers too.
//! 2. **Timelines**: the richest sweep point's event log is folded into
//!    per-tenant virtual-time bins ([`sa_trace::Timeline`]): TTFT and
//!    TPOT observations, goodput counts, rung degradations, and the
//!    governor's pressure actions (defer / evict / shed).
//! 3. **Flight recorder**: a forced governor shed (one giant prefill
//!    pinning a shrunken budget at critical pressure, a second urgent
//!    giant that cannot be placed) must dump a postmortem carrying the
//!    planner decisions that led up to it.
//! 4. **Thread invariance**: the fault-storm workload runs through
//!    [`Scheduler::run_continuous_with_events`] under the chaos fault
//!    plan at `SA_THREADS` 1 / 2 / default; the serialized event log
//!    must be byte-identical, and the events↔ledger conservation
//!    validator must pass on the reconciled pair.
//!
//! Outputs:
//! - stdout: the sweep table, timeline digest, and postmortems;
//! - `results/serve_timeline.json` (`sa.serve_timeline.v1`);
//! - `results/serve_timeline.txt`: the rendered timeline + postmortem
//!   digest (what you read first when debugging a bad SLO run).
//!
//! Flags: `--seed <u64>`, `--quick` (fewer rates, shorter streams),
//! `--out <dir>`. `SA_METRICS=<path>` additionally writes the whole
//! metrics registry in Prometheus text exposition format.

use sa_bench::{f, render_table, write_json, Args};
use sa_serve::{
    fault_storm_workload, open_loop_workload, plan_batch_with_events,
    plan_continuous_with_events, Event, EventKind, EventLog, LatencyStats, Postmortem, Request,
    Scheduler, ServeConfig, SloSummary, TenantQuality, SLO_SCHEMA,
};
use sa_tensor::fault::{self, FaultPlan};
use sa_tensor::pool;
use sa_trace::{MetricsExport, Timeline, TimelineSnapshot};
use sa_workloads::{ArrivalProcess, ArrivalShape};
use std::collections::BTreeMap;

/// Results-file schema tag of `results/serve_timeline.json`.
const TIMELINE_SCHEMA: &str = "sa.serve_timeline.v1";

/// Timeline bin width on the serving virtual clock, ms.
const BIN_MS: u64 = 1_000;

/// One (shape × rate) point: the SLO summaries reconstructed from the
/// event logs alone, plus the equality verdicts.
#[derive(Debug, Clone, PartialEq)]
struct TimelinePoint {
    /// Arrival-rate shape (`constant` / `diurnal` / `flash_crowd`).
    shape: String,
    /// Mean arrival rate, requests per virtual second.
    rate_per_sec: f64,
    /// Stream duration, virtual ms.
    duration_ms: u64,
    /// Requests the stream drew.
    requests: u64,
    /// Events the continuous planner emitted for the stream.
    events: u64,
    /// Continuous-leg summary rebuilt from events alone.
    continuous: SloSummary,
    /// One-shot-leg summary rebuilt from events alone.
    oneshot: SloSummary,
    /// Whether both reconstructions equal the plan-derived summaries
    /// bit for bit.
    exact_match: bool,
    /// Whether both event logs passed the memory-conservation replay.
    conservation_ok: bool,
}

sa_json::impl_json_struct!(TimelinePoint {
    shape,
    rate_per_sec,
    duration_ms,
    requests,
    events,
    continuous,
    oneshot,
    exact_match,
    conservation_ok
});

/// The `results/serve_timeline.json` payload.
#[derive(Debug, Clone, PartialEq)]
struct TimelineReport {
    /// Results-file schema tag ([`TIMELINE_SCHEMA`]).
    schema: String,
    /// Workload / scheduler seed.
    seed: u64,
    /// Tenants sharing the token-bucket quotas.
    tenants: u64,
    /// Timeline bin width, virtual ms.
    bin_ms: u64,
    /// Whether every point's event-log reconstruction equaled the
    /// plan-derived summary bit for bit.
    all_points_exact: bool,
    /// Whether the reconstructed goodput matched `<out>/slo_report.json`
    /// per point (false when the report is absent or seeded differently).
    matches_slo_report: bool,
    /// Whether the fault-storm event log was byte-identical at
    /// `SA_THREADS` 1 / 2 / default.
    identical_across_threads: bool,
    /// Whether every event log (sweep, shed scenario, storm) passed the
    /// events↔ledger conservation validator.
    conservation_ok: bool,
    /// The sweep, one entry per (shape × rate).
    points: Vec<TimelinePoint>,
    /// Per-tenant binned timelines of the richest sweep point.
    timeline: TimelineSnapshot,
    /// Flight-recorder dumps: the forced-shed scenario's postmortems
    /// followed by any the sweep itself produced.
    postmortems: Vec<Postmortem>,
    /// Requests in the fault-storm thread-invariance leg.
    storm_requests: u64,
    /// Events in the canonical (single-threaded) storm log.
    storm_events: u64,
}

sa_json::impl_json_struct!(TimelineReport {
    schema,
    seed,
    tenants,
    bin_ms,
    all_points_exact,
    matches_slo_report,
    identical_across_threads,
    conservation_ok,
    points,
    timeline,
    postmortems,
    storm_requests,
    storm_events
});

/// The `slo_sweep` arrival-shape grid, replicated exactly.
fn shapes() -> Vec<(&'static str, ArrivalShape)> {
    vec![
        ("constant", ArrivalShape::Constant),
        (
            "diurnal",
            ArrivalShape::Diurnal {
                period_ms: 20_000,
                depth: 0.7,
            },
        ),
        (
            "flash_crowd",
            ArrivalShape::FlashCrowd {
                quiet_ms: 12_000,
                burst_ms: 3_000,
                multiplier: 5.0,
            },
        ),
    ]
}

/// The accounting window (first arrival → last deadline), replicating
/// `sa_serve::slo`'s private helper operation for operation.
fn stream_span_ms(requests: &[Request]) -> u64 {
    let first_arrival = requests.iter().map(|r| r.arrival_ms).min();
    let last_deadline = requests
        .iter()
        .map(|r| r.arrival_ms.saturating_add(r.deadline_ms))
        .max();
    match (first_arrival, last_deadline) {
        (Some(a), Some(d)) => d.saturating_sub(a).max(1),
        _ => 0,
    }
}

/// Goodput with the same guards as `sa_serve::slo` (0.0, never NaN).
fn goodput_per_sec(within: u64, span_ms: u64) -> f64 {
    if span_ms == 0 {
        return 0.0;
    }
    let rate = within as f64 * 1000.0 / span_ms as f64;
    if rate.is_finite() {
        rate
    } else {
        0.0
    }
}

/// One request's contribution to the per-tenant quality rows,
/// replicating `sa_serve::slo`'s private accounting from event-borne
/// facts alone.
struct Contribution {
    tenant: u64,
    served: bool,
    certified: bool,
    uncertified_rung: bool,
    tokens: u64,
    shed_floor: bool,
}

/// Folds contributions into sorted per-tenant [`TenantQuality`] rows,
/// mirroring the library's fold bit for bit.
fn tenant_rows(contribs: &[Contribution]) -> Vec<TenantQuality> {
    let mut tenants: Vec<u64> = contribs.iter().map(|c| c.tenant).collect();
    tenants.sort_unstable();
    tenants.dedup();
    tenants
        .into_iter()
        .map(|tenant| {
            let mut row = TenantQuality {
                tenant,
                served: 0,
                served_certified: 0,
                served_tokens: 0,
                uncertified_tokens: 0,
                uncertified_permille: 0,
                shed_quality_floor: 0,
            };
            for c in contribs.iter().filter(|c| c.tenant == tenant) {
                if c.served {
                    row.served += 1;
                    row.served_tokens += c.tokens;
                    if c.certified {
                        row.served_certified += 1;
                    }
                    if c.uncertified_rung {
                        row.uncertified_tokens += c.tokens;
                    }
                }
                if c.shed_floor {
                    row.shed_quality_floor += 1;
                }
            }
            if row.served_tokens > 0 {
                row.uncertified_permille = row.uncertified_tokens * 1000 / row.served_tokens;
            }
            row
        })
        .collect()
}

/// Shared tail of both reconstructions: outcome tallies from terminal
/// event kinds. Quality columns come from event-borne facts too: the
/// terminal rung string (`window_only` is the uncertifiable rung) and
/// the shed reason prefix (`"quality floor"` distinguishes a
/// quality-floor shed from a governor load shed).
#[derive(Default)]
struct Tally {
    served: u64,
    within: u64,
    rejected: u64,
    deadline_missed: u64,
    cancelled: u64,
    failed: u64,
    shed_floor: u64,
    certified: u64,
    contribs: Vec<Contribution>,
    ttft: Vec<u64>,
    tpot: Vec<u64>,
}

impl Tally {
    fn into_summary(self, scheduler: &str, requests: &[Request]) -> SloSummary {
        let span_ms = stream_span_ms(requests);
        SloSummary {
            schema: SLO_SCHEMA.to_string(),
            scheduler: scheduler.to_string(),
            requests: requests.len() as u64,
            served: self.served,
            served_within_deadline: self.within,
            rejected: self.rejected,
            deadline_missed: self.deadline_missed,
            cancelled: self.cancelled,
            failed: self.failed,
            shed_quality_floor: self.shed_floor,
            served_certified: self.certified,
            span_ms,
            goodput_per_sec: goodput_per_sec(self.within, span_ms),
            certified_goodput_per_sec: goodput_per_sec(self.certified, span_ms),
            ttft: LatencyStats::from_samples(&self.ttft),
            tpot: LatencyStats::from_samples(&self.tpot),
            tenants: tenant_rows(&self.contribs),
        }
    }

    fn count_terminal(&mut self, term: &Event, req: &Request) {
        let served = term.kind == EventKind::Completed;
        let in_deadline = served && term.t_ms <= req.arrival_ms + req.deadline_ms;
        let can_certify = term.rung != "window_only";
        let is_floor_shed =
            term.kind == EventKind::Shed && term.reason.starts_with("quality floor");
        match term.kind {
            EventKind::Completed => {
                self.served += 1;
                if in_deadline {
                    self.within += 1;
                    if can_certify {
                        self.certified += 1;
                    }
                }
            }
            EventKind::Rejected => self.rejected += 1,
            EventKind::Shed => {
                if is_floor_shed {
                    self.shed_floor += 1;
                } else {
                    self.rejected += 1;
                }
            }
            EventKind::Expired | EventKind::DeadlineExceeded => self.deadline_missed += 1,
            EventKind::Cancelled => self.cancelled += 1,
            EventKind::Failed => self.failed += 1,
            _ => {}
        }
        self.contribs.push(Contribution {
            tenant: req.tenant,
            served,
            certified: in_deadline && can_certify,
            uncertified_rung: served && !can_certify,
            tokens: req.seq_len as u64 + req.new_tokens as u64,
            shed_floor: is_floor_shed,
        });
    }
}

/// Rebuilds the continuous-leg [`SloSummary`] from the event log alone:
/// terminal kinds give the outcome tallies, `FirstToken` stamps give
/// TTFT, and `Completed` − `FirstToken` spans give TPOT.
fn continuous_summary_from_events(log: &EventLog, requests: &[Request]) -> SloSummary {
    let terminals = log.terminals();
    let mut first_token: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in &log.events {
        if ev.kind == EventKind::FirstToken {
            first_token.insert(ev.request_id, ev.t_ms);
        }
    }
    let mut tally = Tally::default();
    for req in requests {
        let Some(term) = terminals.get(&req.id) else {
            continue;
        };
        tally.count_terminal(term, req);
        if let Some(&ft) = first_token.get(&req.id) {
            tally.ttft.push(ft.saturating_sub(req.arrival_ms));
            if term.kind == EventKind::Completed && req.new_tokens > 1 {
                let decode_span = term.t_ms.saturating_sub(ft);
                tally.tpot.push(decode_span / (req.new_tokens as u64 - 1));
            }
        }
    }
    tally.into_summary("continuous", requests)
}

/// Rebuilds the one-shot-leg [`SloSummary`] from the event log alone.
/// The one-shot planner holds a slot for the whole request, so TTFT is
/// analytic: the final prefill chunk lands one decode tail before the
/// terminal `Completed` stamp.
fn oneshot_summary_from_events(log: &EventLog, requests: &[Request]) -> SloSummary {
    let terminals = log.terminals();
    let mut tally = Tally::default();
    for req in requests {
        let Some(term) = terminals.get(&req.id) else {
            continue;
        };
        tally.count_terminal(term, req);
        if term.kind == EventKind::Completed {
            let per_token = (req.seq_len as u64 / 16).max(1);
            let tail = (req.new_tokens as u64).saturating_sub(1) * per_token;
            tally.ttft.push(
                term.t_ms
                    .saturating_sub(tail)
                    .saturating_sub(req.arrival_ms)
                    .max(1),
            );
            if req.new_tokens > 1 {
                tally.tpot.push(per_token);
            }
        }
    }
    tally.into_summary("oneshot", requests)
}

/// Folds a continuous event log into per-tenant binned timelines plus
/// the governor's pressure-action series.
fn build_timeline(log: &EventLog, requests: &[Request]) -> TimelineSnapshot {
    let arrivals: BTreeMap<u64, u64> = requests.iter().map(|r| (r.id, r.arrival_ms)).collect();
    let deadlines: BTreeMap<u64, u64> = requests
        .iter()
        .map(|r| (r.id, r.arrival_ms + r.deadline_ms))
        .collect();
    let new_tokens: BTreeMap<u64, u64> =
        requests.iter().map(|r| (r.id, r.new_tokens as u64)).collect();
    let mut first_token: BTreeMap<u64, u64> = BTreeMap::new();
    let mut tl = Timeline::new(BIN_MS);
    for ev in &log.events {
        let tenant = ev.tenant;
        match ev.kind {
            EventKind::FirstToken => {
                first_token.insert(ev.request_id, ev.t_ms);
                let arrival = arrivals.get(&ev.request_id).copied().unwrap_or(0);
                tl.observe(
                    &format!("tenant{tenant}.ttft_ms"),
                    ev.t_ms,
                    ev.t_ms.saturating_sub(arrival),
                );
            }
            EventKind::Completed => {
                if deadlines.get(&ev.request_id).is_some_and(|&d| ev.t_ms <= d) {
                    tl.increment(&format!("tenant{tenant}.goodput"), ev.t_ms, 1);
                }
                let toks = new_tokens.get(&ev.request_id).copied().unwrap_or(0);
                if let Some(&ft) = first_token.get(&ev.request_id) {
                    if toks > 1 {
                        tl.observe(
                            &format!("tenant{tenant}.tpot_ms"),
                            ev.t_ms,
                            ev.t_ms.saturating_sub(ft) / (toks - 1),
                        );
                    }
                }
            }
            EventKind::RungDegraded => {
                tl.increment(&format!("tenant{tenant}.rung_degraded"), ev.t_ms, 1)
            }
            EventKind::Deferred => tl.increment("pressure.deferred", ev.t_ms, 1),
            EventKind::PressureEvicted => tl.increment("pressure.evicted", ev.t_ms, 1),
            EventKind::Shed => tl.increment("pressure.shed", ev.t_ms, 1),
            _ => {}
        }
    }
    tl.flush()
}

/// Renders the timeline's series summaries and the postmortem digest —
/// the body of `results/serve_timeline.txt`.
fn render_digest(timeline: &TimelineSnapshot, postmortems: &[Postmortem]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {} series over {} ms bins\n\n",
        timeline.series.len(),
        timeline.bin_ms
    ));
    let rows: Vec<Vec<String>> = timeline
        .series
        .iter()
        .map(|s| {
            let count: u64 = s.bins.iter().map(|b| b.count).sum();
            let sum: u64 = s.bins.iter().map(|b| b.sum).sum();
            let peak = s.bins.iter().map(|b| b.count).max().unwrap_or(0);
            vec![
                s.name.clone(),
                s.bins.len().to_string(),
                count.to_string(),
                sum.to_string(),
                peak.to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["series", "bins", "count", "sum", "peak_bin"],
        &rows,
    ));
    out.push_str(&format!("\npostmortems: {}\n", postmortems.len()));
    for pm in postmortems {
        out.push_str(&format!(
            "\n[{}] t={} ms request {}: {}\n",
            pm.trigger, pm.t_ms, pm.request_id, pm.reason
        ));
        for d in &pm.decisions {
            out.push_str(&format!(
                "  t={} ms {} request {} queue={} inflight={} free={} \
                 contenders={} budget={} ms rung={} pressure={}\n",
                d.t_ms,
                d.action,
                d.request_id,
                d.queue_depth,
                d.inflight,
                d.free_bytes,
                d.contenders,
                d.budget_ms,
                d.rung,
                d.pressure
            ));
        }
    }
    out
}

/// The forced-shed scenario from the governor tests: one giant prefill
/// pins a shrunken budget at critical pressure; a second urgent giant
/// fits the budget alone but cannot be placed and has no decode KV to
/// evict, so the governor sheds it — which must dump a postmortem.
fn forced_shed(seed: u64) -> (Vec<Postmortem>, bool) {
    let base = ServeConfig {
        seed,
        ..ServeConfig::default()
    };
    let probe = Request::prefill(0, 512, 0, 0);
    let giant_bytes = sa_serve::sim::request_bytes(&base, &probe);
    let cfg = ServeConfig {
        mem_budget_bytes: sa_serve::sim::weight_bytes() + giant_bytes + giant_bytes / 2,
        mem_high_permille: 700,
        ..base
    };
    let g1 = Request::prefill(0, 512, 0, 4_096);
    let g2 = Request::prefill(1, 512, 50, 4_146);
    let (_, log) = plan_continuous_with_events(&cfg, &[g1, g2]);
    let conservation_ok = log.check_conservation().is_ok();
    (log.postmortems, conservation_ok)
}

fn main() {
    let args = Args::parse();
    let metrics_export = MetricsExport::from_env();
    let tenants = 3u64;
    let (rates, duration_ms) = if args.quick {
        (vec![1.0, 4.0], 15_000u64)
    } else {
        (vec![0.5, 1.0, 2.0, 4.0, 8.0], 40_000u64)
    };
    let cfg = ServeConfig {
        seed: args.seed,
        ..ServeConfig::default()
    }
    .from_env();

    // --- Leg 1: the reconstruction sweep over the slo_sweep grid. ---
    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut all_exact = true;
    let mut conservation_ok = true;
    let mut sweep_postmortems: Vec<Postmortem> = Vec::new();
    let mut richest: Option<(u64, EventLog, Vec<Request>)> = None;
    for (shape_name, shape) in shapes() {
        for &rate in &rates {
            let process = ArrivalProcess {
                seed: args.seed ^ (rate * 16.0) as u64,
                rate_per_sec: rate,
                shape: shape.clone(),
            };
            let requests = open_loop_workload(args.seed, &process, duration_ms, tenants);
            let (cont_plans, cont_log) = plan_continuous_with_events(&cfg, &requests);
            let (oneshot_plans, oneshot_log) = plan_batch_with_events(&cfg, &requests);

            let continuous = continuous_summary_from_events(&cont_log, &requests);
            let oneshot = oneshot_summary_from_events(&oneshot_log, &requests);
            let from_cont_plans =
                SloSummary::from_continuous_plans("continuous", &cont_plans, &requests);
            let from_oneshot_plans =
                SloSummary::from_oneshot_plans("oneshot", &oneshot_plans, &requests);
            let exact = continuous == from_cont_plans && oneshot == from_oneshot_plans;
            all_exact &= exact;
            let conserved =
                cont_log.check_conservation().is_ok() && oneshot_log.check_conservation().is_ok();
            conservation_ok &= conserved;

            rows.push(vec![
                shape_name.to_string(),
                f(rate, 1),
                requests.len().to_string(),
                cont_log.events.len().to_string(),
                f(continuous.goodput_per_sec, 3),
                f(oneshot.goodput_per_sec, 3),
                if exact { "yes" } else { "NO" }.to_string(),
                if conserved { "yes" } else { "NO" }.to_string(),
            ]);
            let n_events = cont_log.events.len() as u64;
            sweep_postmortems.extend(cont_log.postmortems.iter().cloned());
            if richest.as_ref().map_or(true, |(n, _, _)| n_events > *n) {
                richest = Some((n_events, cont_log, requests.clone()));
            }
            points.push(TimelinePoint {
                shape: shape_name.to_string(),
                rate_per_sec: rate,
                duration_ms,
                requests: requests.len() as u64,
                events: n_events,
                continuous,
                oneshot,
                exact_match: exact,
                conservation_ok: conserved,
            });
        }
    }

    println!(
        "serve timeline: {} points, {} tenants, seed {}\n",
        points.len(),
        tenants,
        args.seed
    );
    println!(
        "{}",
        render_table(
            &[
                "shape",
                "rate/s",
                "reqs",
                "events",
                "goodput(cont)",
                "goodput(1shot)",
                "exact",
                "conserved",
            ],
            &rows
        )
    );

    // Cross-check against the slo_sweep artifact when present: the
    // reconstructed goodput must equal the written report's, per point.
    let slo_path = args.out_dir.join("slo_report.json");
    let matches_slo_report = match sa_bench::load_json::<sa_json::Json>(&slo_path) {
        Ok(report) if report.get("seed").and_then(|v| v.as_i64()) == Some(args.seed as i64) => {
            let report_points = report
                .get("points")
                .and_then(sa_json::Json::as_array)
                .unwrap_or(&[]);
            let goodput_of = |p: &sa_json::Json, leg: &str| -> Option<f64> {
                p.get(leg)
                    .and_then(|s| s.get("goodput_per_sec"))
                    .and_then(sa_json::Json::as_f64)
            };
            let all_match = points.iter().all(|pt| {
                report_points
                    .iter()
                    .find(|rp| {
                        rp.get("shape").and_then(sa_json::Json::as_str)
                            == Some(pt.shape.as_str())
                            && rp.get("rate_per_sec").and_then(sa_json::Json::as_f64)
                                == Some(pt.rate_per_sec)
                            && rp.get("duration_ms").and_then(sa_json::Json::as_i64)
                                == Some(pt.duration_ms as i64)
                    })
                    .is_some_and(|rp| {
                        goodput_of(rp, "continuous") == Some(pt.continuous.goodput_per_sec)
                            && goodput_of(rp, "oneshot") == Some(pt.oneshot.goodput_per_sec)
                    })
            });
            println!(
                "slo_report.json cross-check: {}",
                if all_match { "matched" } else { "MISMATCH" }
            );
            assert!(
                all_match,
                "event-log reconstruction disagrees with {}",
                slo_path.display()
            );
            all_match
        }
        Ok(_) => {
            println!(
                "slo_report.json cross-check: skipped (different seed in {})",
                slo_path.display()
            );
            false
        }
        Err(_) => {
            println!(
                "slo_report.json cross-check: skipped ({} not found)",
                slo_path.display()
            );
            false
        }
    };

    // --- Leg 2: per-tenant timelines of the richest point. ---
    let (_, richest_log, richest_reqs) =
        richest.expect("sweep produced at least one point");
    let timeline = build_timeline(&richest_log, &richest_reqs);

    // --- Leg 3: the forced governor shed dumps a postmortem. ---
    let (shed_postmortems, shed_conserved) = forced_shed(args.seed);
    conservation_ok &= shed_conserved;
    assert!(
        shed_postmortems.iter().any(|p| p.trigger == "shed"),
        "forced governor shed produced no flight-recorder postmortem"
    );
    let mut postmortems = shed_postmortems;
    // The sweep's 30 runs can each dump up to 8 postmortems; keep the
    // artifact readable by carrying only the first few alongside the
    // forced-shed scenario's, and say how many were dropped.
    const SWEEP_POSTMORTEM_CAP: usize = 8;
    if sweep_postmortems.len() > SWEEP_POSTMORTEM_CAP {
        println!(
            "sweep produced {} postmortems; keeping the first {} in the artifact",
            sweep_postmortems.len(),
            SWEEP_POSTMORTEM_CAP
        );
        sweep_postmortems.truncate(SWEEP_POSTMORTEM_CAP);
    }
    postmortems.extend(sweep_postmortems);

    // --- Leg 4: storm thread-invariance + conservation on the
    // reconciled (executed) pair. ---
    let storm_n = if args.quick { 12 } else { 24 };
    let storm = fault_storm_workload(args.seed, storm_n);
    let storm_cfg = ServeConfig {
        seed: args.seed,
        ..ServeConfig::default()
    }
    .from_env();
    let storm_scheduler = Scheduler::new(storm_cfg).expect("tiny model config is valid");
    let mut storm_runs = Vec::new();
    {
        let _storm_faults = fault::install(
            FaultPlan::new(args.seed)
                .serve_crash("serve_attempt", 4)
                .alloc_failures(3)
                .kv_bit_flips(1),
        );
        for t in [Some(1), Some(2), None] {
            let run = || storm_scheduler.run_continuous_with_events(&storm);
            let (ledger, log) = match t {
                Some(n) => pool::with_threads(n, run),
                None => run(),
            }
            .expect("storm replay never fails");
            storm_runs.push((t, ledger, log));
        }
    }
    let canonical_bytes = sa_json::to_string(&storm_runs[0].2);
    let identical_across_threads = storm_runs
        .iter()
        .all(|(_, _, log)| sa_json::to_string(log) == canonical_bytes);
    for (t, ledger, log) in &storm_runs {
        log.validate(ledger).unwrap_or_else(|e| {
            panic!("storm events↔ledger conservation failed at threads {t:?}: {e}")
        });
    }
    let storm_events = storm_runs[0].2.events.len() as u64;
    println!(
        "storm leg: {} requests, {} events, byte-identical at threads 1/2/default: {}",
        storm.len(),
        storm_events,
        if identical_across_threads { "yes" } else { "NO" }
    );
    assert!(
        identical_across_threads,
        "storm event log differs across thread counts"
    );

    // --- Render + write artifacts. ---
    let digest = render_digest(&timeline, &postmortems);
    println!("\n{digest}");
    assert!(all_exact, "an event-log reconstruction missed the plan-derived summary");
    assert!(conservation_ok, "an event log failed memory conservation");

    let report = TimelineReport {
        schema: TIMELINE_SCHEMA.to_string(),
        seed: args.seed,
        tenants,
        bin_ms: BIN_MS,
        all_points_exact: all_exact,
        matches_slo_report,
        identical_across_threads,
        conservation_ok,
        points,
        timeline,
        postmortems,
        storm_requests: storm.len() as u64,
        storm_events,
    };
    if let Some(path) = write_json(&args, "serve_timeline", &report) {
        println!("wrote {}", path.display());
    }
    let txt_path = args.out_dir.join("serve_timeline.txt");
    match std::fs::create_dir_all(&args.out_dir)
        .and_then(|()| std::fs::write(&txt_path, &digest))
    {
        Ok(()) => println!("wrote {}", txt_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", txt_path.display()),
    }
    match metrics_export.finish() {
        Ok(Some(path)) => println!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write SA_METRICS exposition: {e}"),
    }
    println!("verdict: the event log alone reconstructs every SLO aggregate bit-exactly");
}
