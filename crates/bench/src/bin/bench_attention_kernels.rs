//! Micro-benchmarks of the attention kernels: naive full attention vs
//! the blocked flash kernel vs the block-sparse kernel at several
//! densities. The expected shape mirrors the paper's Figure 5(a): sparse
//! wall-clock scales with mask density.
//!
//! Every case is timed twice — pinned to one worker (`SA_THREADS=1`)
//! and at the session's default worker count — so the report and the
//! emitted JSON carry a serial-vs-parallel speedup column. The pool's
//! contract guarantees both legs compute bit-identical outputs.
//!
//! Run with `cargo run -p sa-bench --release --bin bench_attention_kernels`
//! (`--quick` shrinks the size sweep and trial count).

use sa_bench::timing::Bench;
use sa_bench::Args;
use sa_kernels::{
    flash_attention, full_attention, sparse_flash_attention, FlashParams, StructuredMask,
};
use sa_tensor::{DeterministicRng, Matrix};

fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    (
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
    )
}

fn main() {
    let args = Args::parse();
    let d = 64;
    // 4096 exercises the parallel split well past the per-chunk grain;
    // on a multi-core host the pool should win ≥ 2x there.
    let sizes: &[usize] = if args.quick {
        &[256]
    } else {
        &[256, 512, 1024, 4096]
    };
    let mut bench = Bench::new("attention_kernels").trials(if args.quick { 5 } else { 10 });
    for &s in sizes {
        let (q, k, v) = qkv(s, d, args.seed);
        bench.run_serial_parallel(&format!("full/s{s}"), || {
            full_attention(&q, &k, &v, true).unwrap().output
        });
        bench.run_serial_parallel(&format!("flash/s{s}"), || {
            flash_attention(&q, &k, &v, true, FlashParams::default())
                .unwrap()
                .output
        });
        for &window_ratio in &[0.05f32, 0.25] {
            let mask = StructuredMask::builder(s, s)
                .window_ratio(window_ratio)
                .sinks(4)
                .columns((0..s / 64).map(|i| i * 61 % s).collect())
                .build()
                .unwrap();
            bench.run_serial_parallel(
                &format!("sparse_w{:.0}%/s{s}", window_ratio * 100.0),
                || sparse_flash_attention(&q, &k, &v, &mask).unwrap().output,
            );
        }
    }
    print!("{}", bench.report());
    sa_bench::write_json(&args, "bench_attention_kernels", &bench);
}
