//! A/B report for the tiled block-sparse kernel rewrite: the row-major
//! kernel vs the tiled kernel on identical structured masks, timed both
//! pinned to one worker (`SA_THREADS=1`) and at the session's default
//! worker count. The two kernels are bit-identical by contract (the
//! differential suite in `tests/kernel_equivalence.rs` proves it), so the
//! report isolates pure layout/scheduling effects; this binary re-asserts
//! bitwise equality on every case before timing it.
//!
//! Writes `results/tile_kernel.json` (`sa.tile_kernel.v1`), which
//! `fig5_speedup` reads to extend its analytic 32K–96K rows with a
//! measured tiled column.
//!
//! Run with `cargo run -p sa-bench --release --bin tile_kernel`
//! (`--quick` for the 2K/4K smoke sweep).

use std::hint::black_box;
use std::time::{Duration, Instant};

use sa_bench::{f, render_table, write_json, Args};
use sa_core::{select_tile_size, TilePolicy};
use sa_kernels::{sparse_flash_attention, sparse_flash_attention_tiled, StructuredMask, TiledMask};
use sa_tensor::{pool, DeterministicRng, Matrix};

/// Schema tag checked by `tests/results_files.rs`.
const SCHEMA: &str = "sa.tile_kernel.v1";

struct CaseRow {
    seq_len: usize,
    tile: usize,
    nnz: u64,
    density: f64,
    row_major_serial_ns: u64,
    tiled_serial_ns: u64,
    serial_speedup: f64,
    row_major_parallel_ns: u64,
    tiled_parallel_ns: u64,
    parallel_speedup: f64,
    threads: usize,
    bitwise_identical: bool,
}

sa_json::impl_json_struct!(CaseRow {
    seq_len,
    tile,
    nnz,
    density,
    row_major_serial_ns,
    tiled_serial_ns,
    serial_speedup,
    row_major_parallel_ns,
    tiled_parallel_ns,
    parallel_speedup,
    threads,
    bitwise_identical
});

struct Report {
    schema: String,
    rows: Vec<CaseRow>,
    median_serial_speedup: f64,
    median_parallel_speedup: f64,
}

sa_json::impl_json_struct!(Report {
    schema,
    rows,
    median_serial_speedup,
    median_parallel_speedup
});

fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    (
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
    )
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}

/// Times two closures in paired, alternating rounds (one warmup round,
/// then `trials` timed rounds of A-then-B). Interleaving means ambient
/// interference on a shared host lands on both kernels symmetrically
/// instead of poisoning whichever happened to run second.
fn time_paired(
    trials: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Vec<Duration>, Vec<Duration>) {
    black_box(a());
    black_box(b());
    let mut ta = Vec::with_capacity(trials);
    let mut tb = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t = Instant::now();
        black_box(a());
        ta.push(t.elapsed());
        let t = Instant::now();
        black_box(b());
        tb.push(t.elapsed());
    }
    (ta, tb)
}

fn min_ns(xs: &[Duration]) -> u64 {
    xs.iter().map(|d| d.as_nanos() as u64).min().unwrap_or(1)
}

fn median_ns(xs: &[Duration]) -> u64 {
    let mut ns: Vec<u64> = xs.iter().map(|d| d.as_nanos() as u64).collect();
    ns.sort_unstable();
    ns.get(ns.len() / 2).copied().unwrap_or(1)
}

fn main() {
    let args = Args::parse();
    let d = 32;
    let sizes: &[usize] = if args.quick {
        &[2_048, 4_096]
    } else {
        &[4_096, 8_192, 16_384, 32_768]
    };
    let trials = if args.quick { 3 } else { 7 };
    let mut rows: Vec<CaseRow> = Vec::new();

    for &s in sizes {
        let (q, k, v) = qkv(s, d, args.seed);
        // Fig-3-shaped sparsity: a 2% local window, sinks, periodic
        // stripes, and a dense bottom area — the mask the paper's sparse
        // stage actually runs at long context.
        let mask = StructuredMask::builder(s, s)
            .window_ratio(0.02)
            .sinks(4)
            .columns((0..s / 512).map(|i| (i * 509) % s).collect())
            .dense_tail_rows(64)
            .build()
            .expect("bench mask is valid");
        let choice = select_tile_size(&TilePolicy::default(), &mask)
            .expect("autotuner accepts the bench mask");
        let tiling =
            TiledMask::build(mask.clone(), choice.tile).expect("tiling the bench mask succeeds");

        // Bitwise identity check before timing anything.
        let (a, b) = pool::with_threads(1, || {
            (
                sparse_flash_attention(&q, &k, &v, &mask).expect("row-major kernel"),
                sparse_flash_attention_tiled(&q, &k, &v, &tiling).expect("tiled kernel"),
            )
        });
        let bitwise_identical = a
            .output
            .as_slice()
            .iter()
            .zip(b.output.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(bitwise_identical, "kernels diverged at S={s}");

        let run_rm = || {
            black_box(sparse_flash_attention(&q, &k, &v, &mask).expect("row-major kernel"));
        };
        let run_tiled = || {
            black_box(sparse_flash_attention_tiled(&q, &k, &v, &tiling).expect("tiled kernel"));
        };
        let (rm_serial, tl_serial) =
            pool::with_threads(1, || time_paired(trials, run_rm, run_tiled));
        let (rm_par, tl_par) = time_paired(trials, run_rm, run_tiled);
        let threads = pool::current_threads();

        // Speedups use the fastest paired trial of each leg: on a
        // shared/noisy host the minimum is the least-contaminated
        // estimate of the kernel's true cost (medians are recorded too).
        rows.push(CaseRow {
            seq_len: s,
            tile: tiling.tile(),
            nnz: mask.nnz() as u64,
            density: mask.density(),
            row_major_serial_ns: median_ns(&rm_serial),
            tiled_serial_ns: median_ns(&tl_serial),
            serial_speedup: min_ns(&rm_serial) as f64 / min_ns(&tl_serial).max(1) as f64,
            row_major_parallel_ns: median_ns(&rm_par),
            tiled_parallel_ns: median_ns(&tl_par),
            parallel_speedup: min_ns(&rm_par) as f64 / min_ns(&tl_par).max(1) as f64,
            threads,
            bitwise_identical,
        });
    }

    println!(
        "## tile_kernel — paired A/B, {trials} alternating trials per leg\n"
    );
    println!("Tiled vs row-major sparse kernel (median ms; speedups from fastest trial)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}K", r.seq_len / 1024),
                r.tile.to_string(),
                format!("{:.2}%", r.density * 100.0),
                f(r.row_major_serial_ns as f64 / 1e6, 2),
                f(r.tiled_serial_ns as f64 / 1e6, 2),
                format!("{}x", f(r.serial_speedup, 2)),
                f(r.row_major_parallel_ns as f64 / 1e6, 2),
                f(r.tiled_parallel_ns as f64 / 1e6, 2),
                format!("{}x", f(r.parallel_speedup, 2)),
                r.threads.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "S", "tile", "density", "rm serial", "tiled serial", "serial x", "rm par",
                "tiled par", "par x", "threads"
            ],
            &table
        )
    );

    let report = Report {
        schema: SCHEMA.to_string(),
        median_serial_speedup: median(rows.iter().map(|r| r.serial_speedup).collect()),
        median_parallel_speedup: median(rows.iter().map(|r| r.parallel_speedup).collect()),
        rows,
    };
    println!(
        "Median speedups: {}x serial, {}x parallel.",
        f(report.median_serial_speedup, 2),
        f(report.median_parallel_speedup, 2)
    );
    write_json(&args, "tile_kernel", &report);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trip() {
        let report = Report {
            schema: SCHEMA.to_string(),
            rows: vec![CaseRow {
                seq_len: 4096,
                tile: 32,
                nnz: 123,
                density: 0.05,
                row_major_serial_ns: 100,
                tiled_serial_ns: 80,
                serial_speedup: 1.25,
                row_major_parallel_ns: 60,
                tiled_parallel_ns: 50,
                parallel_speedup: 1.2,
                threads: 4,
                bitwise_identical: true,
            }],
            median_serial_speedup: 1.25,
            median_parallel_speedup: 1.2,
        };
        let text = sa_json::to_string(&report);
        let back: Report = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }

    #[test]
    fn median_is_deterministic() {
        assert_eq!(median(vec![]), 1.0);
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
    }
}
