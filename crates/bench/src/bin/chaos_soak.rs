//! chaos_soak: replays a seeded adversarial serving workload through
//! the `sa-serve` scheduler at several `SA_THREADS` settings and
//! asserts the robustness contract end to end:
//!
//! - **zero panics** — every injected worker fault, cancellation, and
//!   rejection surfaces as a typed outcome in the ledger;
//! - **zero lost requests** — the ledger accounts for every submitted
//!   request exactly once ([`Ledger::validate`]);
//! - **deterministic ledger** — the serialized outcome ledger is
//!   bit-identical at 1, 2, and the default number of worker threads;
//! - **no silent degradation** — any request served below the CRA α
//!   target carries `alpha_satisfied = false` in its report.
//!
//! The workload ([`sa_serve::mixed_workload`]) blends chunked prefills
//! and decode sessions with deadline tiers from generous to brutal,
//! caller cancellations, transient worker faults (retried with seeded
//! backoff), and permanent faults (retry budget exhausted).
//!
//! The soak runs **three legs** with the same contract: the one-shot
//! batch scheduler over `mixed_workload`, the continuous-batching
//! scheduler ([`Scheduler::run_continuous`]) over a seeded open-loop
//! flash-crowd arrival stream ([`sa_serve::open_loop_workload`]), and a
//! **fault storm** ([`sa_serve::fault_storm_workload`]) replayed under
//! a globally installed [`FaultPlan`] that layers serving-loop crashes,
//! failed restore allocations, and checkpoint bit-flips on top of the
//! workload's own planned crashes — crash recovery must keep the whole
//! contract: nothing lost, every fault typed, ledgers bit-identical.
//!
//! Outputs:
//! - stdout: outcome tally per thread count and the `serve.*` counters;
//! - `results/chaos_soak.json`: the full ledgers plus soak verdicts.
//!
//! Flags: `--seed <u64>`, `--quick` (12 requests instead of 48, shorter
//! open-loop stream, smaller storm), `--out <dir>`.

use sa_bench::{render_table, write_json, Args};
use sa_serve::{
    fault_storm_workload, mixed_workload, open_loop_workload, Ledger, Outcome, Scheduler,
    ServeConfig,
};
use sa_tensor::fault::{self, FaultPlan};
use sa_tensor::pool;
use sa_trace::metrics;
use sa_workloads::{ArrivalProcess, ArrivalShape};

/// The soak's results-file payload.
#[derive(Debug, Clone, PartialEq)]
struct ChaosSoakReport {
    /// Results-file schema tag.
    schema: String,
    /// Workload and scheduler seed.
    seed: u64,
    /// Requests in the replayed batch.
    requests: u64,
    /// Worker-thread counts the batch was replayed at.
    thread_counts: Vec<u64>,
    /// Whether every replay produced a bit-identical ledger.
    identical_across_threads: bool,
    /// Outcome tally, name → count (sorted by name).
    outcome_counts: Vec<(String, u64)>,
    /// Requests that ran below full attention.
    degraded: u64,
    /// Requests served with the α target certified.
    alpha_certified: u64,
    /// Total retries across the batch.
    retries: u64,
    /// The canonical ledger (from the single-threaded replay).
    ledger: Ledger,
    /// Requests in the open-loop stream of the continuous leg.
    continuous_requests: u64,
    /// Whether the continuous ledger was bit-identical at every
    /// replayed thread count.
    continuous_identical_across_threads: bool,
    /// Continuous-leg outcome tally, name → count (sorted by name).
    continuous_outcome_counts: Vec<(String, u64)>,
    /// The canonical continuous ledger (single-threaded replay).
    continuous_ledger: Ledger,
    /// Requests in the fault-storm leg.
    storm_requests: u64,
    /// Whether the storm ledger was bit-identical at every replayed
    /// thread count.
    storm_identical_across_threads: bool,
    /// Storm-leg outcome tally, name → count (sorted by name).
    storm_outcome_counts: Vec<(String, u64)>,
    /// Attempts across the storm that resumed from a checkpoint.
    storm_recovered_attempts: u64,
    /// Prefill tokens the storm recomputed after crashes.
    storm_recomputed_tokens: u64,
    /// Checkpoints captured during the storm replays.
    storm_checkpoint_snapshots: u64,
    /// Restores the storm's bit-flip faults corrupted (all fell back
    /// to scratch with a typed counter, never a wrong answer).
    storm_checkpoint_corruptions: u64,
    /// Restore stagings the storm's alloc faults failed (ditto).
    storm_alloc_faults: u64,
    /// The canonical storm ledger (single-threaded replay).
    storm_ledger: Ledger,
}

sa_json::impl_json_struct!(ChaosSoakReport {
    schema,
    seed,
    requests,
    thread_counts,
    identical_across_threads,
    outcome_counts,
    degraded,
    alpha_certified,
    retries,
    ledger,
    continuous_requests,
    continuous_identical_across_threads,
    continuous_outcome_counts,
    continuous_ledger,
    storm_requests,
    storm_identical_across_threads,
    storm_outcome_counts,
    storm_recovered_attempts,
    storm_recomputed_tokens,
    storm_checkpoint_snapshots,
    storm_checkpoint_corruptions,
    storm_alloc_faults,
    storm_ledger
});

/// Schema tag of `results/chaos_soak.json`. `v2` added the
/// continuous-batching leg (`continuous_*` fields); `v3` the
/// fault-storm crash-recovery leg (`storm_*` fields).
const SCHEMA: &str = "sa.chaos_soak.v3";

fn outcome_name(o: Outcome) -> &'static str {
    match o {
        Outcome::Served => "served",
        Outcome::RejectedOverloaded => "rejected_overloaded",
        Outcome::RejectedBudget => "rejected_budget",
        Outcome::ExpiredInQueue => "expired_in_queue",
        Outcome::DeadlineExceeded => "deadline_exceeded",
        Outcome::Cancelled => "cancelled",
        Outcome::Failed => "failed",
        Outcome::ShedQualityFloor => "shed_quality_floor",
    }
}

const ALL_OUTCOMES: [Outcome; 8] = [
    Outcome::Served,
    Outcome::RejectedOverloaded,
    Outcome::RejectedBudget,
    Outcome::ExpiredInQueue,
    Outcome::DeadlineExceeded,
    Outcome::Cancelled,
    Outcome::Failed,
    Outcome::ShedQualityFloor,
];

fn main() {
    let args = Args::parse();
    let n = if args.quick { 12 } else { 48 };
    // Counters are gated on the tracing switch; the soak wants them live.
    sa_trace::set_enabled(true);
    metrics::reset();

    // Injected worker faults are *expected* to panic inside the pool's
    // containment; keep their backtraces off the soak's output while
    // leaving any unexpected panic loudly visible.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let cfg = ServeConfig {
        seed: args.seed,
        // Shallow queue so the soak exercises Overloaded rejections as
        // well as queue expiries (the default queue is deep enough that
        // this workload never overflows it).
        max_queue: 3,
        ..ServeConfig::default()
    }
    .from_env();
    let scheduler = Scheduler::new(cfg).expect("tiny model config is valid");
    let requests = mixed_workload(args.seed, n);

    let default_threads = pool::current_threads();
    let mut thread_counts: Vec<usize> = Vec::new();
    for t in [1, 2, default_threads] {
        if !thread_counts.contains(&t) {
            thread_counts.push(t);
        }
    }

    let mut ledgers: Vec<Ledger> = Vec::new();
    for &t in &thread_counts {
        let ledger = pool::with_threads(t, || scheduler.run(&requests))
            .expect("scheduler batch never fails");
        ledger
            .validate(&requests)
            .expect("ledger accounts for every request");
        ledgers.push(ledger);
    }

    let canonical = &ledgers[0];
    let identical = ledgers.iter().all(|l| l == canonical);

    // Outcome tally + soak verdict table.
    let mut rows = Vec::new();
    for (t, ledger) in thread_counts.iter().zip(&ledgers) {
        let mut row = vec![t.to_string()];
        for o in ALL_OUTCOMES {
            row.push(ledger.count(o).to_string());
        }
        row.push(if ledger == canonical { "yes" } else { "NO" }.to_string());
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("threads")
        .chain(ALL_OUTCOMES.iter().map(|&o| outcome_name(o)))
        .chain(std::iter::once("identical"))
        .collect();
    println!("chaos soak: {n} requests, seed {}\n", args.seed);
    println!("{}", render_table(&headers, &rows));

    let snap = metrics::snapshot();
    let serve_counters: Vec<Vec<String>> = snap
        .counters
        .iter()
        .filter(|c| c.name.starts_with("serve."))
        .map(|c| vec![c.name.clone(), c.value.to_string()])
        .collect();
    println!("{}", render_table(&["counter", "value"], &serve_counters));

    assert!(identical, "outcome ledger differs across thread counts");
    let degraded = canonical.records.iter().filter(|r| r.degraded).count() as u64;
    let alpha_certified = canonical
        .records
        .iter()
        .filter(|r| r.alpha_satisfied)
        .count() as u64;
    let retries: u64 = canonical.records.iter().map(|r| r.retries).sum();
    // A seeded mixed workload must actually exercise the machinery.
    assert!(canonical.count(Outcome::Served) > 0, "nothing was served");
    assert!(
        canonical.count(Outcome::Served) < n,
        "no adversity was exercised"
    );
    for rec in &canonical.records {
        assert!(
            !(rec.rung == "window_only" && rec.alpha_satisfied),
            "request {} dropped below alpha silently",
            rec.id
        );
    }

    // --- Continuous leg: the same contract over an open-loop stream. ---
    // A flash-crowd arrival process stresses admission, shedding, and
    // tenant fairness harder than the closed-loop trickle above; the
    // deep default queue lets the continuous planner own its shedding.
    let cont_cfg = ServeConfig {
        seed: args.seed,
        ..ServeConfig::default()
    }
    .from_env();
    let cont_scheduler = Scheduler::new(cont_cfg).expect("tiny model config is valid");
    let process = ArrivalProcess {
        seed: args.seed ^ 0x0511,
        rate_per_sec: 3.0,
        // The quiet/burst cycle is short enough that even the quick
        // stream crosses a burst crest — the leg must shed something,
        // or it proves nothing.
        shape: ArrivalShape::FlashCrowd {
            quiet_ms: 3_000,
            burst_ms: 1_500,
            multiplier: 6.0,
        },
    };
    let cont_duration_ms = if args.quick { 8_000 } else { 20_000 };
    let stream = open_loop_workload(args.seed, &process, cont_duration_ms, 3);

    let mut cont_ledgers: Vec<Ledger> = Vec::new();
    for &t in &thread_counts {
        let ledger = pool::with_threads(t, || cont_scheduler.run_continuous(&stream))
            .expect("continuous replay never fails");
        ledger
            .validate(&stream)
            .expect("continuous ledger accounts for every request");
        cont_ledgers.push(ledger);
    }
    let cont_canonical = &cont_ledgers[0];
    let cont_identical = cont_ledgers.iter().all(|l| l == cont_canonical);

    let mut cont_rows = Vec::new();
    for (t, ledger) in thread_counts.iter().zip(&cont_ledgers) {
        let mut row = vec![t.to_string()];
        for o in ALL_OUTCOMES {
            row.push(ledger.count(o).to_string());
        }
        row.push(if ledger == cont_canonical { "yes" } else { "NO" }.to_string());
        cont_rows.push(row);
    }
    println!(
        "continuous soak: {} open-loop requests over {} ms\n",
        stream.len(),
        cont_duration_ms
    );
    println!("{}", render_table(&headers, &cont_rows));

    assert!(
        cont_identical,
        "continuous ledger differs across thread counts"
    );
    assert!(
        cont_canonical.count(Outcome::Served) > 0,
        "continuous leg served nothing"
    );
    assert!(
        cont_canonical.count(Outcome::Served) < stream.len(),
        "continuous leg exercised no adversity"
    );
    for rec in &cont_canonical.records {
        assert!(
            !(rec.rung == "window_only" && rec.alpha_satisfied),
            "continuous request {} dropped below alpha silently",
            rec.id
        );
    }

    // --- Fault-storm leg: crash recovery under a full fault plan. ---
    // The storm workload's planned crashes (dense `fault_fails`) meet a
    // globally installed plan that also crashes one in four attempt
    // salts outright, fails one in three restore stagings, and flips a
    // bit in every staged checkpoint (caught by the checksum, falling
    // back to scratch). The contract does not bend: zero lost requests,
    // every fault surfaces typed, and the ledger stays bit-identical at
    // every thread count.
    let storm_n = if args.quick { 16 } else { 40 };
    let storm = fault_storm_workload(args.seed, storm_n);
    let storm_cfg = ServeConfig {
        seed: args.seed,
        ..ServeConfig::default()
    }
    .from_env();
    let storm_scheduler = Scheduler::new(storm_cfg).expect("tiny model config is valid");
    let counter_now = |name: &str| {
        metrics::snapshot()
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let base_snapshots = counter_now("serve.checkpoint.snapshots");
    let base_corruptions = counter_now("serve.checkpoint.corruptions");
    let base_alloc = counter_now("serve.pressure.alloc_faults");

    let mut storm_ledgers: Vec<Ledger> = Vec::new();
    {
        let _storm_faults = fault::install(
            FaultPlan::new(args.seed)
                .serve_crash("serve_attempt", 4)
                .alloc_failures(3)
                .kv_bit_flips(1),
        );
        for &t in &thread_counts {
            let ledger = pool::with_threads(t, || storm_scheduler.run_continuous(&storm))
                .expect("storm replay never fails");
            ledger
                .validate(&storm)
                .expect("storm ledger accounts for every request");
            storm_ledgers.push(ledger);
        }
    }
    let storm_canonical = &storm_ledgers[0];
    let storm_identical = storm_ledgers.iter().all(|l| l == storm_canonical);

    let mut storm_rows = Vec::new();
    for (t, ledger) in thread_counts.iter().zip(&storm_ledgers) {
        let mut row = vec![t.to_string()];
        for o in ALL_OUTCOMES {
            row.push(ledger.count(o).to_string());
        }
        row.push(if ledger == storm_canonical { "yes" } else { "NO" }.to_string());
        storm_rows.push(row);
    }
    println!("fault storm: {storm_n} requests under crash/alloc/bit-flip faults\n");
    println!("{}", render_table(&headers, &storm_rows));

    assert!(storm_identical, "storm ledger differs across thread counts");
    assert!(
        storm_canonical.count(Outcome::Served) > 0,
        "storm leg served nothing"
    );
    let storm_recovered: u64 = storm_canonical
        .records
        .iter()
        .map(|r| r.recovered_attempts)
        .sum();
    let storm_recomputed: u64 = storm_canonical
        .records
        .iter()
        .map(|r| r.recomputed_tokens)
        .sum();
    assert!(storm_recovered > 0, "storm leg never resumed a checkpoint");
    let storm_snapshots = counter_now("serve.checkpoint.snapshots") - base_snapshots;
    let storm_corruptions = counter_now("serve.checkpoint.corruptions") - base_corruptions;
    let storm_alloc = counter_now("serve.pressure.alloc_faults") - base_alloc;
    assert!(storm_snapshots > 0, "storm leg captured no checkpoints");
    assert!(
        storm_corruptions > 0,
        "storm bit-flips never tripped the restore checksum"
    );
    assert!(
        storm_alloc > 0,
        "storm alloc faults never hit a restore staging"
    );

    let report = ChaosSoakReport {
        schema: SCHEMA.to_string(),
        seed: args.seed,
        requests: n as u64,
        thread_counts: thread_counts.iter().map(|&t| t as u64).collect(),
        identical_across_threads: identical,
        outcome_counts: ALL_OUTCOMES
            .iter()
            .map(|&o| (outcome_name(o).to_string(), canonical.count(o) as u64))
            .collect(),
        degraded,
        alpha_certified,
        retries,
        ledger: canonical.clone(),
        continuous_requests: stream.len() as u64,
        continuous_identical_across_threads: cont_identical,
        continuous_outcome_counts: ALL_OUTCOMES
            .iter()
            .map(|&o| (outcome_name(o).to_string(), cont_canonical.count(o) as u64))
            .collect(),
        continuous_ledger: cont_canonical.clone(),
        storm_requests: storm_n as u64,
        storm_identical_across_threads: storm_identical,
        storm_outcome_counts: ALL_OUTCOMES
            .iter()
            .map(|&o| (outcome_name(o).to_string(), storm_canonical.count(o) as u64))
            .collect(),
        storm_recovered_attempts: storm_recovered,
        storm_recomputed_tokens: storm_recomputed,
        storm_checkpoint_snapshots: storm_snapshots,
        storm_checkpoint_corruptions: storm_corruptions,
        storm_alloc_faults: storm_alloc,
        storm_ledger: storm_canonical.clone(),
    };
    if let Some(path) = write_json(&args, "chaos_soak", &report) {
        println!("wrote {}", path.display());
    }
    println!(
        "verdict: {} batch + {} continuous + {} storm requests, 0 lost, 0 panics, all ledgers identical at threads {:?}",
        n,
        stream.len(),
        storm_n,
        thread_counts
    );
}
