//! Figure 2: the empirical foundation of adaptive sparsity.
//!
//! - (a) mean SD(α=0.95) per layer for both models at several prompt
//!   lengths — inherently high sparsity, first layer densest;
//! - (b) SD(α=0.95) vs sequence length on needle prompts — sparsity grows
//!   with length;
//! - (c) per-head SD at the longest length — head-specific sparsity with
//!   low-SD outliers;
//! - (d) pattern decomposition per head archetype and the content
//!   dependence of stripe positions (two contexts, same head);
//! - (e) stripe-coverage curve: CRA vs fraction of top-k stripes kept.

use sa_bench::analysis::{head_probs, layer_mean_sd, model_mean_sd, reference_prefill};
use sa_bench::{f, render_table, write_json, Args};
use sa_core::cra::stripe_coverage_curve;
use sa_core::sparsity::{optimal_sparsity_degree, pattern_summary};
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_tensor::col_sum;
use sa_workloads::{needle_grid, NeedleConfig};
#[derive(Default)]
struct Fig2Payload {
    per_layer_sd: Vec<(String, usize, Vec<f64>)>,
    sd_vs_length: Vec<(usize, f64)>,
    per_head_sd: Vec<(usize, usize, f64)>,
    pattern_rows: Vec<(usize, usize, String, f32, f32, f32)>,
    coverage: Vec<(f32, f32, f32)>,
    stripe_positions: Vec<(String, Vec<usize>)>,
}

sa_json::impl_json_struct!(Fig2Payload {
    per_layer_sd,
    sd_vs_length,
    per_head_sd,
    pattern_rows,
    coverage,
    stripe_positions
});

fn needle_tokens(vocab: usize, length: usize, seed: u64) -> Vec<u32> {
    let cells = needle_grid(
        vocab,
        &NeedleConfig {
            lengths: vec![length],
            depth_intervals: 1,
            seed,
        },
    );
    cells.into_iter().next().expect("one cell").task.tokens
}

fn main() {
    let args = Args::parse();
    let alpha = 0.95f32;
    let mut payload = Fig2Payload::default();

    let (len_short, len_long) = if args.quick { (192, 384) } else { (384, 1024) };

    // ---- (a) per-layer SD for both models ----
    println!("Figure 2(a): mean SD(alpha=0.95) per layer\n");
    let mut rows_a = Vec::new();
    for (name, config) in [
        ("ChatGLM2-like", ModelConfig::chatglm2_like(args.seed)),
        ("InternLM2-like", ModelConfig::internlm2_like(args.seed ^ 1)),
    ] {
        let model = SyntheticTransformer::new(config).expect("valid config");
        for length in [len_short, len_long] {
            let tokens = needle_tokens(config.vocab_size, length, args.seed);
            let reference = reference_prefill(&model, &tokens).expect("prefill");
            let sds: Vec<f64> = (0..config.num_layers)
                .map(|l| layer_mean_sd(&model, &reference, l, alpha).expect("sd"))
                .collect();
            rows_a.push(vec![
                name.to_string(),
                length.to_string(),
                sds.iter().map(|s| f(s * 100.0, 1)).collect::<Vec<_>>().join("  "),
            ]);
            payload.per_layer_sd.push((name.to_string(), length, sds));
        }
    }
    println!("{}", render_table(&["model", "S", "SD% per layer (0..L)"], &rows_a));
    println!("(expected shape: all layers > ~50%, layer 0 visibly lowest)\n");

    // ---- (b) SD vs length ----
    println!("Figure 2(b): mean SD(alpha=0.95) vs sequence length (needle prompts)\n");
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(args.seed)).expect("model");
    let lengths: Vec<usize> = if args.quick {
        vec![128, 256, 384]
    } else {
        vec![128, 256, 512, 768, 1024]
    };
    let mut rows_b = Vec::new();
    for &length in &lengths {
        let tokens = needle_tokens(model.config().vocab_size, length, args.seed ^ 2);
        let reference = reference_prefill(&model, &tokens).expect("prefill");
        let sd = model_mean_sd(&model, &reference, alpha).expect("sd");
        rows_b.push(vec![length.to_string(), format!("{}%", f(sd * 100.0, 2))]);
        payload.sd_vs_length.push((length, sd));
    }
    println!("{}", render_table(&["S", "mean SD(0.95)"], &rows_b));
    println!("(expected shape: increasing with S, as in the paper)\n");

    // ---- (c) per-head SD at the longest length ----
    println!("Figure 2(c): per-head SD(alpha=0.95) at S={len_long}\n");
    let tokens = needle_tokens(model.config().vocab_size, len_long, args.seed ^ 3);
    let reference = reference_prefill(&model, &tokens).expect("prefill");
    let mut rows_c = Vec::new();
    let mut min_sd = (1.0f64, 0usize, 0usize);
    let mut max_sd = (0.0f64, 0usize, 0usize);
    for l in 0..model.config().num_layers {
        let mut cells = vec![format!("L{l}")];
        for h in 0..model.config().num_heads {
            let p = head_probs(&model, &reference, l, h).expect("probs");
            let (sd, _) = optimal_sparsity_degree(&p, alpha);
            if sd < min_sd.0 {
                min_sd = (sd, l, h);
            }
            if sd > max_sd.0 {
                max_sd = (sd, l, h);
            }
            cells.push(f(sd * 100.0, 1));
            payload.per_head_sd.push((l, h, sd));
        }
        rows_c.push(cells);
    }
    let mut headers_c = vec!["layer".to_string()];
    headers_c.extend((0..model.config().num_heads).map(|h| format!("h{h}")));
    let headers_ref: Vec<&str> = headers_c.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&headers_ref, &rows_c));
    println!(
        "lowest-SD head: L{}H{} at {}%; highest: L{}H{} at {}%",
        min_sd.1,
        min_sd.2,
        f(min_sd.0 * 100.0, 1),
        max_sd.1,
        max_sd.2,
        f(max_sd.0 * 100.0, 1)
    );
    println!("(paper: 27.4% to 99.8% across heads — large head-specific disparities)\n");

    // ---- (d) pattern decomposition + content-awareness ----
    println!("Figure 2(d): window/stripe/sink mass per head (layer 1)\n");
    let mut rows_d = Vec::new();
    let window = model.config().hidden_dim().min(len_long / 12);
    for h in 0..model.config().num_heads {
        let p = head_probs(&model, &reference, 1, h).expect("probs");
        let sum = pattern_summary(&p, window, 8, 4);
        let arch = model.layers()[1].archetype(h);
        rows_d.push(vec![
            format!("h{h}"),
            arch.dominant().to_string(),
            format!("{}%", f(sum.window_mass as f64 * 100.0, 1)),
            format!("{}%", f(sum.stripe_mass as f64 * 100.0, 1)),
            format!("{}%", f(sum.sink_mass as f64 * 100.0, 1)),
            format!("{}%", f(sum.residual_mass as f64 * 100.0, 1)),
        ]);
        payload.pattern_rows.push((
            1,
            h,
            arch.dominant().to_string(),
            sum.window_mass,
            sum.stripe_mass,
            sum.residual_mass,
        ));
    }
    println!(
        "{}",
        render_table(
            &["head", "archetype", "window", "stripes", "(sinks)", "residual"],
            &rows_d
        )
    );

    // Content-awareness: same head, two contexts, stripe location moves.
    println!("content-awareness check (same head, two contexts):\n");
    let retrieval_head = (0..model.config().num_heads)
        .find(|&h| model.layers()[1].archetype(h).retrieval >= 0.5)
        .expect("model has a retrieval head");
    let cells = needle_grid(
        model.config().vocab_size,
        &NeedleConfig {
            lengths: vec![len_short],
            depth_intervals: 4,
            seed: args.seed ^ 10,
        },
    );
    for (label, cell) in [("context A", &cells[0]), ("context B", &cells[2])] {
        let reference = reference_prefill(&model, &cell.task.tokens).expect("prefill");
        let p = head_probs(&model, &reference, 1, retrieval_head).expect("probs");
        let scores = col_sum(&p);
        let top: Vec<usize> = sa_tensor::top_k_indices(&scores, 4);
        println!(
            "  {label} (needle at depth {}): top stripe columns of L1H{retrieval_head} = {top:?}",
            f(cell.depth_fraction, 2)
        );
        payload.stripe_positions.push((label.to_string(), top));
    }
    println!("(expected: different stripe positions — patterns are content-aware)\n");

    // ---- (e) stripe coverage curve, exact vs 5% sampled ranking ----
    println!("Figure 2(e): CRA vs ratio of selected top-k stripes (L1 retrieval head)\n");
    let tokens = needle_tokens(model.config().vocab_size, len_long, args.seed ^ 4);
    let reference = reference_prefill(&model, &tokens).expect("prefill");
    let hidden = &reference.layer_inputs[1];
    let (q, k, _v) = model.layers()[1]
        .project_head(hidden, retrieval_head)
        .expect("projection");
    let p = sa_kernels::attention_probs(&q, &k, true).expect("probs");
    let exact_scores = col_sum(&p);
    let sampled = sa_core::sampling::sample_attention_scores(&q, &k, 0.05).expect("sampling");
    let ratios = [0.025f32, 0.05, 0.1, 0.2, 0.4, 0.8];
    let win = (0.02 * len_long as f32) as usize;
    let exact_curve = stripe_coverage_curve(&p, &exact_scores, win, &ratios).expect("coverage curve");
    let sampled_curve =
        stripe_coverage_curve(&p, &sampled.column_scores, win, &ratios).expect("coverage curve");
    let rows_e: Vec<Vec<String>> = ratios
        .iter()
        .zip(exact_curve.iter().zip(&sampled_curve))
        .map(|(&r, (e, s))| {
            payload.coverage.push((r, e.cra, s.cra));
            vec![
                format!("{}%", f(r as f64 * 100.0, 1)),
                format!("{}%", f(e.cra as f64 * 100.0, 1)),
                format!("{}%", f(s.cra as f64 * 100.0, 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["top-k ratio", "CRA (exact rank)", "CRA (5% sample rank)"], &rows_e)
    );
    println!("(expected: small ratios already reach high CRA; sampled ranking tracks exact)");

    write_json(&args, "fig2_sparsity", &payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let p = Fig2Payload {
            per_layer_sd: vec![("tiny".into(), 2, vec![0.1, 0.2])],
            sd_vs_length: vec![(256, 0.5), (512, 0.4)],
            per_head_sd: vec![(0, 1, 0.35)],
            pattern_rows: vec![(0, 0, "local".into(), 0.9, 0.05, 0.02)],
            coverage: vec![(0.95, 0.6, 0.4)],
            stripe_positions: vec![("h0".into(), vec![0, 17, 33])],
        };
        let text = sa_json::to_string(&p);
        let back: Fig2Payload = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
