//! Figure 1: the paper's opening figure — sparse-pattern taxonomy and
//! headline TTFT speedups.
//!
//! Prints (i) the adaptive structured pattern summary of this model's
//! heads (static window+stripe baselines vs SampleAttention's adaptive
//! masks), (ii) a quick near-lossless accuracy check, and (iii) the
//! headline TTFT reductions at 96K and 1M from the A100 roofline model.

use sa_baselines::{AttentionMethod, FullAttention, SampleAttentionMethod, StreamingLlm};
use sa_bench::analysis::reference_prefill;
use sa_bench::{f, render_table, write_json, Args};
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_perf::ttft::{AttentionKind, TtftModel};
use sa_workloads::{evaluate_method, longbench_suite, normalize_to_full};
struct Overview {
    densities: Vec<(String, f64)>,
    accuracy_pct_of_full: Vec<(String, f32)>,
    ttft_speedup_96k: f64,
    ttft_speedup_1m: f64,
}

sa_json::impl_json_struct!(Overview {
    densities,
    accuracy_pct_of_full,
    ttft_speedup_96k,
    ttft_speedup_1m
});

fn main() {
    let args = Args::parse();
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(args.seed)).expect("model");
    let vocab = model.config().vocab_size;
    let length = if args.quick { 192 } else { 384 };

    // Adaptive masks: per-head density under SampleAttention.
    let tasks = longbench_suite(vocab, length, 1, args.seed);
    let reference = reference_prefill(&model, &tasks[0].tokens).expect("prefill");
    drop(reference);

    println!("Figure 1: adaptive structured sparse attention — overview\n");

    println!("Per-method mask density and accuracy (LongBench-proxy, S={length}):\n");
    let methods: Vec<Box<dyn AttentionMethod>> = vec![
        Box::new(FullAttention::new()),
        Box::new(SampleAttentionMethod::paper_default()),
        Box::new(StreamingLlm::paper_config()),
    ];
    let mut reports = Vec::new();
    for m in &methods {
        reports.push(evaluate_method(&model, &tasks, m.as_ref()).expect("evaluate"));
    }
    let full = reports[0].clone();
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                f(r.mean_density, 3),
                format!("{}%", f(normalize_to_full(r, &full) as f64, 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["method", "mask density", "accuracy (% of full)"], &rows)
    );

    // Headline latency numbers.
    let perf = TtftModel::paper_microbench();
    let sa95 = AttentionKind::SampleAttention {
        alpha: 0.95,
        sample_ratio: 0.05,
    };
    let speedup = |s: usize| {
        perf.ttft(s, AttentionKind::Flash).total_s() / perf.ttft(s, sa95).total_s()
    };
    let s96 = speedup(98_304);
    let s1m = speedup(1_048_576);
    println!("Headline TTFT reduction vs FlashAttention2 (alpha=0.95):");
    println!("  96K: {}x   1M: {}x   (paper: up to 2.42x)", f(s96, 2), f(s1m, 2));

    let payload = Overview {
        densities: reports
            .iter()
            .map(|r| (r.method.clone(), r.mean_density))
            .collect(),
        accuracy_pct_of_full: reports
            .iter()
            .map(|r| (r.method.clone(), normalize_to_full(r, &full)))
            .collect(),
        ttft_speedup_96k: s96,
        ttft_speedup_1m: s1m,
    };
    write_json(&args, "fig1_overview", &payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let p = Overview {
            densities: vec![("full".into(), 1.0), ("sample".into(), 0.6)],
            accuracy_pct_of_full: vec![("full".into(), 100.0)],
            ttft_speedup_96k: 2.1,
            ttft_speedup_1m: 2.4,
        };
        let text = sa_json::to_string(&p);
        let back: Overview = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
