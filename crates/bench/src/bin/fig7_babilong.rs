//! Appendix Figure 7: detailed BABILong results per task type, sequence
//! length, and model.
//!
//! Paper shape: full attention and SampleAttention track each other at
//! every length; StreamingLLM and the hash/LSH methods sit far below
//! across the board.

use sa_baselines::{
    AttentionMethod, BigBird, FullAttention, HashSparse, HyperAttention, SampleAttentionMethod,
    StreamingLlm,
};
use sa_bench::{f, render_table, write_json, Args};
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_workloads::{babilong_suite, TaskFamily};
struct Cell {
    model: String,
    method: String,
    length: usize,
    qa_type: u8,
    score: f32,
}

sa_json::impl_json_struct!(Cell {
    model,
    method,
    length,
    qa_type,
    score
});

fn main() {
    let args = Args::parse();
    let lengths: Vec<usize> = if args.quick {
        vec![192, 320]
    } else {
        vec![192, 320, 512]
    };

    let mut payload: Vec<Cell> = Vec::new();
    for (name, config) in [
        ("ChatGLM2-like", ModelConfig::chatglm2_like(args.seed)),
        ("InternLM2-like", ModelConfig::internlm2_like(args.seed ^ 1)),
    ] {
        let model = SyntheticTransformer::new(config).expect("model");
        let methods: Vec<Box<dyn AttentionMethod>> = vec![
            Box::new(FullAttention::new()),
            Box::new(SampleAttentionMethod::paper_default()),
            Box::new(BigBird::paper_config(args.seed)),
            Box::new(StreamingLlm::paper_config()),
            Box::new(HyperAttention::scaled(320, args.seed)),
            Box::new(HashSparse::paper_config(args.seed)),
        ];

        println!("== {name} ==\n");
        let mut rows = Vec::new();
        for m in &methods {
            for &length in &lengths {
                let tasks = babilong_suite(config.vocab_size, &[length], args.seed ^ 3);
                let mut cells = vec![m.name().to_string(), length.to_string()];
                for qa in 1u8..=4 {
                    let scores: Vec<f32> = tasks
                        .iter()
                        .filter(|t| t.family == TaskFamily::BabiLong(qa))
                        .map(|t| t.evaluate(&model, m.as_ref()).expect("evaluate"))
                        .collect();
                    let mean = scores.iter().sum::<f32>() / scores.len().max(1) as f32;
                    cells.push(f(mean as f64, 0));
                    payload.push(Cell {
                        model: name.to_string(),
                        method: m.name().to_string(),
                        length,
                        qa_type: qa,
                        score: mean,
                    });
                }
                rows.push(cells);
            }
        }
        println!(
            "{}",
            render_table(&["method", "S", "qa1", "qa2", "qa3", "qa4"], &rows)
        );
    }
    println!(
        "Paper shape (Fig. 7): SampleAttention tracks full attention at every\nlength/type; StreamingLLM and hash/LSH methods sit far below."
    );
    write_json(&args, "fig7_babilong", &payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let c = Cell {
            model: "chatglm2".into(),
            method: "sample_attention".into(),
            length: 512,
            qa_type: 2,
            score: 87.5,
        };
        let text = sa_json::to_string(&vec![c]);
        let back: Vec<Cell> = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
