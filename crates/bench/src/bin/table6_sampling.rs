//! Table 6 / Appendix A.5: effectiveness of stage-1 sampling.
//!
//! For three heads of different sparsity character, measures the CRA
//! achieved by selecting the top-k stripe columns (merged with a tuned
//! window) when the columns are ranked by (i) the exact full-attention
//! column sums and (ii) stage-1's 5 % strided sample. The paper's claim:
//! the 5 % ranking is nearly as good as the exact one.

use sa_bench::analysis::{reference_prefill};
use sa_bench::{f, render_table, write_json, Args};
use sa_core::cra::stripe_coverage_curve;
use sa_core::sampling::sample_attention_scores;
use sa_kernels::attention_probs;
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_tensor::col_sum;
use sa_workloads::{needle_grid, NeedleConfig};
struct HeadCurve {
    head: String,
    ratios: Vec<f32>,
    cra_exact: Vec<f32>,
    cra_sampled: Vec<f32>,
}

sa_json::impl_json_struct!(HeadCurve {
    head,
    ratios,
    cra_exact,
    cra_sampled
});

fn main() {
    let args = Args::parse();
    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(args.seed)).expect("model");
    let length = if args.quick { 384 } else { 1024 };
    let cells = needle_grid(
        model.config().vocab_size,
        &NeedleConfig {
            lengths: vec![length],
            depth_intervals: 1,
            seed: args.seed,
        },
    );
    let tokens = &cells[0].task.tokens;
    let reference = reference_prefill(&model, tokens).expect("prefill");

    let ratios = [0.025f32, 0.05, 0.1, 0.2, 0.4, 0.8];
    let window = (0.02 * length as f64) as usize;
    // Three heads of rising sparsity, like the paper's Layer0-Head0 /
    // Layer13-Head0 / Layer13-Head13 rows: a dispersed layer-0 head, a
    // retrieval head, and a sink head.
    let picks = [
        ("L0H7 (dispersed)", 0usize, 7usize),
        ("L1H2 (retrieval)", 1, 2),
        ("L1H1 (sink)", 1, 1),
    ];

    println!(
        "Table 6: CRA of top-k stripes + window, exact vs 5% sampled ranking (S={length})\n"
    );
    let mut curves = Vec::new();
    let mut rows = Vec::new();
    for (label, layer, head) in picks {
        let hidden = &reference.layer_inputs[layer];
        let (q, k, _v) = model.layers()[layer].project_head(hidden, head).expect("proj");
        let p = attention_probs(&q, &k, true).expect("probs");
        let exact_scores = col_sum(&p);
        let sampled = sample_attention_scores(&q, &k, 0.05).expect("sample");
        let exact = stripe_coverage_curve(&p, &exact_scores, window, &ratios).expect("coverage curve");
        let sampled_curve = stripe_coverage_curve(&p, &sampled.column_scores, window, &ratios)
            .expect("coverage curve");
        for (i, &r) in ratios.iter().enumerate() {
            rows.push(vec![
                label.to_string(),
                format!("{}%", f(r as f64 * 100.0, 1)),
                format!("{}%", f(exact[i].cra as f64 * 100.0, 2)),
                format!("{}%", f(sampled_curve[i].cra as f64 * 100.0, 2)),
            ]);
        }
        curves.push(HeadCurve {
            head: label.to_string(),
            ratios: ratios.to_vec(),
            cra_exact: exact.iter().map(|c| c.cra).collect(),
            cra_sampled: sampled_curve.iter().map(|c| c.cra).collect(),
        });
    }
    println!(
        "{}",
        render_table(
            &["head", "top-k ratio", "CRA @100% sampling", "CRA @5% sampling"],
            &rows
        )
    );
    println!(
        "(paper shape: sampled CRA within ~a few points of exact at every ratio;\n high-sparsity heads reach ~98% CRA from tiny ratios)"
    );
    write_json(&args, "table6_sampling", &curves);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let h = HeadCurve {
            head: "retrieval".into(),
            ratios: vec![0.01, 0.05, 0.2],
            cra_exact: vec![0.99, 0.99, 0.99],
            cra_sampled: vec![0.93, 0.97, 0.99],
        };
        let text = sa_json::to_string(&vec![h]);
        let back: Vec<HeadCurve> = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
