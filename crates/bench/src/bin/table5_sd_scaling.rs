//! Table 5 + Appendix A.4: sparsity as sequence length scales.
//!
//! Two complementary reproductions:
//!
//! 1. **Measured** — mean SD(α) across the synthetic ChatGLM2-like model's
//!    heads on needle prompts at CPU-feasible lengths, for
//!    α ∈ {0.90, 0.95, 0.98}. The reproduced *shape*: SD grows with
//!    length and shrinks with α.
//! 2. **Published trend** — the paper's Table 5 values with this repo's
//!    interpolation/extrapolation model (`sa_perf::SparsityTrend`), which
//!    the latency figures consume.
//!
//! `--hist` additionally prints the Appendix Figure 11 retained-KV
//! frequency summaries for a low- and a high-sparsity head.

use sa_bench::analysis::{head_probs, model_mean_sd, reference_prefill};
use sa_bench::{f, render_table, write_json, Args};
use sa_core::sparsity::optimal_sparsity_degree;
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_perf::sparsity_trend::{SparsityTrend, PAPER_TABLE5};
use sa_workloads::{needle_grid, NeedleConfig};
#[derive(Default)]
struct Payload {
    measured: Vec<(usize, f64, f64, f64)>,
    trend: Vec<(usize, f64, f64, f64)>,
}

sa_json::impl_json_struct!(Payload {
    measured,
    trend
});

fn main() {
    let args = Args::parse();
    let hist = args.flag("--hist");
    let mut payload = Payload::default();

    let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(args.seed)).expect("model");
    let lengths: Vec<usize> = if args.quick {
        vec![128, 256, 512]
    } else {
        vec![128, 256, 512, 1024, 1536]
    };

    println!("Table 5 (measured, synthetic ChatGLM2-like): mean SD vs length\n");
    let mut rows = Vec::new();
    for &length in &lengths {
        let cells = needle_grid(
            model.config().vocab_size,
            &NeedleConfig {
                lengths: vec![length],
                depth_intervals: 1,
                seed: args.seed,
            },
        );
        let tokens = &cells[0].task.tokens;
        let reference = reference_prefill(&model, tokens).expect("prefill");
        let sd90 = model_mean_sd(&model, &reference, 0.90).expect("sd");
        let sd95 = model_mean_sd(&model, &reference, 0.95).expect("sd");
        let sd98 = model_mean_sd(&model, &reference, 0.98).expect("sd");
        rows.push(vec![
            length.to_string(),
            format!("{}%", f(sd90 * 100.0, 2)),
            format!("{}%", f(sd95 * 100.0, 2)),
            format!("{}%", f(sd98 * 100.0, 2)),
        ]);
        payload.measured.push((length, sd90, sd95, sd98));
    }
    println!(
        "{}",
        render_table(&["S", "SD(a=.90)", "SD(a=.95)", "SD(a=.98)"], &rows)
    );

    println!("Table 5 (published + trend model), ChatGLM2-6B at full scale:\n");
    let trend = SparsityTrend::paper();
    let mut rows_t = Vec::new();
    for &(s, sd90, sd95, sd98) in &PAPER_TABLE5 {
        let m90 = trend.sparsity_degree(0.90, s) * 100.0;
        let m95 = trend.sparsity_degree(0.95, s) * 100.0;
        let m98 = trend.sparsity_degree(0.98, s) * 100.0;
        rows_t.push(vec![
            format!("{}K", s / 1024),
            format!("{}% / {}%", f(sd90, 2), f(m90, 2)),
            format!("{}% / {}%", f(sd95, 2), f(m95, 2)),
            format!("{}% / {}%", f(sd98, 2), f(m98, 2)),
        ]);
        payload.trend.push((s, m90 / 100.0, m95 / 100.0, m98 / 100.0));
    }
    // Extrapolated rows the latency model uses.
    for s in [262_144usize, 1_048_576] {
        rows_t.push(vec![
            if s >= 1_048_576 { "1M".into() } else { format!("{}K", s / 1024) },
            format!("- / {}%", f(trend.sparsity_degree(0.90, s) * 100.0, 2)),
            format!("- / {}%", f(trend.sparsity_degree(0.95, s) * 100.0, 2)),
            format!("- / {}%", f(trend.sparsity_degree(0.98, s) * 100.0, 2)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["S", "SD(.90) paper/model", "SD(.95) paper/model", "SD(.98) paper/model"],
            &rows_t
        )
    );

    if hist {
        println!("Appendix Figure 11: retained-KV frequency (low vs high sparsity head)\n");
        let length = *lengths.last().unwrap();
        let cells = needle_grid(
            model.config().vocab_size,
            &NeedleConfig {
                lengths: vec![length],
                depth_intervals: 1,
                seed: args.seed ^ 5,
            },
        );
        let reference = reference_prefill(&model, &cells[0].task.tokens).expect("prefill");
        // low sparsity: layer 0 dispersed head; high: layer 1 sink head.
        for (label, layer, head) in [("low-SD head (L0H1)", 0usize, 1usize), ("high-SD head (L1H1)", 1, 1)] {
            let p = head_probs(&model, &reference, layer, head).expect("probs");
            let (sd, mask) = optimal_sparsity_degree(&p, 0.95);
            // Column retention frequency.
            let s = p.rows();
            let mut freq = vec![0usize; s];
            for i in 0..s {
                for (j, fr) in freq.iter_mut().enumerate() {
                    if mask.get(i, j) {
                        *fr += 1;
                    }
                }
            }
            let retained_everywhere = freq.iter().filter(|&&c| c > s / 2).count();
            let retained_rarely = freq.iter().filter(|&&c| c > 0 && c < s / 20).count();
            println!(
                "  {label}: SD {}%, columns retained by >50% of rows: {}, by <5%: {}",
                f(sd * 100.0, 1),
                retained_everywhere,
                retained_rarely
            );
        }
        println!("(expected: the high-SD head concentrates on a few always-retained columns)");
    }

    write_json(&args, "table5_sd_scaling", &payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let p = Payload {
            measured: vec![(256, 0.5, 0.4, 0.3)],
            trend: vec![(1024, 0.7, 0.6, 0.5)],
        };
        let text = sa_json::to_string(&p);
        let back: Payload = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
