//! slo_sweep: sweeps seeded open-loop arrival streams (constant,
//! diurnal, and flash-crowd rate shapes at several mean rates) through
//! both sa-serve schedulers **on the virtual clock only** — the
//! one-shot batch planner and the continuous-batching planner — and
//! reports the serving SLOs per point:
//!
//! - **TTFT** p50/p90/p95/p99 (arrival → first output token);
//! - **TPOT** p50/p90/p95/p99 (decode pace of served multi-token
//!   requests);
//! - **goodput**: requests served within their deadline per virtual
//!   second.
//!
//! Because every outcome and timestamp is fixed by the deterministic
//! planners, no model work runs: the sweep covers dozens of
//! (shape × rate) points in milliseconds, and re-running it with the
//! same seed reproduces the report byte for byte.
//!
//! The sweep asserts the tentpole property of continuous batching: at
//! every point, the continuous scheduler's goodput is **at least** the
//! one-shot scheduler's on the same arrival trace and memory budget.
//!
//! Outputs:
//! - stdout: one row per sweep point (requests, goodput both ways,
//!   continuous TTFT p50/p99);
//! - `results/slo_report.json` (`sa.slo.v1`): full per-point
//!   [`SloSummary`] pairs.
//!
//! Flags: `--seed <u64>`, `--quick` (fewer rates, shorter streams),
//! `--out <dir>`.

use sa_bench::{f, render_table, write_json, Args};
use sa_serve::{open_loop_workload, plan_batch, plan_continuous, ServeConfig, SloSummary, SLO_SCHEMA};
use sa_workloads::{ArrivalProcess, ArrivalShape};

/// One (shape × rate) point of the sweep.
#[derive(Debug, Clone, PartialEq)]
struct SloPoint {
    /// Arrival-rate shape (`constant` / `diurnal` / `flash_crowd`).
    shape: String,
    /// Mean arrival rate of the stream, requests per virtual second.
    rate_per_sec: f64,
    /// Stream duration, virtual ms.
    duration_ms: u64,
    /// Requests the stream drew.
    requests: u64,
    /// SLO summary under the continuous-batching scheduler.
    continuous: SloSummary,
    /// SLO summary under the one-shot batch scheduler.
    oneshot: SloSummary,
}

sa_json::impl_json_struct!(SloPoint {
    shape,
    rate_per_sec,
    duration_ms,
    requests,
    continuous,
    oneshot
});

/// The `results/slo_report.json` payload.
#[derive(Debug, Clone, PartialEq)]
struct SloReport {
    /// Results-file schema tag ([`SLO_SCHEMA`]).
    schema: String,
    /// Workload / scheduler seed.
    seed: u64,
    /// Tenants sharing the token-bucket quotas.
    tenants: u64,
    /// Whether continuous goodput ≥ one-shot goodput held at every point.
    continuous_never_worse: bool,
    /// The sweep, one entry per (shape × rate).
    points: Vec<SloPoint>,
}

sa_json::impl_json_struct!(SloReport {
    schema,
    seed,
    tenants,
    continuous_never_worse,
    points
});

fn shapes() -> Vec<(&'static str, ArrivalShape)> {
    vec![
        ("constant", ArrivalShape::Constant),
        (
            "diurnal",
            ArrivalShape::Diurnal {
                period_ms: 20_000,
                depth: 0.7,
            },
        ),
        (
            "flash_crowd",
            ArrivalShape::FlashCrowd {
                quiet_ms: 12_000,
                burst_ms: 3_000,
                multiplier: 5.0,
            },
        ),
    ]
}

fn main() {
    let args = Args::parse();
    let tenants = 3u64;
    let (rates, duration_ms) = if args.quick {
        (vec![1.0, 4.0], 15_000u64)
    } else {
        (vec![0.5, 1.0, 2.0, 4.0, 8.0], 40_000u64)
    };
    let cfg = ServeConfig {
        seed: args.seed,
        ..ServeConfig::default()
    }
    .from_env();

    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut never_worse = true;
    for (shape_name, shape) in shapes() {
        for &rate in &rates {
            let process = ArrivalProcess {
                seed: args.seed ^ (rate * 16.0) as u64,
                rate_per_sec: rate,
                shape: shape.clone(),
            };
            let requests = open_loop_workload(args.seed, &process, duration_ms, tenants);
            let cont_plans = plan_continuous(&cfg, &requests);
            let oneshot_plans = plan_batch(&cfg, &requests);
            let continuous =
                SloSummary::from_continuous_plans("continuous", &cont_plans, &requests);
            let oneshot = SloSummary::from_oneshot_plans("oneshot", &oneshot_plans, &requests);
            let ok = continuous.goodput_per_sec >= oneshot.goodput_per_sec;
            never_worse &= ok;
            rows.push(vec![
                shape_name.to_string(),
                f(rate, 1),
                requests.len().to_string(),
                f(continuous.goodput_per_sec, 3),
                f(oneshot.goodput_per_sec, 3),
                continuous.ttft.p50_ms.to_string(),
                continuous.ttft.p99_ms.to_string(),
                continuous.tpot.p99_ms.to_string(),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
            points.push(SloPoint {
                shape: shape_name.to_string(),
                rate_per_sec: rate,
                duration_ms,
                requests: requests.len() as u64,
                continuous,
                oneshot,
            });
        }
    }

    println!(
        "slo sweep: {} points, {} tenants, seed {}\n",
        points.len(),
        tenants,
        args.seed
    );
    println!(
        "{}",
        render_table(
            &[
                "shape",
                "rate/s",
                "reqs",
                "goodput(cont)",
                "goodput(1shot)",
                "ttft_p50",
                "ttft_p99",
                "tpot_p99",
                ">=",
            ],
            &rows
        )
    );

    let report = SloReport {
        schema: SLO_SCHEMA.to_string(),
        seed: args.seed,
        tenants,
        continuous_never_worse: never_worse,
        points,
    };
    if let Some(path) = write_json(&args, "slo_report", &report) {
        println!("wrote {}", path.display());
    }
    assert!(
        never_worse,
        "continuous batching lost goodput against the one-shot scheduler on some point"
    );
    println!("verdict: continuous goodput >= one-shot goodput at every sweep point");
}
