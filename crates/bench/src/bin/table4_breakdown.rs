//! Table 4: TTFT latency breakdown at the prefill stage (ChatGLM2-6B,
//! 8×A100, TP=4/PP=2), and the attention share of TTFT from 32K to 1M.
//!
//! The published table is reproduced side by side with this roofline
//! model's prediction; the key reproduced quantity is the attention
//! *share*, which rises from ~32 % at 32K to ~88 % at 1M and motivates
//! the whole paper.

use sa_bench::{f, render_table, write_json, Args};
use sa_perf::calibrate::{attention_share_mae, calibrate_against_table4};
use sa_perf::ttft::TtftModel;

fn main() {
    let args = Args::parse();
    let model = TtftModel::paper_serving();
    let rows = calibrate_against_table4(&model);

    println!("Table 4: latency breakdown at the prefill stage (ChatGLM2-6B, TP=4 PP=2)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let label = if r.seq_len >= 1_048_576 {
                "1M".to_string()
            } else {
                format!("{}K", r.seq_len / 1024)
            };
            vec![
                label,
                f(r.paper_ttft_ms, 1),
                format!("{}%", f(r.paper_attention_share * 100.0, 1)),
                f(r.model_ttft_ms, 1),
                format!("{}%", f(r.model_attention_share * 100.0, 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["S", "paper TTFT(ms)", "paper attn%", "model TTFT(ms)", "model attn%"],
            &table
        )
    );
    println!(
        "Attention-share mean absolute error: {} percentage points",
        f(attention_share_mae(&rows), 1)
    );
    write_json(&args, "table4_breakdown", &rows);
}
