//! Table 4: TTFT latency breakdown at the prefill stage (ChatGLM2-6B,
//! 8×A100, TP=4/PP=2), and the attention share of TTFT from 32K to 1M.
//!
//! The published table is reproduced side by side with this roofline
//! model's prediction; the key reproduced quantity is the attention
//! *share*, which rises from ~32 % at 32K to ~88 % at 1M and motivates
//! the whole paper.
//!
//! Alongside the roofline prediction, a seeded prefill runs under
//! `sa-trace` and prints the *measured* stage breakdown (sampling /
//! filtering / mask merge / sparse kernel) with the fallback and
//! α-coverage tallies — the in-repo counterpart of the paper's
//! profiled numbers. Both sections land in
//! `results/table4_breakdown.json` (`roofline` + `measured`).

use sa_baselines::SampleAttentionMethod;
use sa_bench::{f, render_table, write_json, Args};
use sa_json::ToJson;
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_perf::calibrate::{attention_share_mae, calibrate_against_table4};
use sa_perf::ttft::TtftModel;
use sa_trace::summary::{summarize, TraceSummary};
use sa_trace::TraceSession;

fn main() {
    let args = Args::parse();
    let model = TtftModel::paper_serving();
    let rows = calibrate_against_table4(&model);

    println!("Table 4: latency breakdown at the prefill stage (ChatGLM2-6B, TP=4 PP=2)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let label = if r.seq_len >= 1_048_576 {
                "1M".to_string()
            } else {
                format!("{}K", r.seq_len / 1024)
            };
            vec![
                label,
                f(r.paper_ttft_ms, 1),
                format!("{}%", f(r.paper_attention_share * 100.0, 1)),
                f(r.model_ttft_ms, 1),
                format!("{}%", f(r.model_attention_share * 100.0, 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["S", "paper TTFT(ms)", "paper attn%", "model TTFT(ms)", "model attn%"],
            &table
        )
    );
    println!(
        "Attention-share mean absolute error: {} percentage points",
        f(attention_share_mae(&rows), 1)
    );

    let measured = measured_breakdown(&args);
    let payload = sa_json::Json::Object(vec![
        ("roofline".to_string(), rows.to_json()),
        ("measured".to_string(), measured.to_json()),
    ]);
    write_json(&args, "table4_breakdown", &payload);
}

/// Runs a seeded prefill under tracing and prints the measured stage
/// breakdown next to the roofline prediction above.
fn measured_breakdown(args: &Args) -> TraceSummary {
    let seq_len = if args.quick { 256 } else { 1024 };
    let session = TraceSession::in_process();
    sa_trace::metrics::reset();

    let model =
        SyntheticTransformer::new(ModelConfig::tiny(args.seed)).expect("tiny config is valid");
    let tokens = model.tokenize_filler(seq_len);
    let result = model
        .prefill(&tokens, &SampleAttentionMethod::paper_default())
        .expect("prefill succeeds");
    let metrics = sa_trace::metrics::snapshot();
    let (events, _) = session.finish().expect("in-process session has no io");
    let stages = summarize(&events);

    println!("\nMeasured stage breakdown (seq_len={seq_len}, seed={}):\n", args.seed);
    let stage_rows: Vec<Vec<String>> = stages
        .iter()
        .filter(|s| s.cat == "core")
        .map(|s| {
            vec![
                s.name.clone(),
                s.count.to_string(),
                f(s.total_ns as f64 / 1000.0, 1),
                f(s.mean_ns as f64 / 1000.0, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["stage", "heads", "total(us)", "mean(us)"], &stage_rows)
    );

    let fallbacks: Vec<(String, u64)> = result
        .fallback_tally()
        .into_iter()
        .map(|(reason, n)| (reason.as_str().to_string(), n as u64))
        .collect();
    let fallback_heads = result.fallback_heads() as u64;
    let heads_alpha_unsatisfied = result.heads_alpha_unsatisfied() as u64;
    if fallbacks.is_empty() {
        println!(
            "Health: no dense fallbacks, {heads_alpha_unsatisfied} heads missed alpha"
        );
    } else {
        println!("Health: {fallback_heads} heads fell back, {heads_alpha_unsatisfied} missed alpha:");
        for (reason, n) in &fallbacks {
            println!("  {reason}: {n}");
        }
    }

    TraceSummary {
        seq_len,
        threads: sa_tensor::pool::current_threads(),
        stages,
        counters: metrics.counters,
        fallbacks,
        heads_alpha_unsatisfied,
        fallback_heads,
    }
}
