//! Figure 6: attention latency and TTFT scaling from 8K to 1M tokens.
//!
//! Paper anchors at 1M: TTFT reductions of 2.27× (α=0.95) and 4.62×
//! (α=0.80) versus FlashAttention2.

use sa_bench::{f, render_table, write_json, Args};
use sa_perf::ttft::{AttentionKind, TtftModel};
struct Row {
    seq_len: usize,
    attn_flash_ms: f64,
    attn95_ms: f64,
    attn80_ms: f64,
    ttft_flash_ms: f64,
    ttft95_ms: f64,
    ttft80_ms: f64,
}

sa_json::impl_json_struct!(Row {
    seq_len,
    attn_flash_ms,
    attn95_ms,
    attn80_ms,
    ttft_flash_ms,
    ttft95_ms,
    ttft80_ms
});

fn main() {
    let args = Args::parse();
    let model = TtftModel::paper_microbench();
    let lengths: Vec<usize> = if args.quick {
        vec![8_192, 131_072, 1_048_576]
    } else {
        vec![
            8_192, 16_384, 32_768, 65_536, 131_072, 262_144, 524_288, 1_048_576,
        ]
    };
    let sa95 = AttentionKind::SampleAttention {
        alpha: 0.95,
        sample_ratio: 0.05,
    };
    let sa80 = AttentionKind::SampleAttention {
        alpha: 0.80,
        sample_ratio: 0.05,
    };

    let rows: Vec<Row> = lengths
        .iter()
        .map(|&s| Row {
            seq_len: s,
            attn_flash_ms: model.attention_latency(s, AttentionKind::Flash) * 1e3,
            attn95_ms: model.attention_latency(s, sa95) * 1e3,
            attn80_ms: model.attention_latency(s, sa80) * 1e3,
            ttft_flash_ms: model.ttft(s, AttentionKind::Flash).total_s() * 1e3,
            ttft95_ms: model.ttft(s, sa95).total_s() * 1e3,
            ttft80_ms: model.ttft(s, sa80).total_s() * 1e3,
        })
        .collect();

    let label = |s: usize| {
        if s >= 1_048_576 {
            "1M".to_string()
        } else {
            format!("{}K", s / 1024)
        }
    };

    println!("Figure 6(a): attention latency (ms), speedup vs FlashAttention2\n");
    let table_a: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                label(r.seq_len),
                f(r.attn_flash_ms, 0),
                format!("{} ({}x)", f(r.attn95_ms, 0), f(r.attn_flash_ms / r.attn95_ms, 2)),
                format!("{} ({}x)", f(r.attn80_ms, 0), f(r.attn_flash_ms / r.attn80_ms, 2)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["S", "FlashAttn2", "SA(a=.95)", "SA(a=.80)"], &table_a)
    );

    println!("Figure 6(b): TTFT (ms), reduction vs FlashAttention2\n");
    let table_b: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                label(r.seq_len),
                f(r.ttft_flash_ms, 0),
                format!("{} ({}x)", f(r.ttft95_ms, 0), f(r.ttft_flash_ms / r.ttft95_ms, 2)),
                format!("{} ({}x)", f(r.ttft80_ms, 0), f(r.ttft_flash_ms / r.ttft80_ms, 2)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["S", "TTFT flash", "TTFT SA(.95)", "TTFT SA(.80)"], &table_b)
    );

    if let Some(last) = rows.last() {
        println!(
            "Paper anchors at 1M: TTFT reductions 2.27x (a=.95) and 4.62x (a=.80)."
        );
        println!(
            "This model at {}:  TTFT reductions {}x and {}x.",
            label(last.seq_len),
            f(last.ttft_flash_ms / last.ttft95_ms, 2),
            f(last.ttft_flash_ms / last.ttft80_ms, 2),
        );
    }
    write_json(&args, "fig6_scaling", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_json_round_trip() {
        let p = Row {
            seq_len: 1_048_576,
            attn_flash_ms: 9000.0,
            attn95_ms: 3600.0,
            attn80_ms: 3000.0,
            ttft_flash_ms: 60_000.0,
            ttft95_ms: 25_000.0,
            ttft80_ms: 22_000.0,
        };
        let text = sa_json::to_string(&vec![p]);
        let back: Vec<Row> = sa_json::from_str(&text).unwrap();
        assert_eq!(sa_json::to_string(&back), text);
    }
}
