//! Micro-benchmarks of SampleAttention's mask-discovery pipeline:
//! stage-1 sampling, stage-2 filtering, and the end-to-end operator,
//! compared against full attention at the same shape. On CPU, as on GPU,
//! the discovery stages should be a small fraction of the dense
//! attention cost.
//!
//! Every case is timed twice — pinned to one worker (`SA_THREADS=1`)
//! and at the session's default worker count — so the report and the
//! emitted JSON carry a serial-vs-parallel speedup column. Stage-2
//! filtering is intentionally serial (a scalar prefix scan), so its
//! pair documents that the pool adds no overhead to serial code.
//!
//! Run with `cargo run -p sa-bench --release --bin bench_sampling_pipeline`
//! (`--quick` shrinks the size sweep and trial count).

use sa_bench::timing::Bench;
use sa_bench::Args;
use sa_core::filtering::{filter_kv_indices, KvRatioSchedule};
use sa_core::sampling::sample_attention_scores;
use sa_core::{SampleAttention, SampleAttentionConfig};
use sa_kernels::full_attention;
use sa_tensor::{DeterministicRng, Matrix};

fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DeterministicRng::new(seed);
    (
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
        rng.normal_matrix(s, d, 1.0),
    )
}

fn main() {
    let args = Args::parse();
    let d = 64;
    // 4096 exercises the parallel split well past the per-chunk grain;
    // on a multi-core host the pool should win ≥ 2x there.
    let sizes: &[usize] = if args.quick {
        &[512]
    } else {
        &[512, 2048, 4096]
    };
    let mut bench = Bench::new("sampling_pipeline").trials(if args.quick { 5 } else { 10 });
    for &s in sizes {
        let (q, k, v) = qkv(s, d, args.seed);
        bench.run_serial_parallel(&format!("stage1_sampling/s{s}"), || {
            sample_attention_scores(&q, &k, 0.05).unwrap()
        });
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        bench.run_serial_parallel(&format!("stage2_filtering/s{s}"), || {
            filter_kv_indices(&sampled.column_scores, 0.95, 1.0, &KvRatioSchedule::Exact).unwrap()
        });
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        bench.run_serial_parallel(&format!("sample_attention_e2e/s{s}"), || {
            attn.forward(&q, &k, &v).unwrap().output
        });
        bench.run_serial_parallel(&format!("full_attention/s{s}"), || {
            full_attention(&q, &k, &v, true).unwrap().output
        });
    }
    print!("{}", bench.report());
    sa_bench::write_json(&args, "bench_sampling_pipeline", &bench);
}
