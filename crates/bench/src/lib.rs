//! # sa-bench
//!
//! The benchmark harness: one binary per table/figure of the paper, plus
//! std-only timing binaries for the kernels (`bench_*`, see
//! [`crate::timing`]).
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run -p sa-bench --release --bin table2_accuracy -- --seed 7
//! cargo run -p sa-bench --release --bin fig5_speedup
//! ```
//!
//! Every binary prints its table(s) to stdout and writes a JSON copy under
//! `results/` for the EXPERIMENTS.md bookkeeping. All binaries accept
//! `--seed <u64>` (default 7) and `--quick` (smaller sweeps).
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_overview` | Figure 1 (pattern taxonomy + headline speedups) |
//! | `fig2_sparsity` | Figure 2(a–e) sparsity statistics |
//! | `table2_accuracy` | Table 2 accuracy comparison |
//! | `fig4_needle` | Figure 4 / Figure 8 needle heatmaps |
//! | `fig7_babilong` | Appendix Figure 7 BABILong detail |
//! | `table3_ablation` | Table 3 hyper-parameter ablation |
//! | `fig5_speedup` | Figure 5 attention/TTFT latency, 8K–96K |
//! | `fig6_scaling` | Figure 6 scaling to 1M |
//! | `table4_breakdown` | Table 4 TTFT breakdown |
//! | `table5_sd_scaling` | Table 5 + Appendix A.4 sparsity scaling |
//! | `table6_sampling` | Table 6 / Appendix A.5 sampling effectiveness |
//! | `tile_kernel` | tiled vs row-major sparse-kernel A/B (beyond-paper) |
//! | `trace_report` | traced prefill + Chrome-trace export (beyond-paper) |
//! | `chaos_soak` | serving robustness soak, batch + continuous legs (beyond-paper) |
//! | `slo_sweep` | continuous vs one-shot serving SLOs over open-loop arrivals (beyond-paper) |
//! | `serve_timeline` | per-tenant serving timelines + flight-recorder postmortems from the event log (beyond-paper) |

pub mod analysis;
pub mod timing;

use sa_json::{FromJson, ToJson};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Common command-line arguments of the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Master seed (`--seed`).
    pub seed: u64,
    /// Reduced sweep sizes (`--quick`).
    pub quick: bool,
    /// Output directory for JSON results (`--out`, default `results/`).
    pub out_dir: PathBuf,
    /// Extra binary-specific flags (e.g. `--extended`, `--hist`).
    pub extra: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut args = Args {
            seed: 7,
            quick: false,
            out_dir: PathBuf::from("results"),
            extra: Vec::new(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = it.next().expect("--seed requires a value");
                    args.seed = v.parse().expect("--seed must be a u64");
                }
                "--quick" => args.quick = true,
                "--out" => {
                    let v = it.next().expect("--out requires a value");
                    args.out_dir = PathBuf::from(v);
                }
                other if other.starts_with("--") => args.extra.push(other.to_string()),
                other => panic!("unknown argument {other}; expected --seed/--quick/--out/--<flag>"),
            }
        }
        args
    }

    /// Whether a binary-specific flag (e.g. `"--extended"`) was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.extra.iter().any(|a| a == name)
    }
}

/// Writes an experiment's JSON payload to `<out>/<name>.json` and returns
/// the path. Errors are reported but non-fatal (the table already went to
/// stdout).
pub fn write_json<T: ToJson>(args: &Args, name: &str, payload: &T) -> Option<PathBuf> {
    let path = args.out_dir.join(format!("{name}.json"));
    let run = || -> std::io::Result<()> {
        std::fs::create_dir_all(&args.out_dir)?;
        let mut f = std::fs::File::create(&path)?;
        let s = sa_json::to_string_pretty(payload);
        f.write_all(s.as_bytes())
    };
    match run() {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Reads `<path>` and parses it into a [`FromJson`] type.
///
/// Replaces the `read_to_string(..).unwrap()` + `from_str(..).unwrap()`
/// idiom: every failure names the offending file, parse errors carry the
/// byte offset / line / column where the input broke, and schema
/// mismatches carry the `Type.field` path that failed validation.
///
/// # Errors
///
/// Returns a human-readable `"<file>: <what failed>"` string on I/O,
/// parse, or schema failure.
pub fn load_json<T: FromJson>(path: &Path) -> Result<T, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    sa_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads every `*.json` artifact under `dir` (sorted by name) as a raw
/// value tree.
///
/// # Errors
///
/// Returns the first failure as `"<file>: <message with location>"` — the
/// caller learns exactly which artifact and which byte is corrupt instead
/// of a bare unwrap panic.
pub fn load_results_dir(dir: &Path) -> Result<Vec<(PathBuf, sa_json::Json)>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| load_json::<sa_json::Json>(&p).map(|v| (p, v)))
        .collect()
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given precision (helper for table cells).
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1.0".to_string()],
                vec!["longer".to_string(), "2".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 0), "2");
    }

    #[test]
    fn loader_reports_file_and_location_on_corruption() {
        let dir = std::env::temp_dir().join(format!("sa_bench_load_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, "{\"rows\": [1, 2, 3]}").unwrap();
        let loaded = load_results_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, good);

        // Truncated artifact (what a killed bench run leaves behind): the
        // error must name the file and the byte where the input ended.
        let bad = dir.join("truncated.json");
        std::fs::write(&bad, "{\"rows\": [1, 2,").unwrap();
        let err = load_results_dir(&dir).unwrap_err();
        assert!(err.contains("truncated.json"), "{err}");
        assert!(err.contains("byte 15"), "{err}");

        // Schema mismatch: the typed loader names file and field path.
        #[derive(Debug, PartialEq)]
        struct Row {
            size: usize,
        }
        sa_json::impl_json_struct!(Row { size });
        std::fs::write(&bad, "{\"size\": \"oops\"}").unwrap();
        let err = load_json::<Row>(&bad).unwrap_err();
        assert!(err.contains("truncated.json"), "{err}");
        assert!(err.contains("Row.size"), "{err}");
        assert_eq!(load_json::<Row>(&good.with_file_name("missing.json")).ok(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn json_written_to_custom_dir() {
        let dir = std::env::temp_dir().join(format!("sa_bench_test_{}", std::process::id()));
        let args = Args {
            seed: 0,
            quick: true,
            out_dir: dir.clone(),
            extra: Vec::new(),
        };
        let path = write_json(&args, "unit", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains('1'));
        std::fs::remove_dir_all(dir).ok();
    }
}
