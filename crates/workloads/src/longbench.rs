//! LongBench-proxy: six task families with distinct planting geometry.


use sa_tensor::DeterministicRng;

use crate::vocab::BLANK_TOKEN;
use crate::{Question, Task, TaskFamily, VocabLayout};

/// Re-export of the family enum restricted to LongBench (alias for
/// readability at call sites).
pub type LongBenchFamily = TaskFamily;

/// Generates the LongBench-proxy suite: `instances` tasks per family at
/// prompt length ~`length`.
///
/// # Panics
///
/// Panics if `length < 64` or `instances == 0`.
pub fn longbench_suite(
    vocab_size: usize,
    length: usize,
    instances: usize,
    seed: u64,
) -> Vec<Task> {
    assert!(length >= 64, "length too short: {length}");
    assert!(instances > 0, "need at least one instance per family");
    let vocab = VocabLayout::for_vocab(vocab_size);
    let mut tasks = Vec::new();
    for inst in 0..instances {
        let s = seed.wrapping_mul(0x9e37_79b9).wrapping_add(inst as u64);
        tasks.push(single_doc_qa(&vocab, length, s));
        tasks.push(multi_doc_qa(&vocab, length, s ^ 1));
        tasks.push(summarization(&vocab, length, s ^ 2));
        tasks.push(few_shot(&vocab, length, s ^ 3));
        tasks.push(synthetic_retrieval(&vocab, length, s ^ 4));
        tasks.push(code_completion(&vocab, length, s ^ 5));
    }
    tasks
}

use crate::haystack::haystack;

use crate::haystack::Planter;

/// Plants a fact at its primary position and once more at a random
/// earlier spot, collision-free. Real documents state facts redundantly
/// (a needle is a whole sentence; an answer has multi-token support); a
/// single load-bearing KV entry would make the benchmark artificially
/// brittle compared to the suites the paper evaluates on.
fn plant_redundant(
    planter: &mut Planter,
    tokens: &mut [u32],
    pos: usize,
    marker: u32,
    payload: u32,
    rng: &mut DeterministicRng,
) {
    let used = planter.plant(tokens, pos, marker, payload);
    planter.plant_copy(tokens, used, marker, payload, rng);
}

/// Appends question blocks (`marker` + blank separator) and returns their
/// positions.
fn append_questions(tokens: &mut Vec<u32>, markers: &[u32]) -> Vec<usize> {
    let mut positions = Vec::with_capacity(markers.len());
    for &m in markers {
        tokens.push(m);
        positions.push(tokens.len() - 1);
        tokens.push(BLANK_TOKEN);
    }
    positions
}

fn single_doc_qa(vocab: &VocabLayout, length: usize, seed: u64) -> Task {
    let mut rng = DeterministicRng::new(seed);
    let mut tokens = haystack(vocab, length, &mut rng);
    let marker = vocab.marker(rng.index(vocab.num_markers()));
    let payload = vocab.payload(rng.index(vocab.num_payloads()));
    let mut planter = Planter::new();
    let pos = 1 + rng.index(length - 8);
    plant_redundant(&mut planter, &mut tokens, pos, marker, payload, &mut rng);
    let q = append_questions(&mut tokens, &[marker]);
    crate::haystack::append_suffix(vocab, &mut tokens, &mut rng);
    Task {
        name: format!("singledoc_{seed:x}"),
        family: TaskFamily::SingleDocQa,
        tokens,
        questions: vec![Question {
            position: q[0],
            expected: payload,
        }],
        answer_range: vocab.payload_range(),
    }
}

fn multi_doc_qa(vocab: &VocabLayout, length: usize, seed: u64) -> Task {
    let mut rng = DeterministicRng::new(seed);
    let mut tokens = haystack(vocab, length, &mut rng);
    // Four "documents" (quarters), each holding its own fact.
    let docs = 4;
    let marker_ids = rng.distinct_indices(vocab.num_markers(), docs);
    let mut planter = Planter::new();
    let mut facts = Vec::new();
    for d in 0..docs {
        let marker = vocab.marker(marker_ids[d]);
        let payload = vocab.payload(rng.index(vocab.num_payloads()));
        let lo = 1 + d * (length - 8) / docs;
        let hi = 1 + (d + 1) * (length - 8) / docs - 2;
        let pos = lo + rng.index(hi - lo);
        plant_redundant(&mut planter, &mut tokens, pos, marker, payload, &mut rng);
        facts.push((marker, payload));
    }
    // Question asks for one specific document's fact.
    let (marker, payload) = facts[rng.index(docs)];
    let q = append_questions(&mut tokens, &[marker]);
    crate::haystack::append_suffix(vocab, &mut tokens, &mut rng);
    Task {
        name: format!("multidoc_{seed:x}"),
        family: TaskFamily::MultiDocQa,
        tokens,
        questions: vec![Question {
            position: q[0],
            expected: payload,
        }],
        answer_range: vocab.payload_range(),
    }
}

fn summarization(vocab: &VocabLayout, length: usize, seed: u64) -> Task {
    let mut rng = DeterministicRng::new(seed);
    let mut tokens = haystack(vocab, length, &mut rng);
    // A "summary" must recover all key facts: five facts, five questions.
    let k = 5;
    let marker_ids = rng.distinct_indices(vocab.num_markers(), k);
    let mut planter = Planter::new();
    let mut facts = Vec::new();
    for f in 0..k {
        let marker = vocab.marker(marker_ids[f]);
        let payload = vocab.payload(rng.index(vocab.num_payloads()));
        let lo = 1 + f * (length - 8) / k;
        let hi = 1 + (f + 1) * (length - 8) / k - 2;
        plant_redundant(&mut planter, &mut tokens, lo + rng.index(hi - lo), marker, payload, &mut rng);
        facts.push((marker, payload));
    }
    let markers: Vec<u32> = facts.iter().map(|&(m, _)| m).collect();
    let positions = append_questions(&mut tokens, &markers);
    crate::haystack::append_suffix(vocab, &mut tokens, &mut rng);
    let questions = positions
        .into_iter()
        .zip(&facts)
        .map(|(position, &(_, payload))| Question {
            position,
            expected: payload,
        })
        .collect();
    Task {
        name: format!("summ_{seed:x}"),
        family: TaskFamily::Summarization,
        tokens,
        questions,
        answer_range: vocab.payload_range(),
    }
}

fn few_shot(vocab: &VocabLayout, length: usize, seed: u64) -> Task {
    let mut rng = DeterministicRng::new(seed);
    let mut tokens = haystack(vocab, length, &mut rng);
    // The same example pair repeated three times across the context (as
    // few-shot exemplars repeat a label mapping).
    let marker = vocab.marker(rng.index(vocab.num_markers()));
    let payload = vocab.payload(rng.index(vocab.num_payloads()));
    let mut planter = Planter::new();
    for r in 0..3 {
        let lo = 1 + r * (length - 8) / 3;
        let hi = 1 + (r + 1) * (length - 8) / 3 - 2;
        planter.plant(&mut tokens, lo + rng.index(hi - lo), marker, payload);
    }
    let q = append_questions(&mut tokens, &[marker]);
    crate::haystack::append_suffix(vocab, &mut tokens, &mut rng);
    Task {
        name: format!("fewshot_{seed:x}"),
        family: TaskFamily::FewShotLearning,
        tokens,
        questions: vec![Question {
            position: q[0],
            expected: payload,
        }],
        answer_range: vocab.payload_range(),
    }
}

fn synthetic_retrieval(vocab: &VocabLayout, length: usize, seed: u64) -> Task {
    let mut rng = DeterministicRng::new(seed);
    let mut tokens = haystack(vocab, length, &mut rng);
    // Distractor-heavy passkey retrieval: many facts, three queried.
    let k = (length / 40).clamp(6, vocab.num_markers().min(20));
    let marker_ids = rng.distinct_indices(vocab.num_markers(), k);
    let mut planter = Planter::new();
    let mut facts = Vec::new();
    for f in 0..k {
        let marker = vocab.marker(marker_ids[f]);
        let payload = vocab.payload(rng.index(vocab.num_payloads()));
        let lo = 1 + f * (length - 8) / k;
        let hi = 1 + (f + 1) * (length - 8) / k - 2;
        plant_redundant(&mut planter, &mut tokens, lo + rng.index(hi - lo), marker, payload, &mut rng);
        facts.push((marker, payload));
    }
    let mut picks: Vec<usize> = (0..facts.len()).collect();
    rng.shuffle(&mut picks);
    picks.truncate(3);
    let markers: Vec<u32> = picks.iter().map(|&i| facts[i].0).collect();
    let positions = append_questions(&mut tokens, &markers);
    crate::haystack::append_suffix(vocab, &mut tokens, &mut rng);
    let questions = positions
        .into_iter()
        .zip(&picks)
        .map(|(position, &i)| Question {
            position,
            expected: facts[i].1,
        })
        .collect();
    Task {
        name: format!("synth_{seed:x}"),
        family: TaskFamily::SyntheticTasks,
        tokens,
        questions,
        answer_range: vocab.payload_range(),
    }
}

fn code_completion(vocab: &VocabLayout, length: usize, seed: u64) -> Task {
    let mut rng = DeterministicRng::new(seed);
    let mut tokens = haystack(vocab, length, &mut rng);
    // "Definitions" early (like imports/vars at the top of a file), "uses"
    // queried at the end — long def-use distances.
    let k = 4;
    let marker_ids = rng.distinct_indices(vocab.num_markers(), k);
    let mut planter = Planter::new();
    let mut facts = Vec::new();
    // Definitions occupy disjoint slots in the first quarter.
    let region = (length / 4).max(4 * k);
    let slot_width = region / k;
    for f in 0..k {
        let marker = vocab.marker(marker_ids[f]);
        let payload = vocab.payload(rng.index(vocab.num_payloads()));
        let lo = 1 + f * slot_width;
        let pos = lo + rng.index(slot_width.saturating_sub(2).max(1));
        plant_redundant(&mut planter, &mut tokens, pos.min(length - 8), marker, payload, &mut rng);
        facts.push((marker, payload));
    }
    let markers: Vec<u32> = facts.iter().map(|&(m, _)| m).collect();
    let positions = append_questions(&mut tokens, &markers);
    crate::haystack::append_suffix(vocab, &mut tokens, &mut rng);
    let questions = positions
        .into_iter()
        .zip(&facts)
        .map(|(position, &(_, payload))| Question {
            position,
            expected: payload,
        })
        .collect();
    Task {
        name: format!("code_{seed:x}"),
        family: TaskFamily::CodeCompletion,
        tokens,
        questions,
        answer_range: vocab.payload_range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_baselines::FullAttention;
    use sa_model::{ModelConfig, SyntheticTransformer};

    #[test]
    fn suite_has_all_families() {
        let tasks = longbench_suite(512, 256, 2, 7);
        assert_eq!(tasks.len(), 12);
        for fam in TaskFamily::longbench_families() {
            assert_eq!(tasks.iter().filter(|t| t.family == fam).count(), 2);
        }
    }

    #[test]
    fn tasks_are_deterministic() {
        let a = longbench_suite(512, 128, 1, 9);
        let b = longbench_suite(512, 128, 1, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.questions, y.questions);
        }
        let c = longbench_suite(512, 128, 1, 10);
        assert_ne!(a[0].tokens, c[0].tokens);
    }

    #[test]
    fn full_attention_scores_high_on_suite() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(41)).unwrap();
        let tasks = longbench_suite(model.config().vocab_size, 256, 1, 41);
        let mut total = 0.0;
        for t in &tasks {
            total += t.evaluate(&model, &FullAttention::new()).unwrap();
        }
        let mean = total / tasks.len() as f32;
        assert!(mean > 80.0, "full-attention mean {mean}");
    }

    #[test]
    fn questions_read_marker_positions() {
        let tasks = longbench_suite(512, 128, 1, 3);
        for t in &tasks {
            for q in &t.questions {
                // Question positions hold marker tokens, and expected
                // answers are payload-band tokens.
                assert!(t.answer_range.contains(&q.expected), "{}", t.name);
                assert!(q.position < t.tokens.len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_length_panics() {
        let _ = longbench_suite(512, 32, 1, 0);
    }
}
