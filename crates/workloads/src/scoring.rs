//! Method evaluation and score aggregation (Table 2's machinery).

use sa_baselines::AttentionMethod;
use sa_model::SyntheticTransformer;
use sa_tensor::TensorError;

use crate::{Task, TaskFamily};

/// Mean score of one family under one method.
#[derive(Debug, Clone)]
pub struct FamilyScore {
    /// The family label (as in the paper's table header).
    pub family: String,
    /// Mean task score in `[0, 100]`.
    pub score: f32,
    /// Number of task instances averaged.
    pub n_tasks: usize,
}

sa_json::impl_json_struct!(FamilyScore { family, score, n_tasks });

/// One method's full evaluation report.
#[derive(Debug, Clone)]
pub struct MethodReport {
    /// Method name.
    pub method: String,
    /// Per-family scores in first-seen order.
    pub family_scores: Vec<FamilyScore>,
    /// Sum of family scores (the paper's "Total Scores" convention).
    pub total: f32,
    /// Mean attention density across all evaluated prefills.
    pub mean_density: f64,
}

sa_json::impl_json_struct!(MethodReport {
    method,
    family_scores,
    total,
    mean_density
});

/// Evaluates `method` on `tasks`, aggregating by family.
///
/// # Errors
///
/// Propagates kernel/shape errors from any task's prefill.
pub fn evaluate_method(
    model: &SyntheticTransformer,
    tasks: &[Task],
    method: &dyn AttentionMethod,
) -> Result<MethodReport, TensorError> {
    let mut order: Vec<TaskFamily> = Vec::new();
    let mut sums: std::collections::HashMap<TaskFamily, (f32, usize)> =
        std::collections::HashMap::new();
    let mut density_sum = 0.0f64;
    for task in tasks {
        let result = model.prefill(&task.tokens, method)?;
        density_sum += result.mean_density();
        let mut correct = 0usize;
        for q in &task.questions {
            let (answer, _) = model.answer_at_in(&result, q.position, task.answer_range.clone());
            if answer == q.expected {
                correct += 1;
            }
        }
        let score = if task.questions.is_empty() {
            0.0
        } else {
            100.0 * correct as f32 / task.questions.len() as f32
        };
        if !sums.contains_key(&task.family) {
            order.push(task.family);
        }
        let e = sums.entry(task.family).or_insert((0.0, 0));
        e.0 += score;
        e.1 += 1;
    }
    let family_scores: Vec<FamilyScore> = order
        .iter()
        .map(|f| {
            let (sum, n) = sums[f];
            FamilyScore {
                family: f.label(),
                score: sum / n as f32,
                n_tasks: n,
            }
        })
        .collect();
    let total = family_scores.iter().map(|f| f.score).sum();
    Ok(MethodReport {
        method: method.name().to_string(),
        family_scores,
        total,
        mean_density: if tasks.is_empty() {
            1.0
        } else {
            density_sum / tasks.len() as f64
        },
    })
}

/// The near-lossless criterion: a method's total as a percentage of the
/// full-attention total (the paper requires ≥ 99 %).
///
/// Returns 100 when the reference total is zero.
pub fn normalize_to_full(report: &MethodReport, full: &MethodReport) -> f32 {
    if full.total <= 0.0 {
        100.0
    } else {
        100.0 * report.total / full.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longbench_suite;
    use sa_baselines::{FullAttention, SampleAttentionMethod, StreamingLlm};
    use sa_model::ModelConfig;

    fn setup() -> (SyntheticTransformer, Vec<Task>) {
        // The full-size model: near-losslessness relies on retrieval-head
        // redundancy across layers (as in real LLMs), which the tiny
        // 2-layer model lacks.
        let model = SyntheticTransformer::new(ModelConfig::chatglm2_like(61)).unwrap();
        let tasks = longbench_suite(model.config().vocab_size, 256, 1, 61);
        (model, tasks)
    }

    #[test]
    fn report_structure() {
        let (model, tasks) = setup();
        let report = evaluate_method(&model, &tasks, &FullAttention::new()).unwrap();
        assert_eq!(report.family_scores.len(), 6);
        assert_eq!(report.method, "FullAttention");
        assert!(report.total > 0.0);
        assert_eq!(report.mean_density, 1.0);
        let sum: f32 = report.family_scores.iter().map(|f| f.score).sum();
        assert!((report.total - sum).abs() < 1e-4);
    }

    #[test]
    fn sample_attention_near_lossless_streaming_not() {
        let (model, tasks) = setup();
        let full = evaluate_method(&model, &tasks, &FullAttention::new()).unwrap();
        let sample =
            evaluate_method(&model, &tasks, &SampleAttentionMethod::paper_default()).unwrap();
        let streaming = evaluate_method(&model, &tasks, &StreamingLlm::paper_config()).unwrap();
        let sample_pct = normalize_to_full(&sample, &full);
        let streaming_pct = normalize_to_full(&streaming, &full);
        assert!(sample_pct >= 99.0, "SampleAttention at {sample_pct}% of full");
        assert!(
            streaming_pct < sample_pct,
            "streaming {streaming_pct}% vs sample {sample_pct}%"
        );
        assert!(sample.mean_density < 1.0);
    }

    #[test]
    fn empty_tasks() {
        let (model, _) = setup();
        let report = evaluate_method(&model, &[], &FullAttention::new()).unwrap();
        assert!(report.family_scores.is_empty());
        assert_eq!(report.total, 0.0);
        assert_eq!(report.mean_density, 1.0);
    }

    #[test]
    fn normalize_edge_cases() {
        let empty = MethodReport {
            method: "x".into(),
            family_scores: vec![],
            total: 0.0,
            mean_density: 1.0,
        };
        assert_eq!(normalize_to_full(&empty, &empty), 100.0);
    }
}
