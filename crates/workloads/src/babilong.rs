//! BABILong-proxy: generative reasoning-over-haystack tasks at
//! configurable lengths (the original benchmark scatters bAbI facts
//! through arbitrary amounts of PG-19 filler; lengths are a free
//! parameter, which is the property we reproduce).


use sa_tensor::DeterministicRng;

use crate::vocab::BLANK_TOKEN;
use crate::{Question, Task, TaskFamily, VocabLayout};

/// Generates the four-task BABILong-proxy suite at each requested length.
///
/// Task types:
/// - `qa1`: one supporting fact;
/// - `qa2`: two supporting facts, both queried;
/// - `qa3`: three facts among heavy distractors;
/// - `qa4`: one fact at the extreme start (maximum retrieval distance).
///
/// # Panics
///
/// Panics if any length is below 64.
pub fn babilong_suite(vocab_size: usize, lengths: &[usize], seed: u64) -> Vec<Task> {
    let vocab = VocabLayout::for_vocab(vocab_size);
    let mut tasks = Vec::new();
    for (li, &length) in lengths.iter().enumerate() {
        assert!(length >= 64, "length too short: {length}");
        let s = seed.wrapping_add(li as u64 * 1009);
        tasks.push(qa_n_facts(&vocab, length, 1, false, TaskFamily::BabiLong(1), s));
        tasks.push(qa_n_facts(&vocab, length, 2, false, TaskFamily::BabiLong(2), s ^ 1));
        tasks.push(qa_n_facts(&vocab, length, 3, true, TaskFamily::BabiLong(3), s ^ 2));
        tasks.push(qa_long_range(&vocab, length, s ^ 3));
    }
    tasks
}

use crate::haystack::haystack;

fn qa_n_facts(
    vocab: &VocabLayout,
    length: usize,
    n: usize,
    distractors: bool,
    family: TaskFamily,
    seed: u64,
) -> Task {
    let mut rng = DeterministicRng::new(seed);
    let mut tokens = haystack(vocab, length, &mut rng);
    let marker_ids = rng.distinct_indices(vocab.num_markers(), n + 6);
    let mut planter = crate::haystack::Planter::new();
    let mut facts = Vec::new();
    for f in 0..n {
        let marker = vocab.marker(marker_ids[f]);
        let payload = vocab.payload(rng.index(vocab.num_payloads()));
        let lo = 1 + f * (length - 8) / n;
        let hi = 1 + (f + 1) * (length - 8) / n - 2;
        let pos = planter.plant(&mut tokens, lo + rng.index(hi - lo), marker, payload);
        // Redundant restatement at a random earlier spot, like bAbI
        // stories repeating supporting facts.
        planter.plant_copy(&mut tokens, pos, marker, payload, &mut rng);
        facts.push((marker, payload));
    }
    if distractors {
        // Unqueried decoy facts with distinct markers.
        for d in 0..6 {
            let marker = vocab.marker(marker_ids[n + d]);
            let payload = vocab.payload(rng.index(vocab.num_payloads()));
            let pos = 1 + rng.index(length - 8);
            let _ = planter.try_plant(&mut tokens, pos, marker, payload);
        }
    }
    let mut questions = Vec::new();
    for &(marker, payload) in &facts {
        tokens.push(marker);
        questions.push(Question {
            position: tokens.len() - 1,
            expected: payload,
        });
        tokens.push(BLANK_TOKEN);
    }
    crate::haystack::append_suffix(vocab, &mut tokens, &mut rng);
    Task {
        name: format!("babilong_{}_{seed:x}", family.label().replace(' ', "")),
        family,
        tokens,
        questions,
        answer_range: vocab.payload_range(),
    }
}

fn qa_long_range(vocab: &VocabLayout, length: usize, seed: u64) -> Task {
    let mut rng = DeterministicRng::new(seed);
    let mut tokens = haystack(vocab, length, &mut rng);
    let marker = vocab.marker(rng.index(vocab.num_markers()));
    let payload = vocab.payload(rng.index(vocab.num_payloads()));
    // The fact sits immediately after BOS: maximal distance to the query.
    tokens[1] = marker;
    tokens[2] = payload;
    tokens.push(marker);
    let position = tokens.len() - 1;
    crate::haystack::append_suffix(vocab, &mut tokens, &mut rng);
    Task {
        name: format!("babilong_qa4_{seed:x}"),
        family: TaskFamily::BabiLong(4),
        tokens,
        questions: vec![Question {
            position,
            expected: payload,
        }],
        answer_range: vocab.payload_range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_baselines::{FullAttention, StreamingLlm};
    use sa_model::{ModelConfig, SyntheticTransformer};

    #[test]
    fn suite_shape() {
        let tasks = babilong_suite(512, &[128, 256], 5);
        assert_eq!(tasks.len(), 8);
        assert!(tasks.iter().any(|t| t.family == TaskFamily::BabiLong(1)));
        assert!(tasks.iter().any(|t| t.family == TaskFamily::BabiLong(4)));
        // qa2 has two questions.
        let qa2 = tasks.iter().find(|t| t.family == TaskFamily::BabiLong(2)).unwrap();
        assert_eq!(qa2.questions.len(), 2);
    }

    #[test]
    fn full_attention_scores_high() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(51)).unwrap();
        let tasks = babilong_suite(model.config().vocab_size, &[256], 51);
        let mean = tasks
            .iter()
            .map(|t| t.evaluate(&model, &FullAttention::new()).unwrap())
            .sum::<f32>()
            / tasks.len() as f32;
        assert!(mean > 75.0, "full-attention mean {mean}");
    }

    #[test]
    fn long_range_fact_defeats_window_methods() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(52)).unwrap();
        let tasks = babilong_suite(model.config().vocab_size, &[512], 52);
        let qa4 = tasks.iter().find(|t| t.family == TaskFamily::BabiLong(4)).unwrap();
        // StreamingLLM keeps sinks (position 0..4): the fact at positions
        // 1-2 is actually INSIDE the sink area, so it survives! This is
        // the one case sink+window handles; assert it does.
        let s = qa4.evaluate(&model, &StreamingLlm::paper_config()).unwrap();
        assert_eq!(s, 100.0, "sink area should preserve a front fact");
    }

    #[test]
    fn deterministic() {
        let a = babilong_suite(512, &[128], 1);
        let b = babilong_suite(512, &[128], 1);
        assert_eq!(a[0].tokens, b[0].tokens);
    }
}
