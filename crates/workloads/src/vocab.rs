//! Re-export of the vocabulary banding, which lives in `sa-model` so the
//! embedder can mark salient (marker/payload) tokens.

pub use sa_model::{VocabLayout, BLANK_TOKEN};
