//! # sa-workloads
//!
//! Synthetic long-context workloads standing in for the paper's three
//! benchmark suites (LongBench, BABILong, Needle-in-a-Haystack).
//!
//! Every task is built from the same verifiable mechanic the synthetic
//! model implements natively: **associative recall**. A fact is a
//! `marker → payload` token pair planted somewhere in a long filler
//! stream; a question repeats the marker, and a correct model produces the
//! payload's embedding at the question position (via its induction-style
//! retrieval heads). Because the payload's key-value entry sits at an
//! arbitrary mid-context position, a sparse attention method keeps the
//! task solvable **iff** its mask retains that entry — which is precisely
//! the property the paper's benchmarks measure (and why StreamingLLM
//! collapses at prefill while SampleAttention does not).
//!
//! Task families differ in planting geometry, mirroring the character of
//! the original suites:
//!
//! - [`longbench`]: six families — single-doc QA, multi-doc QA,
//!   summarization (many facts queried), few-shot (repeated examples),
//!   synthetic retrieval (distractor-heavy), code completion (def/use
//!   pairs);
//! - [`babilong`]: four generative task types at configurable lengths;
//! - [`needle`]: the depth × length stress grid of the
//!   Needle-in-a-Haystack test;
//! - [`dataset`]: the small profiling set (22 requests of mixed lengths)
//!   the paper uses for offline hyper-parameter tuning;
//! - [`arrivals`]: seeded open-loop arrival processes (Poisson with
//!   diurnal and flash-crowd rate shapes) for the serving experiments —
//!   the traffic side of the task mix above.
//!
//! Scores are 0–100 per task (fraction of questions answered correctly),
//! with [`scoring`] aggregating per-family and computing the
//! "% of full attention" normalisation used for the near-lossless
//! criterion.

pub mod arrivals;
pub mod babilong;
pub mod dataset;
mod haystack;
pub mod longbench;
pub mod needle;
pub mod scoring;
mod task;
mod vocab;

pub use arrivals::{ArrivalProcess, ArrivalShape};
pub use babilong::babilong_suite;
pub use longbench::{longbench_suite, LongBenchFamily};
pub use needle::{needle_grid, NeedleCell, NeedleConfig};
pub use scoring::{evaluate_method, normalize_to_full, FamilyScore, MethodReport};
pub use task::{Question, Task, TaskFamily};
pub use vocab::VocabLayout;
