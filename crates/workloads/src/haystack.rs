//! Haystack generation shared by the workload families.
//!
//! Real long documents are full of attention-attracting tokens (entities,
//! rare words, code identifiers) — that is why the paper's attention maps
//! show *hundreds* of column stripes, each carrying a small slice of mass.
//! The haystacks therefore sprinkle **decoy salient tokens** (payload-band
//! tokens not used as answers) among the filler at [`DECOY_RATE`], so the
//! accumulated column-score distribution is long-tailed like real
//! attention: SampleAttention's α-cut then truncates among the many tiny
//! decoy stripes instead of amputating a critical fact.

use sa_model::{VocabLayout, BOS_TOKEN};
use sa_tensor::DeterministicRng;

/// Fraction of haystack positions holding a decoy salient token.
pub const DECOY_RATE: f32 = 0.0;

/// Filler tokens appended after the questions (an "instruction suffix",
/// like the answer-format boilerplate real prompts end with). It pushes
/// the question rows out of the mask's dense bottom area, so benchmark
/// scores actually measure whether the sparse mask retained the facts'
/// key-values.
pub const INSTRUCTION_SUFFIX: usize = 48;

/// Tracks planted fact positions so redundant copies and distractors
/// never clobber one another (a corrupted `marker → payload` pair would
/// plant false evidence).
#[derive(Debug, Default)]
pub(crate) struct Planter {
    occupied: Vec<usize>,
}

impl Planter {
    pub(crate) fn new() -> Self {
        Planter::default()
    }

    fn conflicts(&self, pos: usize) -> bool {
        // A plant occupies pos and pos+1; require one token of clearance.
        self.occupied
            .iter()
            .any(|&o| pos.abs_diff(o) <= 2)
    }

    /// Plants at `pos` if the slot (and its pair token) is free.
    pub(crate) fn try_plant(
        &mut self,
        tokens: &mut [u32],
        pos: usize,
        marker: u32,
        payload: u32,
    ) -> bool {
        if pos == 0 || pos + 1 >= tokens.len() || self.conflicts(pos) {
            return false;
        }
        tokens[pos] = marker;
        tokens[pos + 1] = payload;
        self.occupied.push(pos);
        true
    }

    /// Plants at `pos`, nudging forward up to 8 slots to find a free one.
    /// Returns the position used (facts are never silently dropped).
    ///
    /// # Panics
    ///
    /// Panics if no free slot exists in the probe range (generators size
    /// their regions to make this impossible).
    pub(crate) fn plant(
        &mut self,
        tokens: &mut [u32],
        pos: usize,
        marker: u32,
        payload: u32,
    ) -> usize {
        for probe in 0..32 {
            let p = pos + 3 * probe;
            if self.try_plant(tokens, p, marker, payload) {
                return p;
            }
            let q = pos.saturating_sub(3 * probe).max(1);
            if self.try_plant(tokens, q, marker, payload) {
                return q;
            }
        }
        panic!("no free plant slot near {pos}");
    }

    /// Plants a redundant second copy at a random early position; gives
    /// up silently after a few collision retries (the primary remains).
    pub(crate) fn plant_copy(
        &mut self,
        tokens: &mut [u32],
        before: usize,
        marker: u32,
        payload: u32,
        rng: &mut DeterministicRng,
    ) {
        let limit = before.max(8).min(tokens.len().saturating_sub(2));
        for _ in 0..8 {
            let pos = 1 + rng.index(limit.saturating_sub(1).max(1));
            if self.try_plant(tokens, pos, marker, payload) {
                return;
            }
        }
    }
}

/// Appends the instruction suffix to a finished prompt.
pub(crate) fn append_suffix(vocab: &VocabLayout, tokens: &mut Vec<u32>, rng: &mut DeterministicRng) {
    for _ in 0..INSTRUCTION_SUFFIX {
        tokens.push(vocab.filler(rng.index(10_000)));
    }
}

/// BOS + filler-with-decoys stream of the requested length.
pub(crate) fn haystack(vocab: &VocabLayout, length: usize, rng: &mut DeterministicRng) -> Vec<u32> {
    let mut tokens = Vec::with_capacity(length + 16);
    tokens.push(BOS_TOKEN);
    while tokens.len() < length {
        if rng.chance(DECOY_RATE) {
            tokens.push(vocab.payload(rng.index(vocab.num_payloads())));
        } else {
            tokens.push(vocab.filler(rng.index(10_000)));
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haystack_has_decoys_and_fillers() {
        let vocab = VocabLayout::for_vocab(512);
        let mut rng = DeterministicRng::new(1);
        let h = haystack(&vocab, 1000, &mut rng);
        assert_eq!(h.len(), 1000);
        assert_eq!(h[0], BOS_TOKEN);
        let decoys = h.iter().filter(|&&t| vocab.is_salient(t)).count();
        let frac = decoys as f32 / h.len() as f32;
        assert!((frac - DECOY_RATE).abs() < 0.04, "decoy fraction {frac}");
    }

    #[test]
    fn decoys_are_payload_band_only() {
        let vocab = VocabLayout::for_vocab(512);
        let mut rng = DeterministicRng::new(2);
        let h = haystack(&vocab, 500, &mut rng);
        for &t in &h[1..] {
            // No marker-band tokens: facts' markers stay unique.
            assert!(
                !(vocab.marker(0)..vocab.payload(0)).contains(&t),
                "marker-band decoy {t}"
            );
        }
    }
}
