//! Open-loop arrival processes for serving experiments.
//!
//! A closed-loop benchmark (fixed batch, next request only after the
//! previous finished) hides queueing: the system is never asked to
//! absorb more work than it just finished. Production traffic is
//! **open-loop** — users arrive whether or not the server is keeping
//! up — and that is the regime where prefill acceleration turns into
//! user-visible TTFT/goodput wins. This module generates reproducible
//! open-loop arrival timestamps on the serving layer's virtual
//! millisecond clock.
//!
//! The base process is Poisson with rate λ requests/second; a
//! [`shape`](ArrivalShape) modulates the instantaneous rate:
//!
//! - [`Constant`](ArrivalShape::Constant): homogeneous Poisson;
//! - [`Diurnal`](ArrivalShape::Diurnal): a sinusoidal day/night swing
//!   (`λ(t) = λ · (1 + depth · sin(2πt/period))`), the slow rate drift
//!   every long-running service sees;
//! - [`FlashCrowd`](ArrivalShape::FlashCrowd): periodic bursts where
//!   the rate multiplies for a short window — the adversarial shape
//!   that exposes head-of-line blocking and admission-control gaps;
//! - [`DiurnalFlash`](ArrivalShape::DiurnalFlash): both at once.
//!
//! Sampling uses Lewis–Shedler **thinning**: draw a homogeneous
//! Poisson stream at the peak rate, keep each point with probability
//! `λ(t) / λ_peak`. Every draw comes from a [`DeterministicRng`], so a
//! `(seed, rate, shape, duration)` tuple always reproduces the same
//! trace, bit for bit.

use sa_tensor::DeterministicRng;

/// How the instantaneous arrival rate varies over virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Homogeneous Poisson at the base rate.
    Constant,
    /// Sinusoidal modulation: `λ(t) = λ · (1 + depth · sin(2πt/period))`.
    /// `depth` is clamped to `[0, 1)` so the rate never reaches zero.
    Diurnal {
        /// Full day/night period, virtual milliseconds (clamped ≥ 1).
        period_ms: u64,
        /// Swing amplitude as a fraction of the base rate.
        depth: f64,
    },
    /// Periodic flash crowds: every `quiet_ms + burst_ms` the rate
    /// multiplies by `multiplier` for `burst_ms`.
    FlashCrowd {
        /// Baseline stretch between bursts, virtual ms (clamped ≥ 1).
        quiet_ms: u64,
        /// Burst length, virtual ms (clamped ≥ 1).
        burst_ms: u64,
        /// Rate multiplier during a burst (clamped ≥ 1).
        multiplier: f64,
    },
    /// Diurnal swing with flash crowds layered on top.
    DiurnalFlash {
        /// Diurnal period, virtual ms (clamped ≥ 1).
        period_ms: u64,
        /// Diurnal swing amplitude, clamped to `[0, 1)`.
        depth: f64,
        /// Baseline stretch between bursts, virtual ms (clamped ≥ 1).
        quiet_ms: u64,
        /// Burst length, virtual ms (clamped ≥ 1).
        burst_ms: u64,
        /// Rate multiplier during a burst (clamped ≥ 1).
        multiplier: f64,
    },
}

impl ArrivalShape {
    /// Stable snake_case name for reports and results files.
    pub fn as_str(&self) -> &'static str {
        match self {
            ArrivalShape::Constant => "constant",
            ArrivalShape::Diurnal { .. } => "diurnal",
            ArrivalShape::FlashCrowd { .. } => "flash_crowd",
            ArrivalShape::DiurnalFlash { .. } => "diurnal_flash",
        }
    }
}

/// A seeded open-loop arrival process on the virtual millisecond clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    /// Seed for the thinning draws.
    pub seed: u64,
    /// Base arrival rate, requests per virtual second (clamped to a
    /// small positive floor at generation time).
    pub rate_per_sec: f64,
    /// Rate modulation over time.
    pub shape: ArrivalShape,
}

/// Floor for the base rate: below this the process degenerates.
const MIN_RATE_PER_SEC: f64 = 1e-6;

impl ArrivalProcess {
    /// A homogeneous Poisson process.
    pub fn constant(seed: u64, rate_per_sec: f64) -> Self {
        ArrivalProcess {
            seed,
            rate_per_sec,
            shape: ArrivalShape::Constant,
        }
    }

    /// The base rate with the positive floor applied.
    fn base_rate(&self) -> f64 {
        if self.rate_per_sec.is_finite() {
            self.rate_per_sec.max(MIN_RATE_PER_SEC)
        } else {
            MIN_RATE_PER_SEC
        }
    }

    /// Instantaneous rate at virtual time `t_ms`, requests per second.
    pub fn rate_at(&self, t_ms: u64) -> f64 {
        let base = self.base_rate();
        let diurnal = |period_ms: u64, depth: f64| -> f64 {
            let period = period_ms.max(1) as f64;
            let depth = depth.clamp(0.0, 0.999);
            let phase = 2.0 * std::f64::consts::PI * (t_ms as f64 % period) / period;
            1.0 + depth * phase.sin()
        };
        let flash = |quiet_ms: u64, burst_ms: u64, multiplier: f64| -> f64 {
            let cycle = quiet_ms.max(1) + burst_ms.max(1);
            if t_ms % cycle >= quiet_ms.max(1) {
                multiplier.max(1.0)
            } else {
                1.0
            }
        };
        match self.shape {
            ArrivalShape::Constant => base,
            ArrivalShape::Diurnal { period_ms, depth } => base * diurnal(period_ms, depth),
            ArrivalShape::FlashCrowd {
                quiet_ms,
                burst_ms,
                multiplier,
            } => base * flash(quiet_ms, burst_ms, multiplier),
            ArrivalShape::DiurnalFlash {
                period_ms,
                depth,
                quiet_ms,
                burst_ms,
                multiplier,
            } => base * diurnal(period_ms, depth) * flash(quiet_ms, burst_ms, multiplier),
        }
    }

    /// The peak instantaneous rate (the thinning envelope), req/s.
    pub fn peak_rate(&self) -> f64 {
        let base = self.base_rate();
        match self.shape {
            ArrivalShape::Constant => base,
            ArrivalShape::Diurnal { depth, .. } => base * (1.0 + depth.clamp(0.0, 0.999)),
            ArrivalShape::FlashCrowd { multiplier, .. } => base * multiplier.max(1.0),
            ArrivalShape::DiurnalFlash {
                depth, multiplier, ..
            } => base * (1.0 + depth.clamp(0.0, 0.999)) * multiplier.max(1.0),
        }
    }

    /// The mean rate over `[0, duration_ms)`, req/s (closed form, no
    /// sampling): what the generated count concentrates around.
    pub fn mean_rate(&self, duration_ms: u64) -> f64 {
        let duration = duration_ms.max(1);
        // The shapes are piecewise-simple; integrate numerically on a
        // millisecond grid capped at 10k probes (deterministic, cheap).
        let probes = duration.min(10_000);
        let step = duration as f64 / probes as f64;
        let mut acc = 0.0;
        for i in 0..probes {
            acc += self.rate_at((i as f64 * step) as u64);
        }
        acc / probes as f64
    }

    /// Generates the sorted arrival timestamps (virtual ms) over
    /// `[0, duration_ms)` by thinning a peak-rate Poisson stream.
    pub fn generate(&self, duration_ms: u64) -> Vec<u64> {
        let peak = self.peak_rate();
        let mut rng = DeterministicRng::new(self.seed ^ 0x6172_7269_7661_6c73);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let horizon = duration_ms as f64;
        loop {
            // Exponential inter-arrival at the peak rate, in ms. The
            // uniform draw is nudged off 0 so ln() stays finite.
            let u = f64::from(rng.uniform()).max(1e-12);
            t += -u.ln() * 1000.0 / peak;
            if !(t < horizon) {
                break;
            }
            let at = t as u64;
            let keep = f64::from(rng.uniform()) * peak < self.rate_at(at);
            if keep {
                out.push(at);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_process_is_reproducible_and_sorted() {
        let p = ArrivalProcess::constant(7, 5.0);
        let a = p.generate(60_000);
        let b = p.generate(60_000);
        assert_eq!(a, b, "same seed must reproduce the same trace");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
        assert!(a.iter().all(|&t| t < 60_000));
        let c = ArrivalProcess::constant(8, 5.0).generate(60_000);
        assert_ne!(a, c, "different seeds draw different traces");
    }

    #[test]
    fn constant_count_concentrates_around_rate_times_duration() {
        // 5 req/s over 200 virtual seconds: expect ~1000 ± a wide
        // Poisson margin (sd ≈ 32; allow 6 sd).
        let p = ArrivalProcess::constant(11, 5.0);
        let n = p.generate(200_000).len() as f64;
        assert!((n - 1000.0).abs() < 200.0, "got {n} arrivals");
    }

    #[test]
    fn diurnal_rate_swings_and_stays_positive() {
        let p = ArrivalProcess {
            seed: 3,
            rate_per_sec: 4.0,
            shape: ArrivalShape::Diurnal {
                period_ms: 40_000,
                depth: 0.8,
            },
        };
        let peak_quarter = p.rate_at(10_000); // sin peak
        let trough_quarter = p.rate_at(30_000); // sin trough
        assert!(peak_quarter > 4.0 * 1.7, "peak {peak_quarter}");
        assert!(trough_quarter < 4.0 * 0.3, "trough {trough_quarter}");
        assert!(trough_quarter > 0.0, "rate must never reach zero");
        assert!(p.peak_rate() >= peak_quarter);
        // Arrivals in the peak half outnumber the trough half.
        let times = p.generate(40_000);
        let first_half = times.iter().filter(|&&t| t < 20_000).count();
        let second_half = times.len() - first_half;
        assert!(
            first_half > second_half,
            "diurnal peak half {first_half} vs trough half {second_half}"
        );
    }

    #[test]
    fn flash_crowd_bursts_are_denser_than_quiet_stretches() {
        let p = ArrivalProcess {
            seed: 5,
            rate_per_sec: 2.0,
            shape: ArrivalShape::FlashCrowd {
                quiet_ms: 8_000,
                burst_ms: 2_000,
                multiplier: 8.0,
            },
        };
        assert_eq!(p.rate_at(0), 2.0);
        assert_eq!(p.rate_at(8_500), 16.0);
        let times = p.generate(100_000);
        let in_burst = times.iter().filter(|&&t| t % 10_000 >= 8_000).count();
        let in_quiet = times.len() - in_burst;
        // Bursts cover 20% of time at 8x rate: expect well over the
        // quiet count per unit time.
        let burst_density = in_burst as f64 / 20_000.0;
        let quiet_density = in_quiet as f64 / 80_000.0;
        assert!(
            burst_density > 3.0 * quiet_density,
            "burst density {burst_density} vs quiet {quiet_density}"
        );
    }

    #[test]
    fn degenerate_parameters_are_clamped_not_fatal() {
        let p = ArrivalProcess {
            seed: 1,
            rate_per_sec: f64::NAN,
            shape: ArrivalShape::DiurnalFlash {
                period_ms: 0,
                depth: 9.0,
                quiet_ms: 0,
                burst_ms: 0,
                multiplier: 0.0,
            },
        };
        let times = p.generate(1_000);
        assert!(times.len() <= 1, "floored rate draws almost nothing");
        assert!(p.peak_rate() > 0.0);
        assert!(p.rate_at(123) > 0.0);
        // Zero-duration horizon yields an empty trace.
        assert!(ArrivalProcess::constant(0, 10.0).generate(0).is_empty());
    }

    #[test]
    fn mean_rate_tracks_shape() {
        let flat = ArrivalProcess::constant(0, 3.0);
        assert!((flat.mean_rate(10_000) - 3.0).abs() < 1e-9);
        let crowd = ArrivalProcess {
            seed: 0,
            rate_per_sec: 3.0,
            shape: ArrivalShape::FlashCrowd {
                quiet_ms: 9_000,
                burst_ms: 1_000,
                multiplier: 11.0,
            },
        };
        // 90% at 3, 10% at 33 → mean 6.
        let m = crowd.mean_rate(100_000);
        assert!((m - 6.0).abs() < 0.5, "mean {m}");
    }
}
