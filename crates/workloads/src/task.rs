//! The task abstraction shared by all workload families.

use sa_baselines::AttentionMethod;
use sa_model::SyntheticTransformer;
use sa_tensor::TensorError;
use sa_json::{FromJson, Json, JsonError, ToJson};

/// Which benchmark family a task belongs to (drives Table 2's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskFamily {
    /// LongBench: single-document QA.
    SingleDocQa,
    /// LongBench: multi-document QA.
    MultiDocQa,
    /// LongBench: summarization (many facts).
    Summarization,
    /// LongBench: few-shot learning (repeated examples).
    FewShotLearning,
    /// LongBench: synthetic retrieval (distractor-heavy).
    SyntheticTasks,
    /// LongBench: code completion (def/use pairs).
    CodeCompletion,
    /// BABILong generative task type `qa{0}`.
    BabiLong(u8),
    /// Needle-in-a-Haystack cell.
    Needle,
}

// Externally tagged, matching the previous derive: unit variants are bare
// strings, the newtype variant is `{"BabiLong": n}`.
impl ToJson for TaskFamily {
    fn to_json(&self) -> Json {
        let unit = |name: &str| Json::Str(name.to_string());
        match self {
            TaskFamily::SingleDocQa => unit("SingleDocQa"),
            TaskFamily::MultiDocQa => unit("MultiDocQa"),
            TaskFamily::Summarization => unit("Summarization"),
            TaskFamily::FewShotLearning => unit("FewShotLearning"),
            TaskFamily::SyntheticTasks => unit("SyntheticTasks"),
            TaskFamily::CodeCompletion => unit("CodeCompletion"),
            TaskFamily::Needle => unit("Needle"),
            TaskFamily::BabiLong(n) => {
                Json::Object(vec![("BabiLong".to_string(), n.to_json())])
            }
        }
    }
}

impl FromJson for TaskFamily {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(name) = v.as_str() {
            return match name {
                "SingleDocQa" => Ok(TaskFamily::SingleDocQa),
                "MultiDocQa" => Ok(TaskFamily::MultiDocQa),
                "Summarization" => Ok(TaskFamily::Summarization),
                "FewShotLearning" => Ok(TaskFamily::FewShotLearning),
                "SyntheticTasks" => Ok(TaskFamily::SyntheticTasks),
                "CodeCompletion" => Ok(TaskFamily::CodeCompletion),
                "Needle" => Ok(TaskFamily::Needle),
                other => Err(JsonError::new(format!(
                    "TaskFamily: unknown variant `{other}`"
                ))),
            };
        }
        match v.get("BabiLong") {
            Some(n) => Ok(TaskFamily::BabiLong(u8::from_json(n).map_err(|e| {
                e.in_context("TaskFamily::BabiLong")
            })?)),
            None => Err(JsonError::new(format!(
                "TaskFamily: expected variant string or {{\"BabiLong\": n}}, got {}",
                v.kind()
            ))),
        }
    }
}

impl TaskFamily {
    /// Display name matching the paper's table headers.
    pub fn label(&self) -> String {
        match self {
            TaskFamily::SingleDocQa => "Single-Doc QA".to_string(),
            TaskFamily::MultiDocQa => "Multi-Doc QA".to_string(),
            TaskFamily::Summarization => "Summarization".to_string(),
            TaskFamily::FewShotLearning => "Few-shot Learning".to_string(),
            TaskFamily::SyntheticTasks => "Synthetic Tasks".to_string(),
            TaskFamily::CodeCompletion => "Code Completion".to_string(),
            TaskFamily::BabiLong(n) => format!("BABILong qa{n}"),
            TaskFamily::Needle => "Needle in a Haystack".to_string(),
        }
    }

    /// The six LongBench families in table order.
    pub fn longbench_families() -> [TaskFamily; 6] {
        [
            TaskFamily::SingleDocQa,
            TaskFamily::MultiDocQa,
            TaskFamily::Summarization,
            TaskFamily::FewShotLearning,
            TaskFamily::SyntheticTasks,
            TaskFamily::CodeCompletion,
        ]
    }
}

/// One question: read the model's answer at `position`, expect `expected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Question {
    /// Sequence position whose retrieval output is read.
    pub position: usize,
    /// The payload token the model must produce.
    pub expected: u32,
}

sa_json::impl_json_struct!(Question { position, expected });

/// A synthetic long-context task instance.
#[derive(Debug, Clone)]
pub struct Task {
    /// Unique instance name (e.g. `"niah_len512_depth0.25"`).
    pub name: String,
    /// Benchmark family.
    pub family: TaskFamily,
    /// The full prompt token stream.
    pub tokens: Vec<u32>,
    /// Questions to score.
    pub questions: Vec<Question>,
    /// Valid-answer token range for constrained decoding.
    pub answer_range: std::ops::Range<u32>,
}

sa_json::impl_json_struct!(Task {
    name,
    family,
    tokens,
    questions,
    answer_range
});

impl Task {
    /// Prompt length in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` for an empty prompt (never produced by the generators).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Runs the task under `method` and returns the score in `[0, 100]`
    /// (percentage of questions answered correctly).
    ///
    /// # Errors
    ///
    /// Propagates kernel/shape errors from the model's prefill.
    pub fn evaluate(
        &self,
        model: &SyntheticTransformer,
        method: &dyn AttentionMethod,
    ) -> Result<f32, TensorError> {
        let result = model.prefill(&self.tokens, method)?;
        if self.questions.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for q in &self.questions {
            let (answer, _) = model.answer_at_in(&result, q.position, self.answer_range.clone());
            if answer == q.expected {
                correct += 1;
            }
        }
        Ok(100.0 * correct as f32 / self.questions.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VocabLayout;
    use sa_baselines::FullAttention;
    use sa_model::{ModelConfig, BOS_TOKEN};

    fn simple_task(model: &SyntheticTransformer) -> Task {
        let v = VocabLayout::for_vocab(model.config().vocab_size);
        let mut tokens: Vec<u32> = vec![BOS_TOKEN];
        tokens.extend((0..200).map(|i| v.filler(i)));
        tokens[90] = v.marker(3);
        tokens[91] = v.payload(5);
        tokens.push(v.marker(3));
        let pos = tokens.len() - 1;
        Task {
            name: "unit".to_string(),
            family: TaskFamily::SingleDocQa,
            tokens,
            questions: vec![Question {
                position: pos,
                expected: v.payload(5),
            }],
            answer_range: v.payload_range(),
        }
    }

    #[test]
    fn full_attention_scores_100() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(21)).unwrap();
        let task = simple_task(&model);
        let score = task.evaluate(&model, &FullAttention::new()).unwrap();
        assert_eq!(score, 100.0);
    }

    #[test]
    fn empty_questions_score_zero() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(22)).unwrap();
        let mut task = simple_task(&model);
        task.questions.clear();
        assert_eq!(task.evaluate(&model, &FullAttention::new()).unwrap(), 0.0);
    }

    #[test]
    fn family_labels() {
        assert_eq!(TaskFamily::SingleDocQa.label(), "Single-Doc QA");
        assert_eq!(TaskFamily::BabiLong(3).label(), "BABILong qa3");
        assert_eq!(TaskFamily::longbench_families().len(), 6);
    }

    #[test]
    fn task_len() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(23)).unwrap();
        let task = simple_task(&model);
        assert_eq!(task.len(), 202);
        assert!(!task.is_empty());
    }
}
