//! Needle-in-a-Haystack: the depth × length stress grid.
//!
//! A single fact (the needle) is buried at a controlled depth inside a
//! long haystack of random filler; the question at the end asks for it.
//! The paper runs 32 depth intervals over 10K–96K tokens; the CPU-scale
//! default uses 8 depths over shorter prompts (configurable).


use sa_tensor::DeterministicRng;

use crate::{Question, Task, TaskFamily, VocabLayout};

/// Configuration of the needle grid.
#[derive(Debug, Clone, PartialEq)]
pub struct NeedleConfig {
    /// Haystack lengths to test.
    pub lengths: Vec<usize>,
    /// Number of uniformly spaced depth intervals per length.
    pub depth_intervals: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for NeedleConfig {
    fn default() -> Self {
        NeedleConfig {
            lengths: vec![256, 512, 768, 1024],
            depth_intervals: 8,
            seed: 0,
        }
    }
}

/// One cell of the grid: a task at a specific `(length, depth)`.
#[derive(Debug, Clone)]
pub struct NeedleCell {
    /// Haystack length in tokens.
    pub length: usize,
    /// Needle depth as a fraction of the haystack (0 = start, 1 = end).
    pub depth_fraction: f64,
    /// The generated task.
    pub task: Task,
}

/// Generates the full depth × length grid for a model vocabulary of
/// `vocab_size`.
///
/// # Panics
///
/// Panics if any length is shorter than 16 tokens or `depth_intervals`
/// is zero.
pub fn needle_grid(vocab_size: usize, config: &NeedleConfig) -> Vec<NeedleCell> {
    assert!(config.depth_intervals > 0, "depth_intervals must be >= 1");
    let vocab = VocabLayout::for_vocab(vocab_size);
    let mut rng = DeterministicRng::new(config.seed ^ 0xeed1e);
    let mut cells = Vec::new();
    for &length in &config.lengths {
        assert!(length >= 16, "haystack too short: {length}");
        for di in 0..config.depth_intervals {
            let depth_fraction = if config.depth_intervals == 1 {
                0.5
            } else {
                di as f64 / (config.depth_intervals - 1) as f64
            };
            // Depth position within [1, length - 4] so the needle pair and
            // the final question always fit.
            let lo = 1.0;
            let hi = (length - 4) as f64;
            let pos = (lo + depth_fraction * (hi - lo)).round() as usize;

            let marker = vocab.marker(rng.index(vocab.num_markers()));
            let payload = vocab.payload(rng.index(vocab.num_payloads()));
            let mut tokens = crate::haystack::haystack(&vocab, length - 1, &mut rng);
            tokens[pos] = marker;
            tokens[pos + 1] = payload;
            tokens.push(marker); // the question
            let question_pos = tokens.len() - 1;
            crate::haystack::append_suffix(&vocab, &mut tokens, &mut rng);

            cells.push(NeedleCell {
                length,
                depth_fraction,
                task: Task {
                    name: format!("niah_len{length}_depth{depth_fraction:.2}"),
                    family: TaskFamily::Needle,
                    tokens,
                    questions: vec![Question {
                        position: question_pos,
                        expected: payload,
                    }],
                    answer_range: vocab.payload_range(),
                },
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_baselines::{FullAttention, StreamingLlm};
    use sa_model::{ModelConfig, SyntheticTransformer};

    #[test]
    fn grid_shape() {
        let cfg = NeedleConfig {
            lengths: vec![64, 128],
            depth_intervals: 4,
            seed: 1,
        };
        let cells = needle_grid(512, &cfg);
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].depth_fraction, 0.0);
        assert_eq!(cells[3].depth_fraction, 1.0);
        for c in &cells {
            assert_eq!(
                c.task.tokens.len(),
                c.length + crate::haystack::INSTRUCTION_SUFFIX
            );
            assert_eq!(c.task.questions.len(), 1);
        }
    }

    #[test]
    fn needle_planted_where_claimed() {
        let cfg = NeedleConfig {
            lengths: vec![100],
            depth_intervals: 3,
            seed: 2,
        };
        let cells = needle_grid(512, &cfg);
        for c in &cells {
            let q = c.task.questions[0];
            let marker = c.task.tokens[q.position];
            // the marker appears exactly twice: needle + question
            let count = c.task.tokens.iter().filter(|&&t| t == marker).count();
            assert_eq!(count, 2, "{}", c.task.name);
            let needle_pos = c.task.tokens[..q.position]
                .iter()
                .position(|&t| t == marker)
                .unwrap();
            assert_eq!(c.task.tokens[needle_pos + 1], q.expected);
        }
    }

    #[test]
    fn full_attention_aces_small_grid() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(31)).unwrap();
        let cfg = NeedleConfig {
            lengths: vec![200],
            depth_intervals: 4,
            seed: 3,
        };
        let cells = needle_grid(model.config().vocab_size, &cfg);
        for c in &cells {
            let score = c.task.evaluate(&model, &FullAttention::new()).unwrap();
            assert_eq!(score, 100.0, "{}", c.task.name);
        }
    }

    #[test]
    fn streaming_llm_fails_deep_interior_needles() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(32)).unwrap();
        // 9 depths -> 7 mid-depth cells: enough instances that one lucky
        // in-range argmax cannot flip the verdict (with 3 cells a single
        // chance hit moves the mean by 33 points).
        let cfg = NeedleConfig {
            lengths: vec![400],
            depth_intervals: 9,
            seed: 4,
        };
        let cells = needle_grid(model.config().vocab_size, &cfg);
        let method = StreamingLlm::paper_config();
        // Mid-depth cells (not at the very ends) fall outside sink+window.
        let mid: Vec<_> = cells
            .iter()
            .filter(|c| c.depth_fraction > 0.2 && c.depth_fraction < 0.8)
            .collect();
        assert!(!mid.is_empty());
        let mean: f32 = mid
            .iter()
            .map(|c| c.task.evaluate(&model, &method).unwrap())
            .sum::<f32>()
            / mid.len() as f32;
        assert!(mean < 50.0, "StreamingLLM mid-depth mean {mean}");
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_short_length_panics() {
        let cfg = NeedleConfig {
            lengths: vec![8],
            depth_intervals: 2,
            seed: 0,
        };
        let _ = needle_grid(512, &cfg);
    }
}
