//! The offline profiling dataset.
//!
//! The paper tunes its hyper-parameters on "a small dataset that contains
//! 22 requests ranging from 25K–96K context length". This module builds
//! the CPU-scale analogue: 22 per-head Q/K/V requests extracted from
//! needle prompts of mixed lengths, ready for
//! [`sa_core::tuner::HyperParamTuner`].

use sa_core::tuner::ProfilingRequest;
use sa_model::SyntheticTransformer;
use sa_tensor::TensorError;

use crate::needle::{needle_grid, NeedleConfig};

/// Default request count, matching the paper.
pub const PROFILING_REQUESTS: usize = 22;

/// Builds `count` profiling requests from needle prompts of the given
/// lengths, cycling through the model's (layer, head) pairs so the set
/// covers the head-archetype mix.
///
/// # Errors
///
/// Propagates projection errors (cannot occur for a validated model).
///
/// # Panics
///
/// Panics if `lengths` is empty or `count == 0`.
pub fn profiling_requests(
    model: &SyntheticTransformer,
    lengths: &[usize],
    count: usize,
    seed: u64,
) -> Result<Vec<ProfilingRequest>, TensorError> {
    assert!(!lengths.is_empty(), "need at least one length");
    assert!(count > 0, "need at least one request");
    let cells = needle_grid(
        model.config().vocab_size,
        &NeedleConfig {
            lengths: lengths.to_vec(),
            depth_intervals: count.div_ceil(lengths.len()),
            seed,
        },
    );
    let num_layers = model.config().num_layers;
    let num_heads = model.config().num_heads;
    let mut requests = Vec::with_capacity(count);
    for (i, cell) in cells.iter().take(count).enumerate() {
        // Skip layer 0 (deliberately dense) so the tuner sees the
        // sparsity regime SampleAttention actually targets.
        let layer = 1 + (i % (num_layers - 1).max(1));
        let head = (i * 3) % num_heads;
        let hidden = model.embedder().embed(&cell.task.tokens);
        let (q, k, v) = model.layers()[layer.min(num_layers - 1)].project_head(&hidden, head)?;
        requests.push(ProfilingRequest::new(q, k, v).map_err(|e| match e {
            sa_core::SampleAttentionError::Tensor(t) => t,
            other => TensorError::InvalidDimension {
                op: "profiling_requests",
                what: other.to_string(),
            },
        })?);
    }
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::tuner::{HyperParamTuner, TunerGrid};
    use sa_model::ModelConfig;

    #[test]
    fn builds_requested_count() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(71)).unwrap();
        let reqs = profiling_requests(&model, &[96, 128], 6, 71).unwrap();
        assert_eq!(reqs.len(), 6);
        for r in &reqs {
            assert_eq!(r.q.cols(), model.config().head_dim);
            assert_eq!(r.q.rows(), r.k.rows());
        }
    }

    #[test]
    fn feeds_the_tuner() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(72)).unwrap();
        let reqs = profiling_requests(&model, &[128], 3, 72).unwrap();
        let grid = TunerGrid {
            cra_thresholds: vec![0.95],
            sample_ratios: vec![0.1],
            window_ratios: vec![0.08],
        };
        let tuner = HyperParamTuner::new(grid, 0.9).unwrap();
        let report = tuner.tune(&reqs).unwrap();
        assert_eq!(report.entries.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one length")]
    fn empty_lengths_panics() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(73)).unwrap();
        let _ = profiling_requests(&model, &[], 3, 0);
    }
}
