//! The serving telemetry plane: a structured per-request event log and
//! the scheduler flight recorder.
//!
//! Every lifecycle transition a planner decides — enqueue, admission,
//! governor deferral, dispatch, rung degradation, pressure eviction,
//! checkpoint capture/restore, retry, recovery, shed, cancellation,
//! completion — is recorded as one [`Event`] carrying the virtual-time
//! stamp, tenant, degradation rung, the planner's memory-ledger balance
//! *after* the transition, and a typed reason. The log is emitted by
//! the **serial** planners ([`plan_batch`](crate::plan_batch) and
//! [`plan_continuous`](crate::plan_continuous)) before any parallel
//! model work runs, so its serialized bytes are identical at every
//! `SA_THREADS` setting — the same bit-determinism contract the ledger
//! carries (DESIGN.md §5j).
//!
//! Two audit surfaces hang off the log:
//!
//! - [`EventLog::validate`] is the events↔ledger **conservation
//!   validator**: every request in the [`Ledger`] reaches exactly one
//!   terminal event whose kind, tenant, and finish time agree with its
//!   record, and replaying the `bytes` deltas of admission / eviction /
//!   release events reproduces the `mem_in_use` balance stamped on
//!   every event, returning to the weights baseline at the end (no
//!   leaked reservations).
//! - [`FlightRecorder`] keeps a bounded ring of the planner's last
//!   dispatch/admission decisions (queue depth, free memory, contention
//!   estimate, rung budget) and dumps it into a [`Postmortem`] whenever
//!   a shed, a governor transition to `critical` pressure, or a
//!   crash-storm attempt-budget exhaustion occurs.

use crate::ledger::{Ledger, Outcome, RequestRecord};
use crate::sim::{weight_bytes, Planned};
use std::collections::{BTreeMap, VecDeque};

/// Schema tag for a serialized [`EventLog`].
pub const EVENTS_SCHEMA: &str = "sa.events.v1";

/// Decisions kept in the flight-recorder ring before the oldest is
/// dropped.
pub const FLIGHT_RECORDER_CAPACITY: usize = 32;

/// Postmortems retained per planner run; later triggers only count.
const MAX_POSTMORTEMS: usize = 8;

/// One lifecycle transition kind (`sa.events.v1` taxonomy).
///
/// Terminal kinds (see [`EventKind::is_terminal`]) map 1:1 onto ledger
/// [`Outcome`]s, except that [`RejectedBudget`](Outcome::RejectedBudget)
/// splits into [`Rejected`](EventKind::Rejected) (could never fit the
/// memory budget) and [`Shed`](EventKind::Shed) (governor load shed
/// under critical pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Entered the pending queue at arrival.
    Enqueued,
    /// Reserved memory and joined the running set (`bytes` carries the
    /// reservation, `mem_in_use` the balance after it).
    Admitted,
    /// Admission of the queue head was deferred by the pressure
    /// governor (mirrors the `serve.pressure.deferrals` counter).
    Deferred,
    /// First scheduled onto a worker; the degradation rung is final
    /// from here on.
    Dispatched,
    /// Dispatched below the full-attention rung (deadline budget or
    /// pressure-forced).
    RungDegraded,
    /// A decode-phase session's KV bytes were evicted to make room
    /// (`bytes` carries the freed amount).
    PressureEvicted,
    /// A chunk-boundary prefill checkpoint survived a crash and will
    /// seed the retry.
    CheckpointCaptured,
    /// A retry resumed prefill from a non-empty checkpoint.
    CheckpointRestored,
    /// An attempt crashed and a retry was scheduled.
    Retried,
    /// The scheduled retry will resume from checkpointed progress
    /// instead of re-running prefill from scratch.
    Recovered,
    /// First output token produced (TTFT reference point).
    FirstToken,
    /// A terminal request's memory reservation was returned to the
    /// ledger (`bytes` carries the release; emitted when the planner
    /// applies it, which may lag the terminal event).
    Released,
    /// Terminal: governor load shed under critical pressure (outcome
    /// [`RejectedBudget`](Outcome::RejectedBudget)) or refused by a
    /// tenant quality floor (outcome
    /// [`ShedQualityFloor`](Outcome::ShedQualityFloor)).
    Shed,
    /// Terminal: rejected at arrival (overloaded) or at admission
    /// (could never fit the memory budget).
    Rejected,
    /// Terminal: caller cancelled.
    Cancelled,
    /// Terminal: deadline expired while queued; never ran.
    Expired,
    /// Terminal: deadline expired mid-run.
    DeadlineExceeded,
    /// Terminal: transient faults outlasted the attempt budget.
    Failed,
    /// Terminal: served.
    Completed,
}

sa_json::impl_json_enum!(EventKind {
    Enqueued,
    Admitted,
    Deferred,
    Dispatched,
    RungDegraded,
    PressureEvicted,
    CheckpointCaptured,
    CheckpointRestored,
    Retried,
    Recovered,
    FirstToken,
    Released,
    Shed,
    Rejected,
    Cancelled,
    Expired,
    DeadlineExceeded,
    Failed,
    Completed
});

impl EventKind {
    /// Whether this kind ends a request's lifecycle. Every request
    /// reaches exactly one terminal event.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            EventKind::Shed
                | EventKind::Rejected
                | EventKind::Cancelled
                | EventKind::Expired
                | EventKind::DeadlineExceeded
                | EventKind::Failed
                | EventKind::Completed
        )
    }

    /// The terminal event kind a planned resolution maps to. The
    /// governor shed special case is handled at its emission site
    /// (it also resolves to `RejectBudget`, but as [`EventKind::Shed`]).
    pub fn terminal_for(planned: &Planned) -> EventKind {
        match planned {
            Planned::Serve { .. } => EventKind::Completed,
            Planned::FailPermanent { .. } => EventKind::Failed,
            Planned::CancelCaller => EventKind::Cancelled,
            Planned::CancelDeadline => EventKind::DeadlineExceeded,
            Planned::ExpireInQueue => EventKind::Expired,
            Planned::RejectOverloaded { .. } | Planned::RejectBudget { .. } => EventKind::Rejected,
            Planned::ShedQualityFloor => EventKind::Shed,
        }
    }

    /// Whether this terminal kind is consistent with a ledger outcome.
    fn matches_outcome(self, outcome: Outcome) -> bool {
        match outcome {
            Outcome::Served => self == EventKind::Completed,
            Outcome::Failed => self == EventKind::Failed,
            Outcome::Cancelled => self == EventKind::Cancelled,
            Outcome::ExpiredInQueue => self == EventKind::Expired,
            Outcome::DeadlineExceeded => self == EventKind::DeadlineExceeded,
            Outcome::RejectedOverloaded => self == EventKind::Rejected,
            Outcome::RejectedBudget => matches!(self, EventKind::Rejected | EventKind::Shed),
            Outcome::ShedQualityFloor => self == EventKind::Shed,
        }
    }
}

/// One lifecycle transition of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual-time stamp of the transition, ms.
    pub t_ms: u64,
    /// Request id.
    pub request_id: u64,
    /// Tenant the request bills against.
    pub tenant: u64,
    /// Transition kind.
    pub kind: EventKind,
    /// Degradation rung in force (`""` before dispatch / when none).
    pub rung: String,
    /// Memory delta magnitude for admission / eviction / release
    /// events; 0 for every other kind.
    pub bytes: u64,
    /// Planner memory-ledger balance *after* this transition.
    pub mem_in_use: u64,
    /// Typed human-readable reason.
    pub reason: String,
}

sa_json::impl_json_struct!(Event {
    t_ms,
    request_id,
    tenant,
    kind,
    rung,
    bytes,
    mem_in_use,
    reason
});

/// One planner decision captured by the [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerDecision {
    /// Virtual time of the decision, ms.
    pub t_ms: u64,
    /// Request the decision concerned.
    pub request_id: u64,
    /// Decision kind: `admit` / `dispatch` / `defer` / `evict` / `shed`.
    pub action: String,
    /// Pending-queue depth at decision time.
    pub queue_depth: u64,
    /// Requests in flight at decision time.
    pub inflight: u64,
    /// Free memory under the budget, bytes.
    pub free_bytes: u64,
    /// Contention estimate the rung budget divided by (in-flight plus
    /// pending requests; 0 when not a dispatch decision).
    pub contenders: u64,
    /// Per-request rung budget, ms (0 when not a dispatch decision).
    pub budget_ms: u64,
    /// Rung chosen (`""` when not a dispatch decision).
    pub rung: String,
    /// Governor pressure level at decision time.
    pub pressure: String,
}

sa_json::impl_json_struct!(PlannerDecision {
    t_ms,
    request_id,
    action,
    queue_depth,
    inflight,
    free_bytes,
    contenders,
    budget_ms,
    rung,
    pressure
});

/// A dumped flight-recorder ring: the planner's recent decisions
/// leading up to a trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// What tripped the dump: `shed` / `critical_transition` /
    /// `storm_budget_exhausted`.
    pub trigger: String,
    /// Virtual time of the trigger, ms.
    pub t_ms: u64,
    /// Request at the center of the trigger.
    pub request_id: u64,
    /// Trigger detail.
    pub reason: String,
    /// Ring contents at trigger time, oldest first.
    pub decisions: Vec<PlannerDecision>,
}

sa_json::impl_json_struct!(Postmortem {
    trigger,
    t_ms,
    request_id,
    reason,
    decisions
});

/// Bounded ring buffer of planner decisions, dumped on anomalies.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<PlannerDecision>,
    postmortems: Vec<Postmortem>,
    /// Triggers seen, including those past the retention cap.
    triggers: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `cap` decisions (clamped ≥ 1).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            ring: VecDeque::new(),
            postmortems: Vec::new(),
            triggers: 0,
        }
    }

    /// Records one decision, dropping the oldest past capacity.
    pub fn record(&mut self, decision: PlannerDecision) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(decision);
    }

    /// Dumps the ring into a postmortem. Only the first
    /// [`MAX_POSTMORTEMS`] dumps are retained; later triggers are
    /// counted but dropped to bound the artifact.
    pub fn trigger(&mut self, trigger: &str, t_ms: u64, request_id: u64, reason: String) {
        self.triggers += 1;
        if self.postmortems.len() < MAX_POSTMORTEMS {
            self.postmortems.push(Postmortem {
                trigger: trigger.to_string(),
                t_ms,
                request_id,
                reason,
                decisions: self.ring.iter().cloned().collect(),
            });
        }
    }

    /// Total triggers seen (may exceed retained postmortems).
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Consumes the recorder, yielding the retained postmortems.
    pub fn into_postmortems(self) -> Vec<Postmortem> {
        self.postmortems
    }
}

/// The per-request serving event log (`sa.events.v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    /// Schema tag ([`EVENTS_SCHEMA`]).
    pub schema: String,
    /// Workload / scheduler seed.
    pub seed: u64,
    /// Events in planner emission order (the order memory-ledger
    /// mutations actually happened; per-request time stamps are
    /// monotone but the global interleaving is not time-sorted).
    pub events: Vec<Event>,
    /// Flight-recorder dumps captured during planning.
    pub postmortems: Vec<Postmortem>,
}

sa_json::impl_json_struct!(EventLog {
    schema,
    seed,
    events,
    postmortems
});

impl EventLog {
    /// An empty log for the given seed.
    pub fn new(seed: u64) -> Self {
        EventLog {
            schema: EVENTS_SCHEMA.to_string(),
            seed,
            events: Vec::new(),
            postmortems: Vec::new(),
        }
    }

    /// Appends one event.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        t_ms: u64,
        request_id: u64,
        tenant: u64,
        kind: EventKind,
        rung: &str,
        bytes: u64,
        mem_in_use: u64,
        reason: String,
    ) {
        self.events.push(Event {
            t_ms,
            request_id,
            tenant,
            kind,
            rung: rung.to_string(),
            bytes,
            mem_in_use,
            reason,
        });
    }

    /// The terminal event of each request, keyed by id.
    pub fn terminals(&self) -> BTreeMap<u64, &Event> {
        let mut out = BTreeMap::new();
        for ev in &self.events {
            if ev.kind.is_terminal() {
                out.insert(ev.request_id, ev);
            }
        }
        out
    }

    /// Events of one request in emission order.
    pub fn for_request(&self, id: u64) -> Vec<&Event> {
        self.events.iter().filter(|e| e.request_id == id).collect()
    }

    /// Reconciles planner-emitted terminal events with the executed
    /// ledger records. Execution can diverge from the plan in exactly
    /// one deterministic way: a globally installed crash storm (the
    /// chaos `serve_crash` plan) exhausts the storm retry budget and a
    /// planned `Serve` resolves as [`Outcome::Failed`]. The terminal
    /// event's kind is flipped to match the outcome and the divergence
    /// is noted in the reason, so [`EventLog::validate`] stays strict.
    pub fn reconcile(&mut self, records: &[RequestRecord]) {
        let by_id: BTreeMap<u64, &RequestRecord> = records.iter().map(|r| (r.id, r)).collect();
        for ev in &mut self.events {
            if !ev.kind.is_terminal() {
                continue;
            }
            let Some(rec) = by_id.get(&ev.request_id) else {
                continue;
            };
            if ev.kind.matches_outcome(rec.outcome) {
                continue;
            }
            let planned = ev.kind;
            ev.kind = match rec.outcome {
                Outcome::Served => EventKind::Completed,
                Outcome::Failed => EventKind::Failed,
                Outcome::Cancelled => EventKind::Cancelled,
                Outcome::ExpiredInQueue => EventKind::Expired,
                Outcome::DeadlineExceeded => EventKind::DeadlineExceeded,
                Outcome::RejectedOverloaded | Outcome::RejectedBudget => EventKind::Rejected,
                Outcome::ShedQualityFloor => EventKind::Shed,
            };
            ev.reason = format!(
                "execution diverged from planned {planned:?}: {}",
                if rec.error.is_empty() { "unexplained" } else { &rec.error }
            );
        }
    }

    /// Memory-conservation half of the validator: replays the `bytes`
    /// deltas of admission / eviction / release events from the weights
    /// baseline and checks every stamped `mem_in_use` balance, terminal
    /// uniqueness, and that the balance returns to the baseline (every
    /// reservation released exactly once). Usable on plan-only logs.
    ///
    /// # Errors
    ///
    /// The first violated invariant, human-readable.
    pub fn check_conservation(&self) -> Result<(), String> {
        let baseline = weight_bytes();
        let mut bal = baseline;
        let mut terminal_seen: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            match ev.kind {
                EventKind::Admitted => bal = bal.saturating_add(ev.bytes),
                EventKind::PressureEvicted | EventKind::Released => {
                    if ev.bytes > bal {
                        return Err(format!(
                            "event {i}: request {} releases {} bytes with only {bal} in use",
                            ev.request_id, ev.bytes
                        ));
                    }
                    bal -= ev.bytes;
                }
                _ => {
                    if ev.bytes != 0 {
                        return Err(format!(
                            "event {i}: request {} kind {:?} carries a {}-byte delta",
                            ev.request_id, ev.kind, ev.bytes
                        ));
                    }
                }
            }
            if ev.mem_in_use != bal {
                return Err(format!(
                    "event {i}: request {} stamped balance {} but replay says {bal}",
                    ev.request_id, ev.mem_in_use
                ));
            }
            if ev.kind.is_terminal() {
                if let Some(prev) = terminal_seen.insert(ev.request_id, i) {
                    return Err(format!(
                        "request {}: two terminal events (indices {prev} and {i})",
                        ev.request_id
                    ));
                }
            } else if ev.kind != EventKind::Released {
                if let Some(prev) = terminal_seen.get(&ev.request_id) {
                    return Err(format!(
                        "request {}: lifecycle event {i} ({:?}) after terminal event {prev}",
                        ev.request_id, ev.kind
                    ));
                }
            }
        }
        if bal != baseline {
            return Err(format!(
                "memory not conserved: final balance {bal} != weights baseline {baseline}"
            ));
        }
        Ok(())
    }

    /// The events↔ledger conservation validator. On top of
    /// [`check_conservation`](Self::check_conservation), checks that
    /// every ledger record has exactly one terminal event agreeing on
    /// kind, tenant, and finish time, and that no terminal event lacks
    /// a record.
    ///
    /// # Errors
    ///
    /// The first violated invariant, human-readable.
    pub fn validate(&self, ledger: &Ledger) -> Result<(), String> {
        self.check_conservation()?;
        let terminals = self.terminals();
        for rec in &ledger.records {
            let ev = terminals.get(&rec.id).ok_or_else(|| {
                format!("request {}: ledger record without a terminal event", rec.id)
            })?;
            if !ev.kind.matches_outcome(rec.outcome) {
                return Err(format!(
                    "request {}: terminal event {:?} disagrees with outcome {:?}",
                    rec.id, ev.kind, rec.outcome
                ));
            }
            if ev.tenant != rec.tenant {
                return Err(format!(
                    "request {}: event tenant {} != ledger tenant {}",
                    rec.id, ev.tenant, rec.tenant
                ));
            }
            if ev.t_ms != rec.finish_ms {
                return Err(format!(
                    "request {}: terminal event at {} but ledger finish at {}",
                    rec.id, ev.t_ms, rec.finish_ms
                ));
            }
        }
        if terminals.len() != ledger.records.len() {
            return Err(format!(
                "{} terminal events for {} ledger records",
                terminals.len(),
                ledger.records.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_json::{FromJson, ToJson};

    fn event(id: u64, kind: EventKind, bytes: u64, mem_in_use: u64) -> Event {
        Event {
            t_ms: 10,
            request_id: id,
            tenant: 0,
            kind,
            rung: String::new(),
            bytes,
            mem_in_use,
            reason: String::new(),
        }
    }

    #[test]
    fn event_log_round_trips_through_json() {
        let mut log = EventLog::new(7);
        log.push(0, 1, 2, EventKind::Enqueued, "", 0, weight_bytes(), "edf".to_string());
        log.push(5, 1, 2, EventKind::Completed, "full", 0, weight_bytes(), String::new());
        log.postmortems.push(Postmortem {
            trigger: "shed".to_string(),
            t_ms: 5,
            request_id: 1,
            reason: "unplaceable".to_string(),
            decisions: vec![PlannerDecision {
                t_ms: 4,
                request_id: 1,
                action: "dispatch".to_string(),
                queue_depth: 3,
                inflight: 2,
                free_bytes: 1024,
                contenders: 5,
                budget_ms: 200,
                rung: "full".to_string(),
                pressure: "critical".to_string(),
            }],
        });
        let s = sa_json::to_string(&log.to_json());
        let back = EventLog::from_json(&sa_json::from_str::<sa_json::Json>(&s).unwrap()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn conservation_rejects_leaked_and_double_counted_memory() {
        let base = weight_bytes();
        let mut leak = EventLog::new(0);
        leak.events.push(event(0, EventKind::Admitted, 100, base + 100));
        assert!(leak.check_conservation().unwrap_err().contains("not conserved"));

        let mut balanced = EventLog::new(0);
        balanced.events.push(event(0, EventKind::Admitted, 100, base + 100));
        balanced.events.push(event(0, EventKind::Completed, 0, base + 100));
        balanced.events.push(event(0, EventKind::Released, 100, base));
        assert!(balanced.check_conservation().is_ok());

        let mut wrong_stamp = balanced.clone();
        wrong_stamp.events[1].mem_in_use = base;
        assert!(wrong_stamp
            .check_conservation()
            .unwrap_err()
            .contains("replay says"));

        let mut double_terminal = balanced.clone();
        double_terminal.events.push(event(0, EventKind::Failed, 0, base));
        assert!(double_terminal
            .check_conservation()
            .unwrap_err()
            .contains("two terminal"));

        let mut after_terminal = balanced.clone();
        after_terminal.events.push(event(0, EventKind::Dispatched, 0, base));
        assert!(after_terminal
            .check_conservation()
            .unwrap_err()
            .contains("after terminal"));
    }

    #[test]
    fn flight_recorder_ring_is_bounded_and_dumps_on_trigger() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(PlannerDecision {
                t_ms: i,
                request_id: i,
                action: "dispatch".to_string(),
                queue_depth: 0,
                inflight: 0,
                free_bytes: 0,
                contenders: 0,
                budget_ms: 0,
                rung: String::new(),
                pressure: "normal".to_string(),
            });
        }
        rec.trigger("shed", 10, 9, "test".to_string());
        let pm = rec.into_postmortems();
        assert_eq!(pm.len(), 1);
        assert_eq!(pm[0].decisions.len(), 4);
        assert_eq!(pm[0].decisions[0].t_ms, 6, "ring keeps the newest 4");
        assert_eq!(pm[0].decisions[3].t_ms, 9);
    }
}
