//! The deadline-aware request scheduler.
//!
//! [`Scheduler::run`] processes a batch in two phases:
//!
//! 1. **Plan** ([`sim::plan_batch`]): a serial virtual-time simulation
//!    decides every scheduling outcome — admission, queueing, the
//!    degradation rung, retry counts, backoff, and which cancellation
//!    (caller or deadline) wins. Deterministic by construction.
//! 2. **Execute**: the admitted requests run their *real* model work in
//!    parallel on the worker pool. Each request's execution is
//!    panic-free end to end: injected worker faults surface as typed
//!    [`WorkerPanic`](sa_tensor::SaError::WorkerPanic) errors (retried
//!    with the planned backoff), and cancellations surface as typed
//!    [`Cancelled`](sa_tensor::SaError::Cancelled) /
//!    [`DeadlineExceeded`](sa_tensor::SaError::DeadlineExceeded) within
//!    one chunk of work. Execution contributes only bit-deterministic
//!    data (the measured CRA α flags) to the ledger.
//!
//! Fault plans are installed **thread-locally** per attempt
//! ([`sa_tensor::fault::install_local`]), so concurrent requests never
//! see each other's injected faults: the top-level pool fan-out marks
//! its workers, nested pool calls inside a request run serially on the
//! same worker thread, and the plan is dropped when the attempt ends.

use crate::continuous::{self, ContinuousPlan};
use crate::ledger::{Ledger, Outcome, RequestRecord, LEDGER_SCHEMA};
use crate::sim::{self, Plan, Planned};
use crate::{Request, RequestKind, ServeConfig};
use sa_baselines::{AttentionMethod, FullAttention, SampleAttentionMethod, WindowOnly};
use sa_core::{DegradationReport, DegradationRung};
use sa_model::{ModelConfig, SyntheticTransformer};
use sa_tensor::fault::FaultPlan;
use sa_tensor::{fault, pool, CancelToken, SaError, TensorError};
use sa_trace::metrics;

/// The scheduler: a synthetic-transformer serving stack with admission
/// control, cooperative cancellation, retry, and the degradation ladder.
pub struct Scheduler {
    cfg: ServeConfig,
    model: SyntheticTransformer,
}

impl Scheduler {
    /// Builds a scheduler (and its synthetic model) from `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn new(cfg: ServeConfig) -> Result<Self, TensorError> {
        let model = SyntheticTransformer::new(ModelConfig::tiny(cfg.seed))?;
        Ok(Scheduler { cfg, model })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Runs a batch: plans every request on the virtual clock, executes
    /// the admitted ones in parallel, and returns the sorted ledger.
    ///
    /// # Errors
    ///
    /// Only scheduler-level pool failures propagate; per-request faults,
    /// cancellations, and rejections are *outcomes* in the ledger, never
    /// errors of `run` itself.
    pub fn run(&self, requests: &[Request]) -> Result<Ledger, TensorError> {
        let _span = sa_trace::span_in("serve", "batch");
        let plans = sim::plan_batch(&self.cfg, requests);
        let mut records = pool::try_parallel_map("serve_batch", requests.len(), 1, |i| {
            let mut rec = self.execute(&requests[i], &plans[i]);
            // The one-shot planner holds a slot for the whole request,
            // so first-token timing is analytic: the final prefill
            // chunk lands one decode tail before the finish.
            if rec.outcome == Outcome::Served {
                let req = &requests[i];
                let per_token = (req.seq_len as u64 / 16).max(1);
                let tail = (req.new_tokens as u64).saturating_sub(1) * per_token;
                rec.ttft_ms = rec
                    .finish_ms
                    .saturating_sub(tail)
                    .saturating_sub(rec.arrival_ms)
                    .max(1);
            }
            rec
        })?;
        records.sort_by_key(|r| r.id);
        record_metrics(&records);
        Ok(Ledger {
            schema: LEDGER_SCHEMA.to_string(),
            seed: self.cfg.seed,
            records,
        })
    }

    /// Plans an open-loop stream on the continuous-batching timeline
    /// (prefill chunks of new requests interleaved with decode steps of
    /// in-flight sessions, under per-tenant token-bucket quotas) without
    /// running any model work. Useful for SLO sweeps.
    pub fn plan_continuous(&self, requests: &[Request]) -> Vec<ContinuousPlan> {
        continuous::plan_continuous(&self.cfg, requests)
    }

    /// Runs an open-loop stream under continuous batching: plans the
    /// interleaved timeline on the virtual clock, executes the admitted
    /// requests' model work in parallel, and returns the sorted ledger
    /// with first-token (TTFT) timing filled in from the plan.
    ///
    /// # Errors
    ///
    /// Only scheduler-level pool failures propagate; per-request faults,
    /// cancellations, and rejections are ledger outcomes.
    pub fn run_continuous(&self, requests: &[Request]) -> Result<Ledger, TensorError> {
        let _span = sa_trace::span_in("serve", "continuous");
        let plans = continuous::plan_continuous(&self.cfg, requests);
        let mut records = pool::try_parallel_map("serve_continuous", requests.len(), 1, |i| {
            let mut rec = self.execute(&requests[i], &plans[i].plan);
            rec.ttft_ms = plans[i]
                .first_token_ms
                .saturating_sub(requests[i].arrival_ms);
            rec
        })?;
        records.sort_by_key(|r| r.id);
        record_metrics(&records);
        Ok(Ledger {
            schema: LEDGER_SCHEMA.to_string(),
            seed: self.cfg.seed,
            records,
        })
    }

    /// Executes one planned request. Never panics and never fails: every
    /// error becomes a ledger outcome.
    fn execute(&self, req: &Request, plan: &Plan) -> RequestRecord {
        let mut report = DegradationReport::new(self.cfg.alpha_target);
        for (rung, why) in &plan.skipped {
            report.record(*rung, false, why);
        }
        let mut rec = RequestRecord {
            id: req.id,
            kind: req.kind,
            seq_len: req.seq_len as u64,
            arrival_ms: req.arrival_ms,
            start_ms: plan.start_ms,
            finish_ms: plan.finish_ms,
            queue_wait_ms: plan.queue_wait_ms,
            tenant: req.tenant,
            new_tokens: req.new_tokens as u64,
            ttft_ms: 0,
            outcome: Outcome::Served,
            rung: String::new(),
            alpha_satisfied: false,
            degraded: false,
            retries: plan.retries,
            backoff_ms: plan.backoff_ms,
            chunks_completed: 0,
            chunks_total: 0,
            error: String::new(),
            report: DegradationReport::new(self.cfg.alpha_target),
        };

        match plan.planned {
            Planned::RejectOverloaded { inflight } => {
                rec.outcome = Outcome::RejectedOverloaded;
                rec.error = SaError::Overloaded {
                    inflight,
                    max_inflight: self.cfg.slots(),
                }
                .to_string();
            }
            Planned::RejectBudget { required_bytes } => {
                rec.outcome = Outcome::RejectedBudget;
                rec.error = SaError::BudgetExceeded {
                    required_bytes,
                    budget_bytes: self.cfg.mem_budget_bytes,
                }
                .to_string();
            }
            Planned::ExpireInQueue => {
                rec.outcome = Outcome::ExpiredInQueue;
                rec.error = SaError::DeadlineExceeded {
                    site: "serve_queue",
                    completed: 0,
                    total: 0,
                }
                .to_string();
            }
            Planned::CancelCaller | Planned::CancelDeadline => {
                let token = CancelToken::new();
                let expect_deadline = matches!(plan.planned, Planned::CancelDeadline);
                let token = if expect_deadline {
                    // Already-expired deadline on the trace clock: trips
                    // deterministically before the first chunk.
                    CancelToken::with_deadline_ns(0)
                } else {
                    token.cancel();
                    token
                };
                match self.run_model(req, plan.rung, &token) {
                    Err(e) if e.is_cancellation() => {
                        rec.outcome = if matches!(e, SaError::DeadlineExceeded { .. }) {
                            Outcome::DeadlineExceeded
                        } else {
                            Outcome::Cancelled
                        };
                        if let SaError::Cancelled { completed, total, .. }
                        | SaError::DeadlineExceeded { completed, total, .. } = &e
                        {
                            rec.chunks_completed = *completed as u64;
                            rec.chunks_total = *total as u64;
                        }
                        rec.error = e.to_string();
                        report.record(plan.rung, false, "cancelled before completion");
                    }
                    Err(e) => {
                        rec.outcome = Outcome::Failed;
                        rec.error = e.to_string();
                        report.record(plan.rung, false, "error before cancellation");
                    }
                    Ok(_) => {
                        // A pre-tripped token cannot complete; record the
                        // inconsistency loudly rather than panicking.
                        rec.outcome = Outcome::Failed;
                        rec.error = "planned cancellation but run completed".to_string();
                        report.record(plan.rung, false, "planned cancellation not observed");
                    }
                }
                rec.rung = plan.rung.as_str().to_string();
            }
            Planned::Serve { fails } | Planned::FailPermanent { fails } => {
                let attempts = match plan.planned {
                    Planned::FailPermanent { .. } => fails,
                    _ => fails + 1,
                };
                let mut outcome = None;
                for attempt in 0..attempts {
                    let _fault_guard = (attempt < fails).then(|| {
                        fault::install_local(
                            FaultPlan::new(self.cfg.seed ^ req.id).worker_panic(&req.fault_site),
                        )
                    });
                    let token = CancelToken::new();
                    match self.run_model(req, plan.rung, &token) {
                        Ok(alpha_ok) => {
                            outcome = Some(Ok(alpha_ok));
                            break;
                        }
                        Err(e) => {
                            let transient = matches!(e, SaError::WorkerPanic { .. });
                            outcome = Some(Err(e));
                            if !transient {
                                break;
                            }
                        }
                    }
                }
                match outcome {
                    Some(Ok(alpha_ok)) => {
                        rec.outcome = Outcome::Served;
                        report.record(plan.rung, alpha_ok, "served");
                    }
                    Some(Err(e)) => {
                        rec.outcome = Outcome::Failed;
                        rec.error = e.to_string();
                        report.record(plan.rung, false, "retry_exhausted");
                    }
                    None => {
                        rec.outcome = Outcome::Failed;
                        rec.error = "no attempt ran".to_string();
                        report.record(plan.rung, false, "no attempt ran");
                    }
                }
                rec.rung = plan.rung.as_str().to_string();
            }
        }

        rec.alpha_satisfied = rec.outcome == Outcome::Served && report.final_alpha_satisfied();
        rec.degraded = report.degraded();
        rec.report = report;
        rec
    }

    /// Runs the real model work for one attempt. Returns whether every
    /// head's measured stage-2 coverage met the α target.
    fn run_model(
        &self,
        req: &Request,
        rung: DegradationRung,
        token: &CancelToken,
    ) -> Result<bool, TensorError> {
        let method = method_for(rung).map_err(|what| TensorError::InvalidDimension {
            op: "Scheduler::run_model",
            what,
        })?;
        let tokens = self.model.tokenize_filler(req.seq_len);
        match req.kind {
            RequestKind::Prefill => {
                let (result, _caches) = self.model.prefill_chunked_with(
                    &tokens,
                    self.cfg.chunk_size.max(1),
                    method.as_ref(),
                    token,
                )?;
                Ok(result.heads_alpha_unsatisfied() == 0)
            }
            RequestKind::Decode => {
                let mut session = self.model.begin_decode(&tokens, method.as_ref())?;
                session.install_cancel(token);
                let vocab = self.model.config().vocab_size as u32;
                session.generate_in(req.new_tokens, 0..vocab)?;
                Ok(session.prefill_result().heads_alpha_unsatisfied() == 0)
            }
        }
    }
}

/// The attention method each rung runs.
fn method_for(rung: DegradationRung) -> Result<Box<dyn AttentionMethod>, String> {
    match rung {
        DegradationRung::Full => Ok(Box::new(FullAttention::new())),
        DegradationRung::WindowOnly => WindowOnly::new(DegradationRung::TIGHT_WINDOW_RATIO)
            .map(|w| Box::new(w) as Box<dyn AttentionMethod>)
            .map_err(|e| e.to_string()),
        DegradationRung::PaperDefault | DegradationRung::Tight => rung
            .sample_config()
            .map_err(|e| e.to_string())?
            .map(|c| Box::new(SampleAttentionMethod::new(c)) as Box<dyn AttentionMethod>)
            .ok_or_else(|| format!("rung {rung} has no SampleAttention config")),
    }
}

/// Publishes batch outcomes to the global `serve.*` metrics.
fn record_metrics(records: &[RequestRecord]) {
    metrics::counter("serve.requests").add(records.len() as u64);
    for rec in records {
        let c = match rec.outcome {
            Outcome::Served => "serve.served",
            Outcome::RejectedOverloaded => "serve.rejected_overloaded",
            Outcome::RejectedBudget => "serve.rejected_budget",
            Outcome::ExpiredInQueue => "serve.expired_in_queue",
            Outcome::DeadlineExceeded => "serve.deadline_exceeded",
            Outcome::Cancelled => "serve.cancelled",
            Outcome::Failed => "serve.failed",
        };
        metrics::counter(c).add(1);
        if !rec.rung.is_empty() {
            metrics::histogram("serve.queue_wait_ms").record(rec.queue_wait_ms);
            if let Some(rung) = rec.report.final_rung() {
                metrics::histogram("serve.final_rung").record(rung.index() as u64);
            }
        }
        if rec.retries > 0 {
            metrics::counter("serve.retried").add(rec.retries);
            metrics::histogram("serve.backoff_ms").record(rec.backoff_ms);
        }
        if rec.ttft_ms > 0 {
            metrics::histogram("serve.ttft_ms").record(rec.ttft_ms);
            if rec.outcome == Outcome::Served && rec.new_tokens > 1 {
                let decode_span = rec.finish_ms.saturating_sub(rec.arrival_ms + rec.ttft_ms);
                metrics::histogram("serve.tpot_ms").record(decode_span / (rec.new_tokens - 1));
            }
        }
        if rec.degraded {
            metrics::counter("serve.degraded").add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed_workload;

    fn scheduler() -> Scheduler {
        Scheduler::new(ServeConfig::default()).unwrap()
    }

    #[test]
    fn healthy_batch_serves_everything() {
        let s = scheduler();
        let reqs: Vec<Request> = (0..3)
            .map(|id| Request::prefill(id, 64, id * 500, 1_000_000))
            .collect();
        let ledger = s.run(&reqs).unwrap();
        ledger.validate(&reqs).unwrap();
        assert_eq!(ledger.count(Outcome::Served), 3);
        assert!(ledger.records.iter().all(|r| r.rung == "full"));
        assert!(ledger.records.iter().all(|r| r.alpha_satisfied));
    }

    #[test]
    fn transient_fault_is_retried_to_success() {
        let s = scheduler();
        let mut req = Request::prefill(0, 64, 0, 1_000_000);
        req.fault_fails = 2;
        req.fault_site = crate::request::FAULT_SITE.to_string();
        let ledger = s.run(std::slice::from_ref(&req)).unwrap();
        ledger.validate(std::slice::from_ref(&req)).unwrap();
        let rec = &ledger.records[0];
        assert_eq!(rec.outcome, Outcome::Served);
        assert_eq!(rec.retries, 2);
        assert!(rec.backoff_ms > 0);
    }

    #[test]
    fn permanent_fault_fails_with_typed_error() {
        let s = scheduler();
        let mut req = Request::prefill(0, 64, 0, 1_000_000);
        req.fault_fails = 99;
        req.fault_site = crate::request::FAULT_SITE.to_string();
        let ledger = s.run(std::slice::from_ref(&req)).unwrap();
        let rec = &ledger.records[0];
        assert_eq!(rec.outcome, Outcome::Failed);
        assert!(rec.error.contains("worker panic"), "{}", rec.error);
        assert!(!rec.alpha_satisfied);
    }

    #[test]
    fn deadline_cancellation_reports_chunk_progress() {
        let s = scheduler();
        // Brutal deadline: nothing fits, mid-run expiry planned.
        let req = Request::prefill(0, 224, 0, 2);
        let ledger = s.run(std::slice::from_ref(&req)).unwrap();
        let rec = &ledger.records[0];
        assert_eq!(rec.outcome, Outcome::DeadlineExceeded);
        assert_eq!(rec.rung, "window_only", "brutal deadline bottoms the ladder");
        assert_eq!(rec.chunks_completed, 0, "pre-expired token stops chunk 0");
        assert!(rec.chunks_total > 0);
        assert!(!rec.alpha_satisfied, "window-only can never certify alpha");
        assert!(rec.degraded);
    }

    #[test]
    fn decode_requests_serve_and_cancel() {
        let s = scheduler();
        let mut served = Request::prefill(0, 48, 0, 1_000_000);
        served.kind = RequestKind::Decode;
        served.new_tokens = 4;
        let mut cancelled = served.clone();
        cancelled.id = 1;
        cancelled.arrival_ms = 10_000;
        cancelled.cancel_after_ms = 1;
        let reqs = vec![served, cancelled];
        let ledger = s.run(&reqs).unwrap();
        ledger.validate(&reqs).unwrap();
        assert_eq!(ledger.records[0].outcome, Outcome::Served);
        assert_eq!(ledger.records[1].outcome, Outcome::Cancelled);
        assert!(ledger.records[1].error.contains("cancelled"));
    }

    #[test]
    fn mixed_ledger_is_identical_across_thread_counts() {
        let s = scheduler();
        let reqs = mixed_workload(5, 16);
        let baseline = pool::with_threads(1, || s.run(&reqs)).unwrap();
        baseline.validate(&reqs).unwrap();
        for threads in [2, 4] {
            let ledger = pool::with_threads(threads, || s.run(&reqs)).unwrap();
            assert_eq!(
                ledger, baseline,
                "ledger must be bit-identical at {threads} threads"
            );
        }
    }
}
