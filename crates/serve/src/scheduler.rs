//! The deadline-aware request scheduler.
//!
//! [`Scheduler::run`] processes a batch in two phases:
//!
//! 1. **Plan** ([`sim::plan_batch`]): a serial virtual-time simulation
//!    decides every scheduling outcome — admission, queueing, the
//!    degradation rung, retry counts, backoff, and which cancellation
//!    (caller or deadline) wins. Deterministic by construction.
//! 2. **Execute**: the admitted requests run their *real* model work in
//!    parallel on the worker pool. Each request's execution is
//!    panic-free end to end: injected worker faults surface as typed
//!    [`WorkerPanic`](sa_tensor::SaError::WorkerPanic) errors (retried
//!    with the planned backoff), and cancellations surface as typed
//!    [`Cancelled`](sa_tensor::SaError::Cancelled) /
//!    [`DeadlineExceeded`](sa_tensor::SaError::DeadlineExceeded) within
//!    one chunk of work. Execution contributes only bit-deterministic
//!    data (the measured CRA α flags) to the ledger.
//!
//! Fault plans are installed **thread-locally** per attempt
//! ([`sa_tensor::fault::install_local`]), so concurrent requests never
//! see each other's injected faults: the top-level pool fan-out marks
//! its workers, nested pool calls inside a request run serially on the
//! same worker thread, and the plan is dropped when the attempt ends.
//!
//! ## Crash recovery
//!
//! With [`ServeConfig::recovery_enabled`] (the default), a crashed
//! attempt leaves behind a chunk-boundary checkpoint
//! ([`PrefillCheckpoint`] for chunked prefills, [`SessionCheckpoint`]
//! for decode sessions) and the next attempt *resumes* from it instead
//! of re-running prefill from scratch, recomputing at most the one
//! chunk that was in flight. Every restore runs the integrity
//! protocol: the cancel token is checked first (a cancel racing a
//! restore must not resurrect the session), the KV staging bytes are
//! reserved in the scheduler's [`MemoryLedger`] (an injected
//! allocation failure falls the attempt back to scratch), and the
//! checksum is recomputed over the staged bytes so KV corruption
//! surfaces as a typed
//! [`CorruptCheckpoint`](sa_tensor::SaError::CorruptCheckpoint) —
//! counted, then contained by retrying from scratch. The
//! `serve.checkpoint.*` counters audit every snapshot, restore, and
//! corruption; `serve.pressure.alloc_faults` counts staging
//! allocations the fault harness failed.

use crate::continuous::{self, ContinuousPlan};
use crate::events::EventLog;
use crate::ledger::{Ledger, Outcome, RequestRecord, LEDGER_SCHEMA};
use crate::memory::MemoryLedger;
use crate::quality::{canary_probe, is_canary, CanaryObservation, GuardedMethod, QualityGuard};
use crate::sim::{self, Plan, Planned};
use crate::{Request, RequestKind, ServeConfig};
use sa_baselines::{AttentionMethod, FullAttention, SampleAttentionMethod, WindowOnly};
use sa_core::{DegradationReport, DegradationRung};
use sa_model::{
    ChunkedPrefill, DecodeSession, ModelConfig, PrefillCheckpoint, SessionCheckpoint,
    SyntheticTransformer,
};
use sa_tensor::fault::FaultPlan;
use sa_tensor::{cancel, fault, pool, CancelToken, SaError, TensorError};
use sa_trace::metrics;

/// The scheduler: a synthetic-transformer serving stack with admission
/// control, cooperative cancellation, retry, checkpoint-based crash
/// recovery, and the degradation ladder.
pub struct Scheduler {
    cfg: ServeConfig,
    model: SyntheticTransformer,
    /// Byte-accurate ledger for checkpoint staging reservations. The
    /// *planner* does its own serial occupancy projection; this ledger
    /// accounts the execution side's transient restore buffers so leak
    /// tests can assert it returns to baseline.
    mem: MemoryLedger,
}

/// The checkpoint a crashed attempt leaves for its successor.
enum Snapshot {
    Prefill(PrefillCheckpoint),
    Session(SessionCheckpoint),
}

impl Scheduler {
    /// Builds a scheduler (and its synthetic model) from `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn new(cfg: ServeConfig) -> Result<Self, TensorError> {
        let model = SyntheticTransformer::new(ModelConfig::tiny(cfg.seed))?;
        let mem = MemoryLedger::from_config(&cfg);
        Ok(Scheduler { cfg, model, mem })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The synthetic model this scheduler serves.
    pub fn model(&self) -> &SyntheticTransformer {
        &self.model
    }

    /// The execution-side memory ledger (checkpoint staging bytes).
    pub fn memory(&self) -> &MemoryLedger {
        &self.mem
    }

    /// Runs a batch: plans every request on the virtual clock, executes
    /// the admitted ones in parallel, and returns the sorted ledger.
    ///
    /// # Errors
    ///
    /// Only scheduler-level pool failures propagate; per-request faults,
    /// cancellations, and rejections are *outcomes* in the ledger, never
    /// errors of `run` itself.
    pub fn run(&self, requests: &[Request]) -> Result<Ledger, TensorError> {
        self.run_with_events(requests).map(|(ledger, _)| ledger)
    }

    /// [`Scheduler::run`] plus the telemetry plane: returns the ledger
    /// together with the planner's [`EventLog`], reconciled against the
    /// executed outcomes (see [`EventLog::reconcile`]) so
    /// [`EventLog::validate`] holds on the pair.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::run`].
    pub fn run_with_events(
        &self,
        requests: &[Request],
    ) -> Result<(Ledger, EventLog), TensorError> {
        let (ledger, log, _) = self.run_batch_masked(requests, &[])?;
        Ok((ledger, log))
    }

    /// [`Scheduler::run`] under a [`QualityGuard`]: the guard's current
    /// quarantine mask is frozen for the whole batch (quarantined heads
    /// execute dense, flagged
    /// [`QualityQuarantine`](sa_core::FallbackReason::QualityQuarantine)),
    /// the batch runs, and afterwards the guard absorbs this batch's
    /// canary observations **serially in request-id order** — so
    /// quarantine and probation transitions are bit-identical at every
    /// `SA_THREADS` setting, exactly like the ledger itself.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::run`].
    pub fn run_guarded(
        &self,
        requests: &[Request],
        guard: &mut QualityGuard,
    ) -> Result<Ledger, TensorError> {
        self.run_guarded_with_events(requests, guard)
            .map(|(ledger, _)| ledger)
    }

    /// [`Scheduler::run_guarded`] plus the reconciled [`EventLog`].
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::run`].
    pub fn run_guarded_with_events(
        &self,
        requests: &[Request],
        guard: &mut QualityGuard,
    ) -> Result<(Ledger, EventLog), TensorError> {
        let mask = guard.quarantine_mask();
        let (ledger, log, observations) = self.run_batch_masked(requests, &mask)?;
        guard.absorb(&observations);
        Ok((ledger, log))
    }

    /// The shared one-shot execution phase: plan serially, execute in
    /// parallel under the frozen quarantine `mask`, and collect the
    /// batch's canary observations (sorted by request id alongside the
    /// records, so the caller's serial absorb is deterministic).
    fn run_batch_masked(
        &self,
        requests: &[Request],
        mask: &[bool],
    ) -> Result<(Ledger, EventLog, Vec<CanaryObservation>), TensorError> {
        let _span = sa_trace::span_in("serve", "batch");
        let (plans, mut log) = sim::plan_batch_with_events(&self.cfg, requests);
        let mut pairs = pool::try_parallel_map("serve_batch", requests.len(), 1, |i| {
            let (mut rec, obs) = self.execute(&requests[i], &plans[i], mask);
            // The one-shot planner holds a slot for the whole request,
            // so first-token timing is analytic: the final prefill
            // chunk lands one decode tail before the finish.
            if rec.outcome == Outcome::Served {
                let req = &requests[i];
                let per_token = (req.seq_len as u64 / 16).max(1);
                let tail = (req.new_tokens as u64).saturating_sub(1) * per_token;
                rec.ttft_ms = rec
                    .finish_ms
                    .saturating_sub(tail)
                    .saturating_sub(rec.arrival_ms)
                    .max(1);
            }
            (rec, obs)
        })?;
        pairs.sort_by_key(|(rec, _)| rec.id);
        let mut records = Vec::with_capacity(pairs.len());
        let mut observations = Vec::new();
        for (rec, obs) in pairs {
            if let Some(o) = obs {
                observations.push(o);
            }
            records.push(rec);
        }
        record_metrics(&records);
        log.reconcile(&records);
        Ok((
            Ledger {
                schema: LEDGER_SCHEMA.to_string(),
                seed: self.cfg.seed,
                records,
            },
            log,
            observations,
        ))
    }

    /// Plans an open-loop stream on the continuous-batching timeline
    /// (prefill chunks of new requests interleaved with decode steps of
    /// in-flight sessions, under per-tenant token-bucket quotas) without
    /// running any model work. Useful for SLO sweeps.
    pub fn plan_continuous(&self, requests: &[Request]) -> Vec<ContinuousPlan> {
        continuous::plan_continuous(&self.cfg, requests)
    }

    /// Runs an open-loop stream under continuous batching: plans the
    /// interleaved timeline on the virtual clock, executes the admitted
    /// requests' model work in parallel, and returns the sorted ledger
    /// with first-token (TTFT) timing filled in from the plan.
    ///
    /// # Errors
    ///
    /// Only scheduler-level pool failures propagate; per-request faults,
    /// cancellations, and rejections are ledger outcomes.
    pub fn run_continuous(&self, requests: &[Request]) -> Result<Ledger, TensorError> {
        self.run_continuous_with_events(requests)
            .map(|(ledger, _)| ledger)
    }

    /// [`Scheduler::run_continuous`] plus the telemetry plane: returns
    /// the ledger together with the continuous planner's [`EventLog`]
    /// (including the flight-recorder [`Postmortem`](crate::Postmortem)s),
    /// reconciled against the executed outcomes.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::run_continuous`].
    pub fn run_continuous_with_events(
        &self,
        requests: &[Request],
    ) -> Result<(Ledger, EventLog), TensorError> {
        let _span = sa_trace::span_in("serve", "continuous");
        let (plans, mut log) = continuous::plan_continuous_with_events(&self.cfg, requests);
        let mut records = pool::try_parallel_map("serve_continuous", requests.len(), 1, |i| {
            let (mut rec, _) = self.execute(&requests[i], &plans[i].plan, &[]);
            rec.ttft_ms = plans[i]
                .first_token_ms
                .saturating_sub(requests[i].arrival_ms);
            rec.recovered_attempts = plans[i].recovered_attempts;
            rec.recomputed_tokens = plans[i].recomputed_tokens;
            rec
        })?;
        records.sort_by_key(|r| r.id);
        record_metrics(&records);
        log.reconcile(&records);
        Ok((
            Ledger {
                schema: LEDGER_SCHEMA.to_string(),
                seed: self.cfg.seed,
                records,
            },
            log,
        ))
    }

    /// Executes one planned request under the frozen quarantine `mask`
    /// (empty = no quarantine). Never panics and never fails: every
    /// error becomes a ledger outcome. Returns the record plus the
    /// shadow-canary observation when this request drew canary duty.
    fn execute(
        &self,
        req: &Request,
        plan: &Plan,
        mask: &[bool],
    ) -> (RequestRecord, Option<CanaryObservation>) {
        let mut report = DegradationReport::new(self.cfg.alpha_target);
        for (rung, why) in &plan.skipped {
            report.record(*rung, false, why);
        }
        let mut rec = RequestRecord {
            id: req.id,
            kind: req.kind,
            seq_len: req.seq_len as u64,
            arrival_ms: req.arrival_ms,
            start_ms: plan.start_ms,
            finish_ms: plan.finish_ms,
            queue_wait_ms: plan.queue_wait_ms,
            tenant: req.tenant,
            new_tokens: req.new_tokens as u64,
            ttft_ms: 0,
            outcome: Outcome::Served,
            rung: String::new(),
            alpha_satisfied: false,
            degraded: false,
            retries: plan.retries,
            backoff_ms: plan.backoff_ms,
            recovered_attempts: 0,
            recomputed_tokens: 0,
            chunks_completed: 0,
            chunks_total: 0,
            error: String::new(),
            canary: false,
            canary_true_cra: 0.0,
            canary_max_abs_err: 0.0,
            canary_gap_permille: 0,
            quarantined_heads: 0,
            report: DegradationReport::new(self.cfg.alpha_target),
        };

        match plan.planned {
            Planned::RejectOverloaded { inflight } => {
                rec.outcome = Outcome::RejectedOverloaded;
                rec.error = SaError::Overloaded {
                    inflight,
                    max_inflight: self.cfg.slots(),
                }
                .to_string();
            }
            Planned::RejectBudget { required_bytes } => {
                rec.outcome = Outcome::RejectedBudget;
                rec.error = SaError::BudgetExceeded {
                    required_bytes,
                    budget_bytes: self.cfg.mem_budget_bytes,
                }
                .to_string();
            }
            Planned::ExpireInQueue => {
                rec.outcome = Outcome::ExpiredInQueue;
                rec.error = SaError::DeadlineExceeded {
                    site: "serve_queue",
                    completed: 0,
                    total: 0,
                }
                .to_string();
            }
            Planned::ShedQualityFloor => {
                rec.outcome = Outcome::ShedQualityFloor;
                rec.error = SaError::QualityFloor {
                    tenant: req.tenant,
                    what: "no permitted rung fits the remaining deadline".to_string(),
                }
                .to_string();
            }
            Planned::CancelCaller | Planned::CancelDeadline => {
                let token = CancelToken::new();
                let expect_deadline = matches!(plan.planned, Planned::CancelDeadline);
                let token = if expect_deadline {
                    // Already-expired deadline on the trace clock: trips
                    // deterministically before the first chunk.
                    CancelToken::with_deadline_ns(0)
                } else {
                    token.cancel();
                    token
                };
                match self.run_model(req, plan.rung, &token, mask) {
                    Err(e) if e.is_cancellation() => {
                        rec.outcome = if matches!(e, SaError::DeadlineExceeded { .. }) {
                            Outcome::DeadlineExceeded
                        } else {
                            Outcome::Cancelled
                        };
                        if let SaError::Cancelled { completed, total, .. }
                        | SaError::DeadlineExceeded { completed, total, .. } = &e
                        {
                            rec.chunks_completed = *completed as u64;
                            rec.chunks_total = *total as u64;
                        }
                        rec.error = e.to_string();
                        report.record(plan.rung, false, "cancelled before completion");
                    }
                    Err(e) => {
                        rec.outcome = Outcome::Failed;
                        rec.error = e.to_string();
                        report.record(plan.rung, false, "error before cancellation");
                    }
                    Ok(_) => {
                        // A pre-tripped token cannot complete; record the
                        // inconsistency loudly rather than panicking.
                        rec.outcome = Outcome::Failed;
                        rec.error = "planned cancellation but run completed".to_string();
                        report.record(plan.rung, false, "planned cancellation not observed");
                    }
                }
                rec.rung = plan.rung.as_str().to_string();
            }
            Planned::Serve { fails } | Planned::FailPermanent { fails } => {
                let clean_final = matches!(plan.planned, Planned::Serve { .. });
                match self.run_attempts(req, plan.rung, fails, clean_final, mask) {
                    Ok(alpha_ok) => {
                        rec.outcome = Outcome::Served;
                        report.record(plan.rung, alpha_ok, "served");
                    }
                    Err(e) => {
                        rec.outcome = Outcome::Failed;
                        rec.error = e.to_string();
                        report.record(plan.rung, false, "retry_exhausted");
                    }
                }
                rec.rung = plan.rung.as_str().to_string();
            }
        }

        rec.alpha_satisfied = rec.outcome == Outcome::Served && report.final_alpha_satisfied();
        rec.degraded = report.degraded();
        rec.report = report;
        if !rec.rung.is_empty() {
            rec.quarantined_heads = mask.iter().filter(|&&q| q).count() as u64;
        }

        // Shadow canary: a seeded deterministic fraction of served
        // requests additionally runs a dense reference prefill and
        // per-head exact-softmax CRA, measuring the true quality the
        // sparse path delivered. The probe is pure measurement — it
        // never changes the outcome; a probe error is contained and
        // counted, not escalated.
        let mut observation = None;
        if rec.outcome == Outcome::Served
            && is_canary(self.cfg.seed, req.id, self.cfg.canary_denominator)
        {
            let production = self.guarded_method(plan.rung, mask);
            match production {
                Ok(method) => match canary_probe(
                    &self.model,
                    plan.rung,
                    method.as_ref(),
                    req.seq_len,
                    req.id,
                ) {
                    Ok(obs) => {
                        rec.canary = true;
                        rec.canary_true_cra = obs.true_cra;
                        rec.canary_max_abs_err = obs.max_abs_err;
                        rec.canary_gap_permille = obs.gap_permille;
                        observation = Some(obs);
                    }
                    Err(_) => metrics::counter("quality.canary.probe_errors").add(1),
                },
                Err(_) => metrics::counter("quality.canary.probe_errors").add(1),
            }
        }
        (rec, observation)
    }

    /// Runs the planned attempt script for one request: `fails` crashing
    /// attempts, then (for [`Planned::Serve`]) one clean attempt. With
    /// recovery enabled each crash snapshots its chunk-boundary progress
    /// and the successor resumes from it; without, every attempt starts
    /// from scratch (the pre-recovery behavior). A globally installed
    /// `serve_crash` fault plan (the chaos storm) injects *unplanned*
    /// crashes on top, bounded by one extra retry budget so the loop
    /// always terminates.
    fn run_attempts(
        &self,
        req: &Request,
        rung: DegradationRung,
        fails: u64,
        clean_final: bool,
        mask: &[bool],
    ) -> Result<bool, SaError> {
        let mut snap: Option<Snapshot> = None;
        let mut planned_done = 0u64;
        let mut storm_budget = self.cfg.max_retries as u64 + 1;
        let mut attempt = 0u64;
        let mut last_err: Option<SaError> = None;
        loop {
            if planned_done >= fails && !clean_final {
                return Err(last_err.unwrap_or(SaError::WorkerPanic {
                    site: "serve_attempt",
                    message: "planned permanent failure".to_string(),
                }));
            }
            let salt = self.cfg.seed ^ req.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt;
            let storm = storm_budget > 0 && fault::should_crash("serve_attempt", salt);
            let crashing = storm || planned_done < fails;
            let token = CancelToken::new();
            let (mut result, new_snap) = if self.cfg.recovery_enabled {
                match req.kind {
                    RequestKind::Prefill => {
                        let resume = match &snap {
                            Some(Snapshot::Prefill(p)) => Some(p),
                            _ => None,
                        };
                        self.prefill_attempt(
                            req, rung, &token, resume, crashing, attempt, salt, mask,
                        )
                    }
                    RequestKind::Decode => {
                        let resume = match &snap {
                            Some(Snapshot::Session(s)) => Some(s),
                            _ => None,
                        };
                        self.decode_attempt(req, rung, &token, resume, crashing, salt, mask)
                    }
                }
            } else {
                // Scratch mode: the injected fault aborts the attempt
                // wherever it strikes; nothing is checkpointed and the
                // retry replays the request from the beginning.
                let _guard = crashing.then(|| {
                    fault::install_local(
                        FaultPlan::new(self.cfg.seed ^ req.id).worker_panic(&req.fault_site),
                    )
                });
                (self.run_model(req, rung, &token, mask), None)
            };
            if crashing && result.is_ok() {
                // The fault site never fired (e.g. a storm crash on a
                // request without a scripted site): honor the crash
                // script with a synthesized contained panic.
                result = Err(SaError::WorkerPanic {
                    site: "serve_attempt",
                    message: "injected serving-loop crash".to_string(),
                });
            }
            if let Some(s) = new_snap {
                snap = Some(s);
            }
            attempt += 1;
            match result {
                Ok(alpha_ok) => return Ok(alpha_ok),
                Err(e) if matches!(e, SaError::WorkerPanic { .. }) => {
                    if storm {
                        storm_budget -= 1;
                    } else if planned_done < fails {
                        planned_done += 1;
                    } else {
                        // A clean attempt crashed outside the script
                        // (global fault plan at a model site): charge
                        // the storm budget so the loop stays bounded.
                        if storm_budget == 0 {
                            return Err(e);
                        }
                        storm_budget -= 1;
                    }
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One chunked-prefill attempt under the recovery protocol: restore
    /// the checkpoint (or start fresh), and either crash after the
    /// planner's drawn number of chunks — leaving a new snapshot — or
    /// drive the prefill to completion.
    #[allow(clippy::too_many_arguments)]
    fn prefill_attempt(
        &self,
        req: &Request,
        rung: DegradationRung,
        token: &CancelToken,
        resume: Option<&PrefillCheckpoint>,
        crashing: bool,
        attempt: u64,
        salt: u64,
        mask: &[bool],
    ) -> (Result<bool, SaError>, Option<Snapshot>) {
        let method = match self.guarded_method(rung, mask) {
            Ok(m) => m,
            Err(what) => {
                return (
                    Err(SaError::InvalidDimension {
                        op: "Scheduler::prefill_attempt",
                        what,
                    }),
                    None,
                )
            }
        };
        let mut run: Option<ChunkedPrefill<'_>> = None;
        if let Some(snapshot) = resume {
            match self.restore_prefill(snapshot, salt, token) {
                Ok(restored) => run = restored,
                Err(e) => return (Err(e), None),
            }
        }
        let mut run = match run {
            Some(r) => r,
            None => {
                let tokens = self.model.tokenize_filler(req.seq_len);
                match self.model.start_prefill(&tokens, self.cfg.chunk_size.max(1)) {
                    Ok(r) => r,
                    Err(e) => return (Err(e), None),
                }
            }
        };
        if crashing {
            // Mirror the planner's draw: complete the same number of
            // chunks it assumed this attempt reached, snapshot at the
            // quiescent boundary, then crash the in-flight chunk under
            // the installed fault plan.
            let adv = continuous::checkpoint_advance(
                &self.cfg,
                req.id,
                attempt,
                run.total_chunks() as u64,
            ) as usize;
            let target = (run.chunks_done() + adv).min(run.total_chunks().saturating_sub(1));
            while run.chunks_done() < target {
                if let Err(e) = run.advance_chunk(method.as_ref()) {
                    return (Err(e), None);
                }
            }
            let snapshot = Snapshot::Prefill(PrefillCheckpoint::capture(&run));
            metrics::counter("serve.checkpoint.snapshots").add(1);
            let _guard = (!req.fault_site.is_empty()).then(|| {
                fault::install_local(
                    FaultPlan::new(self.cfg.seed ^ req.id).worker_panic(&req.fault_site),
                )
            });
            return match run.advance_chunk(method.as_ref()) {
                Err(e) => (Err(e), Some(snapshot)),
                // Caller synthesizes the crash when the site never fired.
                Ok(()) => (Ok(false), Some(snapshot)),
            };
        }
        // Clean attempt: advance the remaining chunks under cooperative
        // cancellation (the scoped install makes the token visible to
        // pool-level chunk boundaries too, like `prefill_chunked_with`).
        let _cancel_scope = cancel::install(token);
        while !run.is_done() {
            if let Err(e) = token.check("prefill_chunked", run.chunks_done(), run.total_chunks()) {
                return (Err(e), None);
            }
            if let Err(e) = run.advance_chunk(method.as_ref()) {
                return (Err(e), None);
            }
        }
        match run.finish() {
            Ok((result, _caches)) => (Ok(result.heads_alpha_unsatisfied() == 0), None),
            Err(e) => (Err(e), None),
        }
    }

    /// One decode attempt under the recovery protocol: restore the
    /// session checkpoint (or prefill fresh), and either snapshot and
    /// crash the next decode step, or generate the remaining tokens.
    #[allow(clippy::too_many_arguments)]
    fn decode_attempt(
        &self,
        req: &Request,
        rung: DegradationRung,
        token: &CancelToken,
        resume: Option<&SessionCheckpoint>,
        crashing: bool,
        salt: u64,
        mask: &[bool],
    ) -> (Result<bool, SaError>, Option<Snapshot>) {
        let method = match self.guarded_method(rung, mask) {
            Ok(m) => m,
            Err(what) => {
                return (
                    Err(SaError::InvalidDimension {
                        op: "Scheduler::decode_attempt",
                        what,
                    }),
                    None,
                )
            }
        };
        let tokens = self.model.tokenize_filler(req.seq_len);
        let mut session: Option<DecodeSession<'_>> = None;
        if let Some(snapshot) = resume {
            match self.restore_session(snapshot, salt, token) {
                Ok(restored) => session = restored,
                Err(e) => return (Err(e), None),
            }
        }
        let mut session = match session {
            Some(s) => s,
            None => match self.model.begin_decode(&tokens, method.as_ref()) {
                Ok(s) => s,
                Err(e) => return (Err(e), None),
            },
        };
        session.install_cancel(token);
        let vocab = self.model.config().vocab_size as u32;
        if crashing {
            // The prefill's KV state is the valuable thing: snapshot it,
            // then crash the in-flight decode step under the fault plan.
            let snapshot = Snapshot::Session(SessionCheckpoint::capture(&session));
            metrics::counter("serve.checkpoint.snapshots").add(1);
            let _guard = (!req.fault_site.is_empty()).then(|| {
                fault::install_local(
                    FaultPlan::new(self.cfg.seed ^ req.id).worker_panic(&req.fault_site),
                )
            });
            return match session.step_in(0..vocab) {
                Err(e) => (Err(e), Some(snapshot)),
                // Caller synthesizes the crash when the site never fired.
                Ok(_) => (Ok(false), Some(snapshot)),
            };
        }
        let produced = session.tokens().len().saturating_sub(tokens.len());
        let remaining = req.new_tokens.saturating_sub(produced);
        match session.generate_in(remaining, 0..vocab) {
            Ok(_) => (
                Ok(session.prefill_result().heads_alpha_unsatisfied() == 0),
                None,
            ),
            Err(e) => (Err(e), None),
        }
    }

    /// Restores a prefill checkpoint under the serving-layer protocol
    /// (see [`restore_session`](Self::restore_session)).
    ///
    /// # Errors
    ///
    /// Cancellation (and other non-containable errors) propagate;
    /// containable restore failures return `Ok(None)`.
    pub fn restore_prefill(
        &self,
        snapshot: &PrefillCheckpoint,
        salt: u64,
        token: &CancelToken,
    ) -> Result<Option<ChunkedPrefill<'_>>, SaError> {
        self.restore_guarded(snapshot.kv_bytes(), salt, token, |c| {
            snapshot.restore(&self.model, salt, c)
        })
    }

    /// Restores a decode-session checkpoint under the serving-layer
    /// protocol: reserve the KV staging bytes in the memory ledger
    /// (consulting the fault harness), run the checksum-validated
    /// restore with the cancel token checked *first*, release the
    /// staging reservation, and count the outcome in
    /// `serve.checkpoint.*`. Returns `Ok(None)` when the restore is
    /// unusable — injected allocation failure or detected KV
    /// corruption — and the attempt must fall back to scratch.
    ///
    /// # Errors
    ///
    /// Cancellation (and other non-containable errors) propagate; the
    /// reservation is released on every path, so a cancel racing a
    /// restore never resurrects the session and never leaks bytes.
    pub fn restore_session(
        &self,
        snapshot: &SessionCheckpoint,
        salt: u64,
        token: &CancelToken,
    ) -> Result<Option<DecodeSession<'_>>, SaError> {
        self.restore_guarded(snapshot.kv_bytes(), salt, token, |c| {
            snapshot.restore(&self.model, salt, c)
        })
    }

    /// The shared restore protocol (reserve → restore → release →
    /// count), generic over the checkpoint kind.
    fn restore_guarded<T>(
        &self,
        kv_bytes: u64,
        salt: u64,
        token: &CancelToken,
        restore: impl FnOnce(Option<&CancelToken>) -> Result<T, SaError>,
    ) -> Result<Option<T>, SaError> {
        if self.mem.reserve(kv_bytes, salt).is_err() {
            // Staging allocation failed (injected or genuine budget
            // exhaustion): contained — the attempt restarts from
            // scratch instead of dying.
            metrics::counter("serve.pressure.alloc_faults").add(1);
            return Ok(None);
        }
        let result = restore(Some(token));
        self.mem.release(kv_bytes);
        match result {
            Ok(v) => {
                metrics::counter("serve.checkpoint.restores").add(1);
                Ok(Some(v))
            }
            Err(SaError::CorruptCheckpoint { .. }) => {
                metrics::counter("serve.checkpoint.corruptions").add(1);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Runs the real model work for one attempt. Returns whether every
    /// head's measured stage-2 coverage met the α target.
    fn run_model(
        &self,
        req: &Request,
        rung: DegradationRung,
        token: &CancelToken,
        mask: &[bool],
    ) -> Result<bool, TensorError> {
        let method = self
            .guarded_method(rung, mask)
            .map_err(|what| TensorError::InvalidDimension {
                op: "Scheduler::run_model",
                what,
            })?;
        let tokens = self.model.tokenize_filler(req.seq_len);
        match req.kind {
            RequestKind::Prefill => {
                let (result, _caches) = self.model.prefill_chunked_with(
                    &tokens,
                    self.cfg.chunk_size.max(1),
                    method.as_ref(),
                    token,
                )?;
                Ok(result.heads_alpha_unsatisfied() == 0)
            }
            RequestKind::Decode => {
                let mut session = self.model.begin_decode(&tokens, method.as_ref())?;
                session.install_cancel(token);
                let vocab = self.model.config().vocab_size as u32;
                session.generate_in(req.new_tokens, 0..vocab)?;
                Ok(session.prefill_result().heads_alpha_unsatisfied() == 0)
            }
        }
    }

    /// The rung's attention method, wrapped in a [`GuardedMethod`] when
    /// any head is quarantined (an empty or all-clear mask adds no
    /// wrapper, so the unguarded paths are byte-for-byte unchanged).
    fn guarded_method(
        &self,
        rung: DegradationRung,
        mask: &[bool],
    ) -> Result<Box<dyn AttentionMethod>, String> {
        let inner = method_for(rung)?;
        if mask.iter().any(|&q| q) {
            let heads_per_layer = self
                .model
                .layers()
                .first()
                .map(|l| l.num_heads())
                .unwrap_or(1);
            Ok(Box::new(GuardedMethod::new(inner, mask.to_vec(), heads_per_layer)))
        } else {
            Ok(inner)
        }
    }
}

/// The attention method each rung runs.
fn method_for(rung: DegradationRung) -> Result<Box<dyn AttentionMethod>, String> {
    match rung {
        DegradationRung::Full => Ok(Box::new(FullAttention::new())),
        DegradationRung::WindowOnly => WindowOnly::new(DegradationRung::TIGHT_WINDOW_RATIO)
            .map(|w| Box::new(w) as Box<dyn AttentionMethod>)
            .map_err(|e| e.to_string()),
        DegradationRung::PaperDefault | DegradationRung::Tight => rung
            .sample_config()
            .map_err(|e| e.to_string())?
            .map(|c| Box::new(SampleAttentionMethod::new(c)) as Box<dyn AttentionMethod>)
            .ok_or_else(|| format!("rung {rung} has no SampleAttention config")),
    }
}

/// Publishes batch outcomes to the global `serve.*` metrics.
fn record_metrics(records: &[RequestRecord]) {
    metrics::counter("serve.requests").add(records.len() as u64);
    for rec in records {
        let c = match rec.outcome {
            Outcome::Served => "serve.served",
            Outcome::RejectedOverloaded => "serve.rejected_overloaded",
            Outcome::RejectedBudget => "serve.rejected_budget",
            Outcome::ExpiredInQueue => "serve.expired_in_queue",
            Outcome::DeadlineExceeded => "serve.deadline_exceeded",
            Outcome::Cancelled => "serve.cancelled",
            Outcome::Failed => "serve.failed",
            Outcome::ShedQualityFloor => "quality.floor.sheds",
        };
        metrics::counter(c).add(1);
        if rec.canary {
            metrics::counter("quality.canary.requests").add(1);
            metrics::histogram("quality.canary.gap_permille")
                .record(rec.canary_gap_permille.max(0) as u64);
        }
        if !rec.rung.is_empty() {
            metrics::histogram("serve.queue_wait_ms").record(rec.queue_wait_ms);
            if let Some(rung) = rec.report.final_rung() {
                metrics::histogram("serve.final_rung").record(rung.index() as u64);
            }
        }
        if rec.retries > 0 {
            metrics::counter("serve.retried").add(rec.retries);
            metrics::histogram("serve.backoff_ms").record(rec.backoff_ms);
        }
        if rec.recovered_attempts > 0 {
            metrics::counter("serve.recovered").add(rec.recovered_attempts);
            metrics::histogram("serve.recomputed_tokens").record(rec.recomputed_tokens);
        }
        if rec.ttft_ms > 0 {
            metrics::histogram("serve.ttft_ms").record(rec.ttft_ms);
            if rec.outcome == Outcome::Served && rec.new_tokens > 1 {
                let decode_span = rec.finish_ms.saturating_sub(rec.arrival_ms + rec.ttft_ms);
                metrics::histogram("serve.tpot_ms").record(decode_span / (rec.new_tokens - 1));
            }
        }
        if rec.degraded {
            metrics::counter("serve.degraded").add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed_workload;

    fn scheduler() -> Scheduler {
        Scheduler::new(ServeConfig::default()).unwrap()
    }

    #[test]
    fn healthy_batch_serves_everything() {
        let s = scheduler();
        let reqs: Vec<Request> = (0..3)
            .map(|id| Request::prefill(id, 64, id * 500, 1_000_000))
            .collect();
        let ledger = s.run(&reqs).unwrap();
        ledger.validate(&reqs).unwrap();
        assert_eq!(ledger.count(Outcome::Served), 3);
        assert!(ledger.records.iter().all(|r| r.rung == "full"));
        assert!(ledger.records.iter().all(|r| r.alpha_satisfied));
    }

    #[test]
    fn transient_fault_is_retried_to_success() {
        let s = scheduler();
        let mut req = Request::prefill(0, 64, 0, 1_000_000);
        req.fault_fails = 2;
        req.fault_site = crate::request::FAULT_SITE.to_string();
        let ledger = s.run(std::slice::from_ref(&req)).unwrap();
        ledger.validate(std::slice::from_ref(&req)).unwrap();
        let rec = &ledger.records[0];
        assert_eq!(rec.outcome, Outcome::Served);
        assert_eq!(rec.retries, 2);
        assert!(rec.backoff_ms > 0);
    }

    #[test]
    fn permanent_fault_fails_with_typed_error() {
        let s = scheduler();
        let mut req = Request::prefill(0, 64, 0, 1_000_000);
        req.fault_fails = 99;
        req.fault_site = crate::request::FAULT_SITE.to_string();
        let ledger = s.run(std::slice::from_ref(&req)).unwrap();
        let rec = &ledger.records[0];
        assert_eq!(rec.outcome, Outcome::Failed);
        assert!(rec.error.contains("worker panic"), "{}", rec.error);
        assert!(!rec.alpha_satisfied);
    }

    #[test]
    fn deadline_cancellation_reports_chunk_progress() {
        let s = scheduler();
        // Brutal deadline: nothing fits, mid-run expiry planned.
        let req = Request::prefill(0, 224, 0, 2);
        let ledger = s.run(std::slice::from_ref(&req)).unwrap();
        let rec = &ledger.records[0];
        assert_eq!(rec.outcome, Outcome::DeadlineExceeded);
        assert_eq!(rec.rung, "window_only", "brutal deadline bottoms the ladder");
        assert_eq!(rec.chunks_completed, 0, "pre-expired token stops chunk 0");
        assert!(rec.chunks_total > 0);
        assert!(!rec.alpha_satisfied, "window-only can never certify alpha");
        assert!(rec.degraded);
    }

    #[test]
    fn decode_requests_serve_and_cancel() {
        let s = scheduler();
        let mut served = Request::prefill(0, 48, 0, 1_000_000);
        served.kind = RequestKind::Decode;
        served.new_tokens = 4;
        let mut cancelled = served.clone();
        cancelled.id = 1;
        cancelled.arrival_ms = 10_000;
        cancelled.cancel_after_ms = 1;
        let reqs = vec![served, cancelled];
        let ledger = s.run(&reqs).unwrap();
        ledger.validate(&reqs).unwrap();
        assert_eq!(ledger.records[0].outcome, Outcome::Served);
        assert_eq!(ledger.records[1].outcome, Outcome::Cancelled);
        assert!(ledger.records[1].error.contains("cancelled"));
    }

    #[test]
    fn crashed_attempts_snapshot_and_resume_from_checkpoints() {
        sa_trace::set_enabled(true);
        let snapshots = metrics::counter("serve.checkpoint.snapshots").get();
        let restores = metrics::counter("serve.checkpoint.restores").get();
        let s = scheduler();
        let mut req = Request::prefill(11, 96, 0, 1_000_000);
        req.fault_fails = 2;
        req.fault_site = crate::request::FAULT_SITE.to_string();
        let ledger = s.run(std::slice::from_ref(&req)).unwrap();
        let rec = &ledger.records[0];
        assert_eq!(rec.outcome, Outcome::Served);
        assert_eq!(rec.retries, 2);
        assert!(
            metrics::counter("serve.checkpoint.snapshots").get() >= snapshots + 2,
            "each crashed attempt snapshots its progress"
        );
        assert!(
            metrics::counter("serve.checkpoint.restores").get() >= restores + 1,
            "the successor resumes from the checkpoint"
        );
    }

    #[test]
    fn faulted_decode_served_identically_with_and_without_recovery() {
        // The recovery path must change *work*, not *answers*: a decode
        // request that crashes twice produces the same ledger record
        // whether retries resume from checkpoints or start from scratch.
        let mut req = Request::prefill(3, 48, 0, 1_000_000);
        req.kind = RequestKind::Decode;
        req.new_tokens = 4;
        req.fault_fails = 2;
        req.fault_site = crate::request::FAULT_SITE.to_string();
        let with = scheduler().run(std::slice::from_ref(&req)).unwrap();
        let mut cfg = ServeConfig::default();
        cfg.recovery_enabled = false;
        let without = Scheduler::new(cfg)
            .unwrap()
            .run(std::slice::from_ref(&req))
            .unwrap();
        assert_eq!(with.records[0].outcome, Outcome::Served);
        assert_eq!(with, without, "recovery must be invisible in the ledger");
    }

    #[test]
    fn cancel_racing_a_restore_leaks_nothing_and_resurrects_nothing() {
        let s = scheduler();
        let tokens = s.model().tokenize_filler(48);
        let session = s
            .model()
            .begin_decode(&tokens, &FullAttention::new())
            .unwrap();
        let snap = sa_model::SessionCheckpoint::capture(&session);
        drop(session);
        let baseline = s.memory().in_use();
        let token = CancelToken::new();
        token.cancel();
        let err = s.restore_session(&snap, 0x51, &token).unwrap_err();
        assert!(
            matches!(err, SaError::Cancelled { site: "checkpoint_restore", .. }),
            "{err:?}"
        );
        assert_eq!(
            s.memory().in_use(),
            baseline,
            "the staging reservation must be released on the cancel path"
        );
    }

    #[test]
    fn corrupt_and_alloc_faulted_restores_fall_back_to_scratch() {
        sa_trace::set_enabled(true);
        let s = scheduler();
        let tokens = s.model().tokenize_filler(48);
        let session = s
            .model()
            .begin_decode(&tokens, &FullAttention::new())
            .unwrap();
        let snap = sa_model::SessionCheckpoint::capture(&session);
        drop(session);
        let token = CancelToken::new();

        let corruptions = metrics::counter("serve.checkpoint.corruptions").get();
        {
            let _g = fault::install_local(FaultPlan::new(9).kv_bit_flips(1));
            let restored = s.restore_session(&snap, 0x52, &token).unwrap();
            assert!(restored.is_none(), "corrupt restore is contained");
        }
        assert!(metrics::counter("serve.checkpoint.corruptions").get() > corruptions);

        let alloc_faults = metrics::counter("serve.pressure.alloc_faults").get();
        {
            let _g = fault::install_local(FaultPlan::new(9).alloc_failures(1));
            let restored = s.restore_session(&snap, 0x53, &token).unwrap();
            assert!(restored.is_none(), "failed staging alloc is contained");
        }
        assert!(metrics::counter("serve.pressure.alloc_faults").get() > alloc_faults);
        assert_eq!(s.memory().in_use(), 0, "no path leaks staging bytes");
    }

    #[test]
    fn serve_crash_storm_is_contained_and_deterministic() {
        let s = scheduler();
        let reqs: Vec<Request> = (0..4)
            .map(|id| Request::prefill(id, 64, id * 300, 1_000_000))
            .collect();
        let run_under_storm = || {
            let _g = fault::install(FaultPlan::new(0xBAD).serve_crash("serve_attempt", 3));
            s.run(&reqs).unwrap()
        };
        let a = run_under_storm();
        a.validate(&reqs).unwrap();
        let b = pool::with_threads(2, run_under_storm);
        assert_eq!(a, b, "storm crashes key off (site, salt), not threads");
    }

    #[test]
    fn mixed_ledger_is_identical_across_thread_counts() {
        let s = scheduler();
        let reqs = mixed_workload(5, 16);
        let baseline = pool::with_threads(1, || s.run(&reqs)).unwrap();
        baseline.validate(&reqs).unwrap();
        for threads in [2, 4] {
            let ledger = pool::with_threads(threads, || s.run(&reqs)).unwrap();
            assert_eq!(
                ledger, baseline,
                "ledger must be bit-identical at {threads} threads"
            );
        }
    }
}
