//! The outcome ledger: one auditable record per request.
//!
//! The ledger is the scheduler's accountability artifact. Its
//! guarantees, asserted by [`Ledger::validate`] and the chaos soak:
//!
//! - **total**: every submitted request appears exactly once — none is
//!   ever lost, whatever mix of overload, faults, cancellations, and
//!   deadline expiries the batch hits;
//! - **deterministic**: records carry only virtual-clock times and
//!   bit-deterministic measurements, so the serialized ledger is
//!   byte-identical at every `SA_THREADS` setting;
//! - **honest about degradation**: a request served below the
//!   [`Full`](sa_core::DegradationRung::Full) rung carries its
//!   [`DegradationReport`], and the window-only rung can never report
//!   `alpha_satisfied = true` (the ladder's core invariant).

use crate::request::RequestKind;
use crate::Request;
use sa_core::DegradationReport;

/// Terminal state of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion (possibly after retries, possibly degraded).
    Served,
    /// Rejected at arrival: all slots and queue positions taken.
    RejectedOverloaded,
    /// Rejected at start: projected memory exceeded `SA_MEM_BUDGET`.
    RejectedBudget,
    /// Deadline expired while waiting for a slot; never ran.
    ExpiredInQueue,
    /// Deadline expired mid-run; cooperatively cancelled within one chunk.
    DeadlineExceeded,
    /// Caller cancelled mid-run; cooperatively cancelled within one chunk.
    Cancelled,
    /// Transient faults outlasted the retry budget.
    Failed,
    /// Shed at start: the deadline demanded a rung below the tenant's
    /// quality floor, and the floor won; never ran.
    ShedQualityFloor,
}

sa_json::impl_json_enum!(Outcome {
    Served,
    RejectedOverloaded,
    RejectedBudget,
    ExpiredInQueue,
    DeadlineExceeded,
    Cancelled,
    Failed,
    ShedQualityFloor
});

/// One request's full audit record.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Request id (ledger is sorted by it).
    pub id: u64,
    /// Prefill or decode.
    pub kind: RequestKind,
    /// Prompt length in synthetic tokens.
    pub seq_len: u64,
    /// Virtual arrival time.
    pub arrival_ms: u64,
    /// Virtual execution start (== finish when never started).
    pub start_ms: u64,
    /// Virtual completion / rejection / cancellation time.
    pub finish_ms: u64,
    /// Virtual time spent waiting for a slot.
    pub queue_wait_ms: u64,
    /// Tenant the request billed against (continuous batching charges
    /// its token-bucket quotas per tenant; one-shot batches carry the
    /// request's tenant through unchanged).
    pub tenant: u64,
    /// Decode steps requested after prefill (0 for pure prefill).
    pub new_tokens: u64,
    /// Virtual time from arrival to the first output token (TTFT).
    /// Zero when no token was produced (rejections, queue expiries,
    /// cancellations before the first token).
    pub ttft_ms: u64,
    /// Terminal state.
    pub outcome: Outcome,
    /// Final degradation rung (`""` when no model work ran).
    pub rung: String,
    /// Whether the final rung measured/certified the CRA α target.
    /// `false` by construction for the window-only rung and for every
    /// non-served outcome.
    pub alpha_satisfied: bool,
    /// Whether the request ran below the full-attention rung.
    pub degraded: bool,
    /// Retries performed.
    pub retries: u64,
    /// Total virtual backoff between attempts.
    pub backoff_ms: u64,
    /// Retries that resumed from a non-empty chunk-boundary checkpoint
    /// instead of re-running prefill from scratch (continuous batching
    /// with [`recovery_enabled`](crate::ServeConfig::recovery_enabled);
    /// always 0 on the one-shot path, which has no checkpoints).
    pub recovered_attempts: u64,
    /// Prefill tokens recomputed because of crashes: at most one chunk
    /// per recovered attempt, or everything a crashed attempt had
    /// completed when retrying from scratch.
    pub recomputed_tokens: u64,
    /// Chunk progress reported by a cooperative cancellation (0/0 when
    /// not cancelled).
    pub chunks_completed: u64,
    /// Chunk total reported by a cooperative cancellation.
    pub chunks_total: u64,
    /// Display of the final error (`""` when served).
    pub error: String,
    /// Whether this request was a shadow canary (ran an additional
    /// dense reference prefill for ground-truth quality measurement).
    pub canary: bool,
    /// The canary's worst-head *true* CRA against the exact softmax
    /// rows (0 when not a canary).
    pub canary_true_cra: f64,
    /// The canary's max-abs final-residual error, sparse vs dense
    /// (0 when not a canary).
    pub canary_max_abs_err: f64,
    /// The canary's worst estimated−true coverage gap in permille
    /// (0 when not a canary).
    pub canary_gap_permille: i64,
    /// Heads quarantined to dense fallback while this request ran.
    pub quarantined_heads: u64,
    /// The rung-by-rung degradation audit trail.
    pub report: DegradationReport,
}

sa_json::impl_json_struct!(RequestRecord {
    id,
    kind,
    seq_len,
    arrival_ms,
    start_ms,
    finish_ms,
    queue_wait_ms,
    tenant,
    new_tokens,
    ttft_ms,
    outcome,
    rung,
    alpha_satisfied,
    degraded,
    retries,
    backoff_ms,
    recovered_attempts,
    recomputed_tokens,
    chunks_completed,
    chunks_total,
    error,
    canary: default,
    canary_true_cra: default,
    canary_max_abs_err: default,
    canary_gap_permille: default,
    quarantined_heads: default,
    report
});

/// The batch outcome ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    /// Schema tag for the results file.
    pub schema: String,
    /// Workload / scheduler seed.
    pub seed: u64,
    /// Records sorted by request id, one per submitted request.
    pub records: Vec<RequestRecord>,
}

sa_json::impl_json_struct!(Ledger {
    schema,
    seed,
    records
});

/// Schema tag written by [`Scheduler::run`](crate::Scheduler::run).
/// `v2` added the tenant, `new_tokens`, and TTFT fields for the
/// continuous-batching SLO accounting; `v3` added the crash-recovery
/// tallies (`recovered_attempts`, `recomputed_tokens`); `v4` added the
/// quality-guardrail plane (the shadow-canary measurements, the
/// quarantined-head count, and the `ShedQualityFloor` outcome).
pub const LEDGER_SCHEMA: &str = "sa.serve.ledger.v4";

impl Ledger {
    /// Counts records with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.records.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Checks the ledger's accountability invariants against the batch
    /// it came from. Returns the first violation as a message.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn validate(&self, requests: &[Request]) -> Result<(), String> {
        if self.records.len() != requests.len() {
            return Err(format!(
                "ledger has {} records for {} requests — requests were lost or duplicated",
                self.records.len(),
                requests.len()
            ));
        }
        let mut expected: Vec<u64> = requests.iter().map(|r| r.id).collect();
        expected.sort_unstable();
        let got: Vec<u64> = self.records.iter().map(|r| r.id).collect();
        if got != expected {
            return Err(format!(
                "ledger ids {got:?} do not match submitted ids {expected:?}"
            ));
        }
        for rec in &self.records {
            let ran_model = !matches!(
                rec.outcome,
                Outcome::RejectedOverloaded
                    | Outcome::RejectedBudget
                    | Outcome::ExpiredInQueue
                    | Outcome::ShedQualityFloor
            );
            if ran_model == rec.rung.is_empty() {
                return Err(format!(
                    "request {}: outcome {:?} inconsistent with rung {:?}",
                    rec.id, rec.outcome, rec.rung
                ));
            }
            if rec.rung == "window_only" && rec.alpha_satisfied {
                return Err(format!(
                    "request {}: window-only rung can never certify alpha",
                    rec.id
                ));
            }
            if rec.alpha_satisfied && rec.outcome != Outcome::Served {
                return Err(format!(
                    "request {}: alpha_satisfied on non-served outcome {:?}",
                    rec.id, rec.outcome
                ));
            }
            if rec.outcome == Outcome::Served && !rec.error.is_empty() {
                return Err(format!(
                    "request {}: served but carries error {:?}",
                    rec.id, rec.error
                ));
            }
            if rec.outcome != Outcome::Served && ran_model && rec.error.is_empty() {
                return Err(format!(
                    "request {}: outcome {:?} without an error message",
                    rec.id, rec.outcome
                ));
            }
            if rec.degraded != rec.report.degraded() {
                return Err(format!(
                    "request {}: degraded flag disagrees with report",
                    rec.id
                ));
            }
            if let Some(last) = rec.report.attempts.last() {
                if ran_model && last.alpha_satisfied != rec.alpha_satisfied {
                    return Err(format!(
                        "request {}: alpha flag disagrees with report tail",
                        rec.id
                    ));
                }
            }
            if rec.recovered_attempts > rec.retries {
                return Err(format!(
                    "request {}: {} recovered attempts exceed {} retries",
                    rec.id, rec.recovered_attempts, rec.retries
                ));
            }
            if rec.recovered_attempts > 0 && rec.recomputed_tokens == 0 {
                return Err(format!(
                    "request {}: a checkpoint resume always recomputes its in-flight chunk",
                    rec.id
                ));
            }
            if rec.outcome == Outcome::ShedQualityFloor && rec.error.is_empty() {
                return Err(format!(
                    "request {}: a quality-floor shed must carry its refusal error",
                    rec.id
                ));
            }
            if rec.canary && !ran_model {
                return Err(format!(
                    "request {}: canary measurement without model work",
                    rec.id
                ));
            }
            if !rec.canary
                && (rec.canary_true_cra != 0.0
                    || rec.canary_max_abs_err != 0.0
                    || rec.canary_gap_permille != 0)
            {
                return Err(format!(
                    "request {}: canary fields set on a non-canary record",
                    rec.id
                ));
            }
            if rec.finish_ms < rec.start_ms || rec.start_ms < rec.arrival_ms {
                return Err(format!("request {}: time went backwards", rec.id));
            }
            if rec.ttft_ms > 0 {
                let first_token = rec.arrival_ms + rec.ttft_ms;
                if first_token < rec.start_ms || first_token > rec.finish_ms {
                    return Err(format!(
                        "request {}: first token at {first_token} outside [{}, {}]",
                        rec.id, rec.start_ms, rec.finish_ms
                    ));
                }
                if !ran_model {
                    return Err(format!(
                        "request {}: TTFT recorded without model work",
                        rec.id
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_json::{FromJson, ToJson};

    fn record(id: u64) -> RequestRecord {
        RequestRecord {
            id,
            kind: RequestKind::Prefill,
            seq_len: 64,
            arrival_ms: 0,
            start_ms: 0,
            finish_ms: 64,
            queue_wait_ms: 0,
            tenant: 0,
            new_tokens: 0,
            ttft_ms: 64,
            outcome: Outcome::Served,
            rung: "full".to_string(),
            alpha_satisfied: true,
            degraded: false,
            retries: 0,
            backoff_ms: 0,
            recovered_attempts: 0,
            recomputed_tokens: 0,
            chunks_completed: 0,
            chunks_total: 0,
            error: String::new(),
            canary: false,
            canary_true_cra: 0.0,
            canary_max_abs_err: 0.0,
            canary_gap_permille: 0,
            quarantined_heads: 0,
            report: {
                let mut r = DegradationReport::new(0.95);
                r.record(sa_core::DegradationRung::Full, true, "served");
                r
            },
        }
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let ledger = Ledger {
            schema: LEDGER_SCHEMA.to_string(),
            seed: 7,
            records: vec![record(0), record(1)],
        };
        let s = sa_json::to_string(&ledger.to_json());
        let back = Ledger::from_json(&sa_json::from_str::<sa_json::Json>(&s).unwrap()).unwrap();
        assert_eq!(back, ledger);
    }

    #[test]
    fn validate_catches_lost_and_inconsistent_records() {
        let reqs = vec![
            crate::Request::prefill(0, 64, 0, 100),
            crate::Request::prefill(1, 64, 0, 100),
        ];
        let good = Ledger {
            schema: LEDGER_SCHEMA.to_string(),
            seed: 0,
            records: vec![record(0), record(1)],
        };
        assert!(good.validate(&reqs).is_ok());

        let mut lost = good.clone();
        lost.records.pop();
        assert!(lost.validate(&reqs).unwrap_err().contains("lost"));

        let mut bad_alpha = good.clone();
        bad_alpha.records[0].rung = "window_only".to_string();
        assert!(bad_alpha
            .validate(&reqs)
            .unwrap_err()
            .contains("never certify"));

        let mut bad_err = good.clone();
        bad_err.records[1].error = "boom".to_string();
        assert!(bad_err.validate(&reqs).unwrap_err().contains("carries error"));

        let mut bad_recovery = good.clone();
        bad_recovery.records[0].recovered_attempts = 1;
        assert!(bad_recovery
            .validate(&reqs)
            .unwrap_err()
            .contains("recovered attempts exceed"));

        let mut bad_recompute = good.clone();
        bad_recompute.records[0].retries = 2;
        bad_recompute.records[0].recovered_attempts = 2;
        bad_recompute.records[0].recomputed_tokens = 0;
        assert!(bad_recompute
            .validate(&reqs)
            .unwrap_err()
            .contains("in-flight chunk"));

        let mut bad_ttft = good.clone();
        bad_ttft.records[0].ttft_ms = 10_000;
        assert!(bad_ttft
            .validate(&reqs)
            .unwrap_err()
            .contains("first token"));

        let mut bad_canary = good.clone();
        bad_canary.records[0].canary_gap_permille = 5;
        assert!(bad_canary
            .validate(&reqs)
            .unwrap_err()
            .contains("non-canary"));

        let mut shed = good.clone();
        shed.records[0].outcome = Outcome::ShedQualityFloor;
        shed.records[0].rung = String::new();
        shed.records[0].ttft_ms = 0;
        shed.records[0].alpha_satisfied = false;
        shed.records[0].report = DegradationReport::new(0.95);
        assert!(shed
            .validate(&reqs)
            .unwrap_err()
            .contains("quality-floor shed"));
    }

    #[test]
    fn canary_fields_round_trip_and_sheds_validate() {
        let mut rec = record(0);
        rec.canary = true;
        rec.canary_true_cra = 0.97;
        rec.canary_max_abs_err = 1.5e-4;
        rec.canary_gap_permille = -3;
        rec.quarantined_heads = 2;
        let reqs = vec![crate::Request::prefill(0, 64, 0, 100)];
        let ledger = Ledger {
            schema: LEDGER_SCHEMA.to_string(),
            seed: 0,
            records: vec![rec],
        };
        ledger.validate(&reqs).unwrap();
        let s = sa_json::to_string(&ledger.to_json());
        let back = Ledger::from_json(&sa_json::from_str::<sa_json::Json>(&s).unwrap()).unwrap();
        assert_eq!(back, ledger);

        // A well-formed floor shed validates.
        let mut shed = record(1);
        shed.outcome = Outcome::ShedQualityFloor;
        shed.rung = String::new();
        shed.ttft_ms = 0;
        shed.alpha_satisfied = false;
        shed.error = "quality floor for tenant 1: no permitted rung fits".to_string();
        shed.report = DegradationReport::new(0.95);
        shed.degraded = false;
        let reqs = vec![crate::Request::prefill(1, 64, 0, 100)];
        Ledger {
            schema: LEDGER_SCHEMA.to_string(),
            seed: 0,
            records: vec![shed],
        }
        .validate(&reqs)
        .unwrap();
    }
}
