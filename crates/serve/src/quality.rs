//! The quality guardrail plane: shadow canaries, per-head drift
//! detection, and the quarantine state machine that enforces the
//! near-lossless contract at runtime.
//!
//! ## Shadow canaries
//!
//! A seeded, deterministic fraction of served requests (one in
//! [`ServeConfig::canary_denominator`](crate::ServeConfig::canary_denominator),
//! selected by [`is_canary`]) additionally runs a **dense reference
//! prefill** after the sparse one and measures ground truth:
//!
//! - the *true* CRA of every head's discovered mask against the exact
//!   softmax rows ([`sa_core::cra_of_structured_mask`]), versus the
//!   stage-2 sampled estimate (`covered_mass`) the head certified with;
//! - the max-abs error of the final residual stream between the sparse
//!   and dense prefills.
//!
//! Canary selection is a pure function of `(seed, request id)` — it
//! never consults scheduler state, so the canary set is identical at
//! every `SA_THREADS` and canaries never perturb scheduling decisions.
//!
//! ## Drift detection and quarantine
//!
//! [`QualityGuard`] folds canary observations (serially, in request-id
//! order) into a per-head tracker:
//!
//! - **hard trip**: the shadow sparse run fell back or missed α — the
//!   head's sparse pipeline is unhealthy *right now*;
//! - **drift trip**: a CUSUM accumulator over the estimated−true
//!   coverage gap (less a slack allowance) crosses its threshold — the
//!   estimator is systematically optimistic even though each single
//!   reading looks plausible.
//!
//! A tripped head is **quarantined**: [`GuardedMethod`] routes it to
//! dense attention (surfacing as
//! [`FallbackReason::QualityQuarantine`]) while all other heads keep
//! their sparse path. Canaries keep *shadow-probing* quarantined heads
//! with the sparse operator; after
//! [`QualityGuard::probation_clean`] consecutive clean probes the head
//! is re-admitted.
//!
//! [`FallbackReason::QualityQuarantine`]: sa_core::FallbackReason::QualityQuarantine

use sa_baselines::{AttentionMethod, FullAttention, MethodOutput};
use sa_core::{cra_of_structured_mask, DegradationRung, FallbackReason, SampleAttention};
use sa_kernels::attention_probs;
use sa_model::SyntheticTransformer;
use sa_tensor::{Matrix, SaError, TensorError};
use sa_trace::metrics;

/// Whether request `id` is a shadow canary under `seed` with one canary
/// per `denominator` requests (`0` disables canaries entirely).
///
/// Pure function of its arguments — the splitmix64 finalizer over the
/// same `(seed, id)` salt the retry ladder uses — so the canary set is
/// reproducible and independent of thread count and arrival order.
pub fn is_canary(seed: u64, id: u64, denominator: u64) -> bool {
    if denominator == 0 {
        return false;
    }
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % denominator == 0
}

/// One head's ground-truth measurement from a shadow canary.
#[derive(Debug, Clone)]
pub struct HeadCanary {
    /// Layer index.
    pub layer: usize,
    /// Query-head index within the layer.
    pub head: usize,
    /// Stage-2's sampled coverage estimate for the shadow mask.
    pub est_covered_mass: f64,
    /// The mask's true CRA against the exact softmax rows.
    pub true_cra: f64,
    /// `round((est_covered_mass - true_cra) * 1000)`: how optimistic
    /// the estimator was, in permille (negative = conservative).
    pub gap_permille: i64,
    /// Whether the shadow sparse run certified α on this head.
    pub alpha_satisfied: bool,
    /// Whether the shadow sparse run degraded to dense.
    pub fell_back: bool,
}

/// The full measurement from one shadow-canary request.
#[derive(Debug, Clone)]
pub struct CanaryObservation {
    /// The canary request's id (observations are folded in id order).
    pub request_id: u64,
    /// Worst (minimum) true CRA across probed heads (`1.0` when the
    /// rung has no sparse heads to probe).
    pub true_cra: f64,
    /// Max-abs error of the final residual stream, sparse vs dense.
    pub max_abs_err: f64,
    /// Worst (maximum) estimated−true coverage gap across probed
    /// heads, permille.
    pub gap_permille: i64,
    /// Per-head measurements (empty for rungs without a sparse config).
    pub heads: Vec<HeadCanary>,
}

/// An attention method wrapper that routes quarantined heads to dense
/// attention while delegating healthy heads to the wrapped method.
///
/// The quarantine mask is layer-major (`layer * heads_per_layer +
/// head`), frozen at construction: within one batch every request sees
/// the same mask, so execution stays bit-deterministic regardless of
/// which worker thread runs which head.
pub struct GuardedMethod {
    inner: Box<dyn AttentionMethod>,
    dense: FullAttention,
    quarantined: Vec<bool>,
    heads_per_layer: usize,
    name: String,
}

impl GuardedMethod {
    /// Wraps `inner` with the quarantine mask. An empty mask (or one
    /// with no set bits) makes the wrapper a transparent delegate.
    pub fn new(inner: Box<dyn AttentionMethod>, quarantined: Vec<bool>, heads_per_layer: usize) -> Self {
        let name = format!("guarded({})", inner.name());
        GuardedMethod {
            inner,
            dense: FullAttention::new(),
            quarantined,
            heads_per_layer,
            name,
        }
    }

    fn is_quarantined(&self, layer: usize, head: usize) -> bool {
        self.quarantined
            .get(layer * self.heads_per_layer.max(1) + head)
            .copied()
            .unwrap_or(false)
    }
}

impl AttentionMethod for GuardedMethod {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<MethodOutput, TensorError> {
        self.inner.forward(q, k, v)
    }

    fn forward_head(
        &self,
        layer: usize,
        head: usize,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<MethodOutput, TensorError> {
        if self.is_quarantined(layer, head) {
            let mut out = self.dense.forward(q, k, v)?;
            out.fell_back = true;
            out.fallback_reason = FallbackReason::QualityQuarantine;
            out.alpha_satisfied = true;
            metrics::counter(FallbackReason::QualityQuarantine.counter_name()).add(1);
            Ok(out)
        } else {
            self.inner.forward_head(layer, head, q, k, v)
        }
    }
}

/// Runs the shadow-canary measurement for one served request.
///
/// The production-shaped sparse prefill re-runs under `quarantined`
/// (mirroring exactly what the serving path executed), then a dense
/// reference prefill provides ground truth. For each head — including
/// quarantined ones, whose shadow probe is the probation signal — the
/// rung's sparse operator re-discovers its mask on the sparse run's
/// actual layer inputs and its true CRA is computed against the exact
/// softmax rows.
///
/// Rungs without a sparse config ([`DegradationRung::Full`],
/// [`DegradationRung::WindowOnly`]) probe no heads; the observation
/// still carries the dense-vs-production max-abs output error.
///
/// # Errors
///
/// Propagates tensor/kernel errors; callers contain them (a canary
/// probe failure must never fail the request it shadows).
pub fn canary_probe(
    model: &SyntheticTransformer,
    rung: DegradationRung,
    production: &dyn AttentionMethod,
    seq_len: usize,
    request_id: u64,
) -> Result<CanaryObservation, SaError> {
    let _span = sa_trace::span_in("serve", "canary_probe");
    let tokens = model.tokenize_filler(seq_len);
    let sparse = model.prefill(&tokens, production)?;
    let dense = model.prefill(&tokens, &FullAttention::new())?;

    let mut max_abs_err = 0.0f64;
    let (rows, cols) = sparse.hidden.shape();
    for i in 0..rows {
        for j in 0..cols {
            let d = (sparse.hidden.get(i, j) - dense.hidden.get(i, j)).abs() as f64;
            if d > max_abs_err {
                max_abs_err = d;
            }
        }
    }

    let mut heads = Vec::new();
    let sample_config = rung.sample_config().map_err(|e| SaError::InvalidDimension {
        op: "canary_probe",
        what: e.to_string(),
    })?;
    if let Some(cfg) = sample_config {
        let shadow_op = SampleAttention::new(cfg);
        for (l, layer) in model.layers().iter().enumerate() {
            for h in 0..layer.num_heads() {
                let (q, k, v) = layer.project_head(&sparse.layer_inputs[l], h)?;
                let shadow = shadow_op.forward(&q, &k, &v).map_err(|e| match e {
                    sa_core::SampleAttentionError::Tensor(t) => t,
                    other => SaError::InvalidDimension {
                        op: "canary_probe",
                        what: other.to_string(),
                    },
                })?;
                let p = attention_probs(&q, &k, true)?;
                let true_cra = cra_of_structured_mask(&p, &shadow.mask)? as f64;
                let est = shadow.stats.covered_mass as f64;
                heads.push(HeadCanary {
                    layer: l,
                    head: h,
                    est_covered_mass: est,
                    true_cra,
                    gap_permille: ((est - true_cra) * 1000.0).round() as i64,
                    alpha_satisfied: shadow.stats.alpha_satisfied,
                    fell_back: shadow.stats.fell_back(),
                });
            }
        }
    }

    let true_cra = heads
        .iter()
        .map(|h| h.true_cra)
        .fold(1.0f64, f64::min);
    let gap_permille = heads.iter().map(|h| h.gap_permille).max().unwrap_or(0);
    Ok(CanaryObservation {
        request_id,
        true_cra,
        max_abs_err,
        gap_permille,
        heads,
    })
}

/// A head-quarantine state transition, for the audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityTransition {
    /// The canary request whose observation tripped the transition.
    pub request_id: u64,
    /// Layer index of the head.
    pub layer: u64,
    /// Head index within the layer.
    pub head: u64,
    /// `"quarantine"` or `"readmit"`.
    pub action: String,
    /// Human-readable trigger (hard trip, drift, probation).
    pub reason: String,
}

sa_json::impl_json_struct!(QualityTransition {
    request_id,
    layer,
    head,
    action,
    reason
});

/// Per-head drift state.
#[derive(Debug, Clone)]
enum HeadState {
    /// Serving sparse; tracking the coverage-gap drift statistics.
    Healthy {
        /// EWMA of the canary gap (permille), for reporting.
        ewma_gap_permille: i64,
        /// One-sided CUSUM of `gap - slack` (permille), clamped at 0.
        cusum_permille: i64,
    },
    /// Routed to dense; counting consecutive clean shadow probes.
    Quarantined {
        /// Clean probes so far this probation.
        clean: u32,
    },
}

/// The per-head drift detector and quarantine state machine.
///
/// All state transitions happen in [`absorb`](Self::absorb), a serial
/// fold over canary observations in request-id order — never from the
/// parallel execution path — so the quarantine trajectory is
/// bit-identical at every `SA_THREADS`.
#[derive(Debug, Clone)]
pub struct QualityGuard {
    heads: Vec<HeadState>,
    heads_per_layer: usize,
    /// Gap allowance (permille) before the CUSUM accumulates: the
    /// coarse stage-2 schedule's sampling estimate legitimately
    /// disagrees with the true CRA by a few permille.
    pub gap_slack_permille: i64,
    /// CUSUM level (permille) at which a head is quarantined for
    /// drift.
    pub cusum_threshold_permille: i64,
    /// Consecutive clean shadow probes required to re-admit a
    /// quarantined head.
    pub probation_clean: u32,
    transitions: Vec<QualityTransition>,
}

impl QualityGuard {
    /// A guard for a model with `num_layers` layers of
    /// `heads_per_layer` heads, all healthy, with default thresholds.
    pub fn new(num_layers: usize, heads_per_layer: usize) -> Self {
        QualityGuard {
            heads: vec![
                HeadState::Healthy {
                    ewma_gap_permille: 0,
                    cusum_permille: 0,
                };
                num_layers * heads_per_layer
            ],
            heads_per_layer,
            gap_slack_permille: 25,
            cusum_threshold_permille: 75,
            probation_clean: 2,
            transitions: Vec::new(),
        }
    }

    /// A guard sized for `model`.
    pub fn for_model(model: &SyntheticTransformer) -> Self {
        let heads_per_layer = model.layers().first().map_or(0, |l| l.num_heads());
        Self::new(model.layers().len(), heads_per_layer)
    }

    /// Heads per layer this guard was sized for.
    pub fn heads_per_layer(&self) -> usize {
        self.heads_per_layer
    }

    /// The current quarantine mask, layer-major — feed it to
    /// [`GuardedMethod`] (the scheduler snapshots it per batch).
    pub fn quarantine_mask(&self) -> Vec<bool> {
        self.heads
            .iter()
            .map(|s| matches!(s, HeadState::Quarantined { .. }))
            .collect()
    }

    /// Number of currently quarantined heads.
    pub fn quarantined_count(&self) -> usize {
        self.heads
            .iter()
            .filter(|s| matches!(s, HeadState::Quarantined { .. }))
            .count()
    }

    /// Every quarantine/readmit transition so far, in the order they
    /// tripped.
    pub fn transitions(&self) -> &[QualityTransition] {
        &self.transitions
    }

    /// Folds a batch's canary observations into the per-head state.
    ///
    /// Callers must pass observations sorted by `request_id` (the
    /// scheduler does); within one observation heads are visited in
    /// layer-major order. Both orders are data-determined, so the
    /// resulting state machine trajectory is thread-count independent.
    pub fn absorb(&mut self, observations: &[CanaryObservation]) {
        for obs in observations {
            for hc in &obs.heads {
                let idx = hc.layer * self.heads_per_layer.max(1) + hc.head;
                if idx >= self.heads.len() {
                    continue;
                }
                let clean_probe = !hc.fell_back
                    && hc.alpha_satisfied
                    && hc.gap_permille <= self.gap_slack_permille;
                match &mut self.heads[idx] {
                    HeadState::Healthy {
                        ewma_gap_permille,
                        cusum_permille,
                    } => {
                        if hc.fell_back || !hc.alpha_satisfied {
                            let reason = if hc.fell_back {
                                "shadow sparse run fell back to dense"
                            } else {
                                "shadow sparse run missed the alpha target"
                            };
                            self.heads[idx] = HeadState::Quarantined { clean: 0 };
                            self.trip(obs.request_id, hc, "quarantine", reason);
                        } else {
                            *ewma_gap_permille = (*ewma_gap_permille * 3 + hc.gap_permille) / 4;
                            *cusum_permille = (*cusum_permille + hc.gap_permille
                                - self.gap_slack_permille)
                                .max(0);
                            if *cusum_permille > self.cusum_threshold_permille {
                                self.heads[idx] = HeadState::Quarantined { clean: 0 };
                                self.trip(
                                    obs.request_id,
                                    hc,
                                    "quarantine",
                                    "coverage-gap CUSUM crossed the drift threshold",
                                );
                            }
                        }
                    }
                    HeadState::Quarantined { clean } => {
                        if clean_probe {
                            *clean += 1;
                            if *clean >= self.probation_clean {
                                self.heads[idx] = HeadState::Healthy {
                                    ewma_gap_permille: hc.gap_permille,
                                    cusum_permille: 0,
                                };
                                self.trip(
                                    obs.request_id,
                                    hc,
                                    "readmit",
                                    "probation passed: consecutive clean shadow probes",
                                );
                            }
                        } else {
                            *clean = 0;
                        }
                    }
                }
            }
        }
    }

    fn trip(&mut self, request_id: u64, hc: &HeadCanary, action: &str, reason: &str) {
        let counter = if action == "quarantine" {
            "quality.quarantine.trips"
        } else {
            "quality.quarantine.readmits"
        };
        metrics::counter(counter).add(1);
        self.transitions.push(QualityTransition {
            request_id,
            layer: hc.layer as u64,
            head: hc.head as u64,
            action: action.to_string(),
            reason: reason.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_model::ModelConfig;

    #[test]
    fn canary_selection_is_a_pure_seeded_fraction() {
        assert!(!is_canary(7, 0, 0), "denominator 0 disables canaries");
        let hits: Vec<u64> = (0..4096).filter(|&id| is_canary(7, id, 32)).collect();
        let again: Vec<u64> = (0..4096).filter(|&id| is_canary(7, id, 32)).collect();
        assert_eq!(hits, again, "pure function of (seed, id)");
        // Roughly 1/32 of ids, and not degenerate.
        assert!(hits.len() > 4096 / 64 && hits.len() < 4096 / 16, "{}", hits.len());
        // Denominator 1 marks everything.
        assert!((0..64).all(|id| is_canary(7, id, 1)));
        // Different seeds pick different sets.
        let other: Vec<u64> = (0..4096).filter(|&id| is_canary(8, id, 32)).collect();
        assert_ne!(hits, other);
    }

    #[test]
    fn guarded_method_routes_quarantined_heads_dense() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(3)).unwrap();
        let heads = model.layers()[0].num_heads();
        let total = model.layers().len() * heads;
        let mut mask = vec![false; total];
        mask[0] = true; // quarantine L0.H0
        let cfg = DegradationRung::PaperDefault.sample_config().unwrap().unwrap();
        let inner: Box<dyn AttentionMethod> =
            Box::new(sa_baselines::SampleAttentionMethod::new(cfg));
        let guarded = GuardedMethod::new(inner, mask, heads);
        let tokens = model.tokenize_filler(64);
        let result = model.prefill(&tokens, &guarded).unwrap();
        let r0 = &result.head_reports[0];
        assert!(r0.fell_back);
        assert_eq!(r0.fallback_reason, FallbackReason::QualityQuarantine);
        assert!(r0.alpha_satisfied, "dense routing still certifies alpha");
        assert!((r0.density - 1.0).abs() < 1e-9, "quarantined head runs dense");
        // The other heads keep the sparse path.
        assert!(result.head_reports[1..]
            .iter()
            .all(|r| r.fallback_reason != FallbackReason::QualityQuarantine));
    }

    #[test]
    fn canary_probe_measures_true_coverage_on_healthy_heads() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(3)).unwrap();
        let cfg = DegradationRung::PaperDefault.sample_config().unwrap().unwrap();
        let method: Box<dyn AttentionMethod> =
            Box::new(sa_baselines::SampleAttentionMethod::new(cfg));
        let obs = canary_probe(&model, DegradationRung::PaperDefault, method.as_ref(), 96, 42)
            .unwrap();
        assert_eq!(obs.request_id, 42);
        assert_eq!(
            obs.heads.len(),
            model.layers().len() * model.layers()[0].num_heads()
        );
        assert!(obs.true_cra > 0.0 && obs.true_cra <= 1.0);
        assert!(obs.max_abs_err.is_finite());
        for h in &obs.heads {
            assert!(!h.fell_back, "healthy model: no fallback in the shadow run");
            assert!(h.true_cra > 0.5, "L{}.H{} true CRA {}", h.layer, h.head, h.true_cra);
        }
    }

    #[test]
    fn full_rung_probe_has_no_heads_and_zero_error() {
        let model = SyntheticTransformer::new(ModelConfig::tiny(3)).unwrap();
        let obs = canary_probe(
            &model,
            DegradationRung::Full,
            &FullAttention::new(),
            48,
            0,
        )
        .unwrap();
        assert!(obs.heads.is_empty());
        assert_eq!(obs.true_cra, 1.0);
        assert_eq!(obs.gap_permille, 0);
        assert_eq!(obs.max_abs_err, 0.0, "dense vs dense is exact");
    }

    fn head_obs(id: u64, gap: i64, alpha: bool, fell_back: bool) -> CanaryObservation {
        CanaryObservation {
            request_id: id,
            true_cra: 0.9,
            max_abs_err: 0.0,
            gap_permille: gap,
            heads: vec![HeadCanary {
                layer: 0,
                head: 0,
                est_covered_mass: 0.95,
                true_cra: 0.95 - gap as f64 / 1000.0,
                gap_permille: gap,
                alpha_satisfied: alpha,
                fell_back,
            }],
        }
    }

    #[test]
    fn hard_trip_quarantines_and_probation_readmits() {
        let mut guard = QualityGuard::new(1, 1);
        assert_eq!(guard.quarantined_count(), 0);
        guard.absorb(&[head_obs(1, 0, false, false)]); // missed alpha
        assert_eq!(guard.quarantined_count(), 1);
        assert_eq!(guard.transitions().len(), 1);
        assert_eq!(guard.transitions()[0].action, "quarantine");
        // One clean probe is not enough (probation_clean = 2)...
        guard.absorb(&[head_obs(2, 0, true, true)]); // still dirty: resets
        guard.absorb(&[head_obs(3, 0, true, false)]);
        assert_eq!(guard.quarantined_count(), 1);
        // ...two consecutive clean probes re-admit.
        guard.absorb(&[head_obs(4, 0, true, false)]);
        assert_eq!(guard.quarantined_count(), 0);
        let last = guard.transitions().last().unwrap();
        assert_eq!(last.action, "readmit");
        assert_eq!(last.request_id, 4);
    }

    #[test]
    fn sustained_drift_trips_cusum_but_slack_absorbs_noise() {
        let mut guard = QualityGuard::new(1, 1);
        // Gaps at the slack level never accumulate.
        for id in 0..50 {
            guard.absorb(&[head_obs(id, guard.gap_slack_permille, true, false)]);
        }
        assert_eq!(guard.quarantined_count(), 0, "slack absorbs benign gaps");
        // Sustained optimism above slack accumulates and trips.
        let mut guard = QualityGuard::new(1, 1);
        let gap = guard.gap_slack_permille + 30;
        let mut trips = 0;
        for id in 0..10 {
            guard.absorb(&[head_obs(id, gap, true, false)]);
            if guard.quarantined_count() == 1 {
                trips = id + 1;
                break;
            }
        }
        assert!(trips >= 2 && trips <= 5, "CUSUM trips after a few readings, got {trips}");
        assert!(guard
            .transitions()
            .last()
            .unwrap()
            .reason
            .contains("CUSUM"));
    }

    #[test]
    fn absorb_is_order_deterministic() {
        let obs: Vec<CanaryObservation> = (0..20)
            .map(|id| head_obs(id, if id % 3 == 0 { 60 } else { 10 }, id % 7 != 0, false))
            .collect();
        let mut a = QualityGuard::new(1, 1);
        a.absorb(&obs);
        let mut b = QualityGuard::new(1, 1);
        for o in &obs {
            b.absorb(std::slice::from_ref(o));
        }
        assert_eq!(a.transitions(), b.transitions());
        assert_eq!(a.quarantine_mask(), b.quarantine_mask());
    }
}
