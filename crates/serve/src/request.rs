//! Request descriptions and the seeded mixed-workload generator.
//!
//! A [`Request`] is everything the scheduler knows at admission time:
//! what to run (prefill or decode, at what sequence length), when it
//! arrives on the virtual clock, its deadline, and two adversarial
//! annotations used by the chaos harness — a caller-cancellation time
//! and a transient-fault script (the first `fault_fails` attempts hit
//! an injected worker panic at `fault_site`, later attempts run clean).
//!
//! [`mixed_workload`] draws a reproducible batch from a seed: a blend
//! of sizes, deadline tightness tiers (from generous, which full
//! attention meets, down to brutal, which forces the bottom of the
//! degradation ladder *and* a mid-run deadline), cancellations, and
//! transient/permanent faults.

use sa_tensor::DeterministicRng;

/// What kind of work a request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Chunked prefill of `seq_len` tokens.
    Prefill,
    /// Prefill of `seq_len` tokens, then `new_tokens` decode steps.
    Decode,
}

sa_json::impl_json_enum!(RequestKind { Prefill, Decode });

/// One serving request on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique id; the outcome ledger is keyed and sorted by it.
    pub id: u64,
    /// Prefill-only or prefill-then-decode.
    pub kind: RequestKind,
    /// Prompt length in synthetic tokens (each stands for
    /// [`tokens_per_synthetic`](crate::ServeConfig::tokens_per_synthetic)
    /// real tokens in the admission memory model).
    pub seq_len: usize,
    /// Decode steps after prefill (0 for pure prefill).
    pub new_tokens: usize,
    /// Arrival time on the virtual clock, milliseconds.
    pub arrival_ms: u64,
    /// Deadline, virtual milliseconds after arrival.
    pub deadline_ms: u64,
    /// Caller cancels this many virtual ms after arrival (0 = never).
    pub cancel_after_ms: u64,
    /// First `fault_fails` execution attempts hit an injected worker
    /// panic (0 = healthy request).
    pub fault_fails: u64,
    /// Pool site of the injected fault (empty when `fault_fails == 0`).
    pub fault_site: String,
    /// Tenant the request bills against: the continuous scheduler's
    /// fairness quota (token bucket) is per-tenant. Single-tenant
    /// batches use 0.
    pub tenant: u64,
}

impl Request {
    /// A healthy prefill request with the given shape.
    pub fn prefill(id: u64, seq_len: usize, arrival_ms: u64, deadline_ms: u64) -> Self {
        Request {
            id,
            kind: RequestKind::Prefill,
            seq_len,
            new_tokens: 0,
            arrival_ms,
            deadline_ms,
            cancel_after_ms: 0,
            fault_fails: 0,
            fault_site: String::new(),
            tenant: 0,
        }
    }

    /// The virtual cost of this request at full attention, in
    /// milliseconds: quadratic in the prompt (attention-dominated
    /// prefill) plus a linear decode tail. The degradation ladder
    /// scales the prefill part by each rung's cost factor.
    pub fn base_service_ms(&self) -> u64 {
        let s = self.seq_len as u64;
        let prefill = (s * s / 64).max(1);
        let decode = self.new_tokens as u64 * (s / 16).max(1);
        prefill + decode
    }

    /// The prefill-only part of [`base_service_ms`](Self::base_service_ms)
    /// (the part a cheaper attention method shrinks).
    pub fn prefill_service_ms(&self) -> u64 {
        let s = self.seq_len as u64;
        (s * s / 64).max(1)
    }
}

/// The pool site the workload generator targets with transient faults:
/// the per-head fan-out inside every layer forward.
pub const FAULT_SITE: &str = "layer_heads";

/// Draws `n` requests reproducibly from `seed`.
///
/// The blend (all seeded, no wall-clock anywhere):
/// - ~1/4 decode requests (small prompts, 3–8 new tokens), the rest
///   chunked prefills from 48 to 512 synthetic tokens;
/// - deadline tiers: generous (full attention fits), medium (forces
///   SampleAttention), tight (forces the tight rung or the window),
///   brutal (nothing fits — mid-run deadline cancellation);
/// - ~12 % caller-cancelled mid-flight;
/// - ~20 % transient faults (1–2 failing attempts, then clean), a few
///   permanent ones (more failing attempts than the retry budget).
pub fn mixed_workload(seed: u64, n: usize) -> Vec<Request> {
    let mut rng = DeterministicRng::new(seed ^ 0x6d69_7865_645f_776c);
    let mut arrival = 0u64;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        arrival += rng.index(40) as u64;
        let decode = rng.chance(0.25);
        let (kind, seq_len, new_tokens) = if decode {
            let s = [32usize, 48, 64][rng.index(3)];
            (RequestKind::Decode, s, 3 + rng.index(6))
        } else {
            let s = [48usize, 64, 96, 128, 160, 224, 512][rng.index(7)];
            (RequestKind::Prefill, s, 0)
        };
        let mut req = Request {
            id,
            kind,
            seq_len,
            new_tokens,
            arrival_ms: arrival,
            deadline_ms: 0,
            cancel_after_ms: 0,
            fault_fails: 0,
            fault_site: String::new(),
            // Derived from the id, not the rng, so the rest of the draw
            // stream (and every seeded test pinned to it) is unchanged.
            tenant: id % 3,
        };
        let base = req.base_service_ms();
        let tier = rng.uniform();
        req.deadline_ms = if tier < 0.40 {
            2 * base + 50
        } else if tier < 0.65 {
            base / 3 + 20
        } else if tier < 0.85 {
            base / 8 + 10
        } else {
            base / 40 + 5
        };
        if rng.chance(0.12) {
            req.cancel_after_ms = (req.deadline_ms / 2).max(1);
        }
        if rng.chance(0.20) {
            req.fault_fails = if rng.chance(0.15) {
                8 // permanent: exceeds any sane retry budget
            } else {
                1 + rng.index(2) as u64
            };
            req.fault_site = FAULT_SITE.to_string();
        }
        out.push(req);
    }
    out
}

/// Draws an **open-loop** workload: arrival timestamps come from a
/// seeded [`ArrivalProcess`](sa_workloads::ArrivalProcess) (Poisson
/// with optional diurnal / flash-crowd rate shapes) instead of the
/// closed-loop trickle of [`mixed_workload`], and every request is
/// billed to one of `tenants` tenants for the continuous scheduler's
/// fairness quotas.
///
/// The per-request mix mirrors `mixed_workload` (prefills 48–512
/// synthetic tokens, ~1/4 decodes, deadline tiers from generous to
/// brutal) with slightly milder adversity (~8 % caller cancels, ~10 %
/// transient faults) so the SLO sweep measures mostly-healthy traffic
/// under load rather than fault handling.
pub fn open_loop_workload(
    seed: u64,
    process: &sa_workloads::ArrivalProcess,
    duration_ms: u64,
    tenants: u64,
) -> Vec<Request> {
    let arrivals = process.generate(duration_ms);
    let mut rng = DeterministicRng::new(seed ^ 0x6f70_656e_5f6c_6f6f);
    let tenants = tenants.max(1);
    let mut out = Vec::with_capacity(arrivals.len());
    for (id, &arrival_ms) in arrivals.iter().enumerate() {
        let decode = rng.chance(0.25);
        let (kind, seq_len, new_tokens) = if decode {
            let s = [32usize, 48, 64][rng.index(3)];
            (RequestKind::Decode, s, 3 + rng.index(6))
        } else {
            let s = [48usize, 64, 96, 128, 160, 224, 512][rng.index(7)];
            (RequestKind::Prefill, s, 0)
        };
        let mut req = Request {
            id: id as u64,
            kind,
            seq_len,
            new_tokens,
            arrival_ms,
            deadline_ms: 0,
            cancel_after_ms: 0,
            fault_fails: 0,
            fault_site: String::new(),
            tenant: rng.index(tenants as usize) as u64,
        };
        let base = req.base_service_ms();
        let tier = rng.uniform();
        req.deadline_ms = if tier < 0.45 {
            2 * base + 50
        } else if tier < 0.75 {
            base / 3 + 20
        } else if tier < 0.92 {
            base / 8 + 10
        } else {
            base / 40 + 5
        };
        if rng.chance(0.08) {
            req.cancel_after_ms = (req.deadline_ms / 2).max(1);
        }
        if rng.chance(0.10) {
            req.fault_fails = if rng.chance(0.10) {
                8 // permanent: exceeds any sane retry budget
            } else {
                1 + rng.index(2) as u64
            };
            req.fault_site = FAULT_SITE.to_string();
        }
        out.push(req);
    }
    out
}

/// Draws a **fault-storm** workload: the recovery harness's stress mix.
/// Compared to [`mixed_workload`], deadlines are uniformly generous (a
/// crashed request must still be *feasible* after recovery — a storm
/// over brutal deadlines only measures shedding) and faults are dense:
/// ~60 % of requests crash 1–3 attempts before succeeding. Prompts skew
/// long so each crash has real prefill progress worth preserving.
pub fn fault_storm_workload(seed: u64, n: usize) -> Vec<Request> {
    let mut rng = DeterministicRng::new(seed ^ 0x5f73_746f_726d_5f77);
    let mut arrival = 0u64;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        arrival += rng.index(60) as u64;
        let decode = rng.chance(0.3);
        let (kind, seq_len, new_tokens) = if decode {
            let s = [48usize, 64, 96][rng.index(3)];
            (RequestKind::Decode, s, 4 + rng.index(8))
        } else {
            let s = [96usize, 128, 160, 224, 320, 512][rng.index(6)];
            (RequestKind::Prefill, s, 0)
        };
        let mut req = Request {
            id,
            kind,
            seq_len,
            new_tokens,
            arrival_ms: arrival,
            deadline_ms: 0,
            cancel_after_ms: 0,
            fault_fails: 0,
            fault_site: String::new(),
            tenant: id % 3,
        };
        // Generous with headroom for backoff gaps between crashed
        // attempts: the storm's contract is zero *lost* requests.
        req.deadline_ms = 4 * req.base_service_ms() + 500;
        if rng.chance(0.60) {
            req.fault_fails = 1 + rng.index(3) as u64;
            req.fault_site = FAULT_SITE.to_string();
        }
        out.push(req);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_reproducible_and_mixed() {
        let a = mixed_workload(7, 64);
        let b = mixed_workload(7, 64);
        assert_eq!(a, b);
        let c = mixed_workload(8, 64);
        assert_ne!(a, c, "different seeds draw different workloads");

        assert!(a.iter().any(|r| r.kind == RequestKind::Decode));
        assert!(a.iter().any(|r| r.kind == RequestKind::Prefill));
        assert!(a.iter().any(|r| r.cancel_after_ms > 0));
        assert!(a.iter().any(|r| r.fault_fails > 0));
        assert!(a.iter().any(|r| r.fault_fails == 0));
        // Arrivals are sorted and ids unique.
        assert!(a.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(a.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn service_model_is_monotone_in_size() {
        let small = Request::prefill(0, 48, 0, 100);
        let big = Request::prefill(1, 512, 0, 100);
        assert!(big.base_service_ms() > small.base_service_ms());
        assert_eq!(small.prefill_service_ms(), small.base_service_ms());
        let mut d = small.clone();
        d.kind = RequestKind::Decode;
        d.new_tokens = 5;
        assert!(d.base_service_ms() > d.prefill_service_ms());
    }

    #[test]
    fn fault_storm_is_dense_and_feasible() {
        let a = fault_storm_workload(7, 32);
        assert_eq!(a, fault_storm_workload(7, 32));
        let faulted = a.iter().filter(|r| r.fault_fails > 0).count();
        assert!(faulted > a.len() / 3, "storm must be fault-dense: {faulted}/32");
        assert!(a.iter().any(|r| r.fault_fails == 0), "some healthy traffic");
        assert!(
            a.iter().all(|r| r.fault_fails <= 3),
            "storm faults are transient (retry budget must cover them)"
        );
        assert!(
            a.iter().all(|r| r.deadline_ms >= 4 * r.base_service_ms()),
            "storm deadlines leave room for recovery"
        );
        assert!(a.iter().all(|r| r.cancel_after_ms == 0));
    }

    #[test]
    fn open_loop_workload_spreads_tenants_and_follows_arrivals() {
        let process = sa_workloads::ArrivalProcess::constant(9, 4.0);
        let a = open_loop_workload(9, &process, 30_000, 3);
        let b = open_loop_workload(9, &process, 30_000, 3);
        assert_eq!(a, b, "open-loop workload must be reproducible");
        assert!(!a.is_empty());
        // Arrivals sorted, ids sequential, all tenants present.
        assert!(a.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(a.windows(2).all(|w| w[0].id + 1 == w[1].id));
        for t in 0..3 {
            assert!(
                a.iter().any(|r| r.tenant == t),
                "tenant {t} drew no requests"
            );
        }
        assert!(a.iter().all(|r| r.tenant < 3));
        assert!(a.iter().any(|r| r.kind == RequestKind::Decode));
        // Arrival times match the process draw exactly.
        let direct = process.generate(30_000);
        let times: Vec<u64> = a.iter().map(|r| r.arrival_ms).collect();
        assert_eq!(times, direct);
        // Zero tenants is clamped to one, not a modulo-by-zero.
        let single = open_loop_workload(9, &process, 5_000, 0);
        assert!(single.iter().all(|r| r.tenant == 0));
    }
}
