//! SLO accounting over an outcome ledger.
//!
//! Distills a [`Ledger`] into the serving-side numbers the paper's
//! evaluation cares about:
//!
//! - **TTFT** (time to first token): arrival → first output token, the
//!   latency a user perceives before streaming starts;
//! - **TPOT** (time per output token): the steady-state decode pace of
//!   served multi-token requests;
//! - **goodput**: requests served *within their deadline* per virtual
//!   second — throughput that counts only useful work, the metric the
//!   continuous scheduler must not lose against the one-shot baseline;
//! - **certified goodput**: the stricter quality-guardrail numerator —
//!   served within deadline *and* quality-certified (measured CRA α at
//!   ledger level; a rung that can certify α at plan level). A
//!   scheduler can inflate plain goodput by bottoming every request on
//!   the `window_only` rung; certified goodput is what the
//!   near-lossless contract actually pays for.
//!
//! The v2 schema adds per-tenant [`TenantQuality`] rows so the
//! quality-floored degradation plane is auditable: each tenant's
//! uncertified-rung token fraction is exactly the quantity its
//! [`TenantFloor`](crate::TenantFloor) bounds.
//!
//! Percentiles use the nearest-rank rule on the virtual-clock values,
//! so a summary is bit-deterministic whenever its ledger is.

use crate::ledger::{Ledger, Outcome};
use crate::Request;
use sa_core::DegradationRung;

/// Schema tag of the `results/slo_report.json` artifact.
pub const SLO_SCHEMA: &str = "sa.slo.v2";

/// Nearest-rank percentile summary of one latency population
/// (virtual milliseconds). All zeros when the population is empty.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Median (nearest rank).
    pub p50_ms: u64,
    /// 90th percentile.
    pub p90_ms: u64,
    /// 95th percentile.
    pub p95_ms: u64,
    /// 99th percentile.
    pub p99_ms: u64,
    /// Population maximum.
    pub max_ms: u64,
}

sa_json::impl_json_struct!(LatencyStats {
    count,
    p50_ms,
    p90_ms,
    p95_ms,
    p99_ms,
    max_ms
});

impl LatencyStats {
    /// Summarizes a sample population by nearest-rank percentiles.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencyStats {
                count: 0,
                p50_ms: 0,
                p90_ms: 0,
                p95_ms: 0,
                p99_ms: 0,
                max_ms: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pick = |p: u64| -> u64 {
            // Nearest-rank: ceil(p/100 * n), 1-indexed.
            let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
            sorted[rank.min(sorted.len()) - 1]
        };
        LatencyStats {
            count: sorted.len() as u64,
            p50_ms: pick(50),
            p90_ms: pick(90),
            p95_ms: pick(95),
            p99_ms: pick(99),
            max_ms: sorted[sorted.len() - 1],
        }
    }
}

/// One tenant's quality accounting: how much of its served work ran on
/// a rung that cannot certify the CRA α contract. The fraction is what
/// a [`TenantFloor`](crate::TenantFloor)'s `max_uncertified_permille`
/// bounds, so committed artifacts are directly checkable against the
/// configured floors.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQuality {
    /// Tenant id.
    pub tenant: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Served within deadline **and** quality-certified (measured α at
    /// ledger level, a certifiable rung at plan level).
    pub served_certified: u64,
    /// Synthetic tokens (prompt + generated) across served requests.
    pub served_tokens: u64,
    /// Served tokens that ran on an uncertifiable rung (`window_only`).
    pub uncertified_tokens: u64,
    /// `uncertified_tokens` as a permille share of `served_tokens`
    /// (0 when nothing was served).
    pub uncertified_permille: u64,
    /// Requests shed by the quality floor instead of being forced onto
    /// a forbidden rung.
    pub shed_quality_floor: u64,
}

sa_json::impl_json_struct!(TenantQuality {
    tenant,
    served,
    served_certified,
    served_tokens,
    uncertified_tokens,
    uncertified_permille,
    shed_quality_floor
});

/// One request's contribution to the per-tenant quality rows.
struct QualityContribution {
    tenant: u64,
    served: bool,
    certified: bool,
    uncertified_rung: bool,
    tokens: u64,
    shed_floor: bool,
}

/// Folds per-request contributions into sorted per-tenant rows.
fn tenant_rows(contribs: &[QualityContribution]) -> Vec<TenantQuality> {
    let mut tenants: Vec<u64> = contribs.iter().map(|c| c.tenant).collect();
    tenants.sort_unstable();
    tenants.dedup();
    tenants
        .into_iter()
        .map(|tenant| {
            let mut row = TenantQuality {
                tenant,
                served: 0,
                served_certified: 0,
                served_tokens: 0,
                uncertified_tokens: 0,
                uncertified_permille: 0,
                shed_quality_floor: 0,
            };
            for c in contribs.iter().filter(|c| c.tenant == tenant) {
                if c.served {
                    row.served += 1;
                    row.served_tokens += c.tokens;
                    if c.certified {
                        row.served_certified += 1;
                    }
                    if c.uncertified_rung {
                        row.uncertified_tokens += c.tokens;
                    }
                }
                if c.shed_floor {
                    row.shed_quality_floor += 1;
                }
            }
            if row.served_tokens > 0 {
                row.uncertified_permille = row.uncertified_tokens * 1000 / row.served_tokens;
            }
            row
        })
        .collect()
}

/// The SLO summary of one scheduler run over one request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSummary {
    /// Schema tag ([`SLO_SCHEMA`]).
    pub schema: String,
    /// Which scheduler produced the ledger (`oneshot` / `continuous`).
    pub scheduler: String,
    /// Requests submitted.
    pub requests: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Served **and** finished at or before the deadline — the goodput
    /// numerator.
    pub served_within_deadline: u64,
    /// Rejected at arrival (queue bound) or by the memory model.
    pub rejected: u64,
    /// Expired in queue or cancelled by the deadline mid-run.
    pub deadline_missed: u64,
    /// Caller cancellations.
    pub cancelled: u64,
    /// Permanent failures.
    pub failed: u64,
    /// Requests shed by a tenant quality floor (no permitted rung fit).
    pub shed_quality_floor: u64,
    /// Served within deadline **and** quality-certified — the certified
    /// goodput numerator (measured CRA α at ledger level; a rung with
    /// [`DegradationRung::can_certify_alpha`] at plan level).
    pub served_certified: u64,
    /// The accounting window: first arrival → the last deadline in the
    /// stream, ms. Fixed by the workload alone (never by outcomes), so
    /// two schedulers on the same trace always divide by the same span —
    /// a scheduler is never penalized for *completing* late-deadline
    /// work a baseline rejected, and every request served within its
    /// deadline finishes inside the window by construction.
    pub span_ms: u64,
    /// `served_within_deadline` per virtual second over `span_ms`.
    pub goodput_per_sec: f64,
    /// `served_certified` per virtual second over `span_ms`.
    pub certified_goodput_per_sec: f64,
    /// Time-to-first-token of every request that produced a token.
    pub ttft: LatencyStats,
    /// Time-per-output-token of served multi-token (decode) requests.
    pub tpot: LatencyStats,
    /// Per-tenant quality rows, sorted by tenant id.
    pub tenants: Vec<TenantQuality>,
}

sa_json::impl_json_struct!(SloSummary {
    schema,
    scheduler,
    requests,
    served,
    served_within_deadline,
    rejected,
    deadline_missed,
    cancelled,
    failed,
    shed_quality_floor,
    served_certified,
    span_ms,
    goodput_per_sec,
    certified_goodput_per_sec,
    ttft,
    tpot,
    tenants
});

/// The accounting window of a request stream: first arrival → last
/// deadline, in virtual ms (0 for an empty stream). See
/// [`SloSummary::span_ms`].
fn stream_span_ms(requests: &[Request]) -> u64 {
    let first_arrival = requests.iter().map(|r| r.arrival_ms).min();
    let last_deadline = requests
        .iter()
        .map(|r| r.arrival_ms.saturating_add(r.deadline_ms))
        .max();
    match (first_arrival, last_deadline) {
        (Some(a), Some(d)) => d.saturating_sub(a).max(1),
        _ => 0,
    }
}

/// Served-within-deadline per virtual second over the accounting window.
/// Total: `0.0` (never `NaN`/`inf`) for empty streams, so zero-decode
/// and zero-request workloads serialize to valid JSON artifacts.
fn goodput_per_sec(within: u64, span_ms: u64) -> f64 {
    if span_ms == 0 {
        return 0.0;
    }
    let rate = within as f64 * 1000.0 / span_ms as f64;
    if rate.is_finite() {
        rate
    } else {
        0.0
    }
}

impl SloSummary {
    /// Builds the summary from a ledger and the request stream it came
    /// from (needed for the per-request deadlines, which the ledger does
    /// not carry).
    pub fn from_ledger(scheduler: &str, ledger: &Ledger, requests: &[Request]) -> Self {
        let deadline_of = |id: u64| -> u64 {
            requests
                .iter()
                .find(|r| r.id == id)
                .map_or(u64::MAX, |r| r.arrival_ms + r.deadline_ms)
        };
        let mut served = 0u64;
        let mut within = 0u64;
        let mut rejected = 0u64;
        let mut deadline_missed = 0u64;
        let mut cancelled = 0u64;
        let mut failed = 0u64;
        let mut shed_floor = 0u64;
        let mut certified = 0u64;
        let mut ttft_samples = Vec::new();
        let mut tpot_samples = Vec::new();
        let mut contribs = Vec::new();
        for rec in &ledger.records {
            let is_served = rec.outcome == Outcome::Served;
            let in_deadline = is_served && rec.finish_ms <= deadline_of(rec.id);
            match rec.outcome {
                Outcome::Served => {
                    served += 1;
                    if in_deadline {
                        within += 1;
                        if rec.alpha_satisfied {
                            certified += 1;
                        }
                    }
                }
                Outcome::RejectedOverloaded | Outcome::RejectedBudget => rejected += 1,
                Outcome::ExpiredInQueue | Outcome::DeadlineExceeded => deadline_missed += 1,
                Outcome::Cancelled => cancelled += 1,
                Outcome::Failed => failed += 1,
                Outcome::ShedQualityFloor => shed_floor += 1,
            }
            contribs.push(QualityContribution {
                tenant: rec.tenant,
                served: is_served,
                certified: in_deadline && rec.alpha_satisfied,
                uncertified_rung: rec.rung == DegradationRung::WindowOnly.as_str(),
                tokens: rec.seq_len + rec.new_tokens,
                shed_floor: rec.outcome == Outcome::ShedQualityFloor,
            });
            if rec.ttft_ms > 0 {
                ttft_samples.push(rec.ttft_ms);
                if rec.outcome == Outcome::Served && rec.new_tokens > 1 {
                    let decode_span = rec.finish_ms.saturating_sub(rec.arrival_ms + rec.ttft_ms);
                    tpot_samples.push(decode_span / (rec.new_tokens - 1));
                }
            }
        }
        let span_ms = stream_span_ms(requests);
        SloSummary {
            schema: SLO_SCHEMA.to_string(),
            scheduler: scheduler.to_string(),
            requests: ledger.records.len() as u64,
            served,
            served_within_deadline: within,
            rejected,
            deadline_missed,
            cancelled,
            failed,
            shed_quality_floor: shed_floor,
            served_certified: certified,
            span_ms,
            goodput_per_sec: goodput_per_sec(within, span_ms),
            certified_goodput_per_sec: goodput_per_sec(certified, span_ms),
            ttft: LatencyStats::from_samples(&ttft_samples),
            tpot: LatencyStats::from_samples(&tpot_samples),
            tenants: tenant_rows(&contribs),
        }
    }

    /// Builds the summary directly from continuous plans, without
    /// executing any model work — the planner already fixes every
    /// outcome and timing on the virtual clock, so plan-level SLO
    /// numbers equal ledger-level ones. This is what the `slo_sweep`
    /// bench uses to sweep many arrival rates cheaply.
    pub fn from_continuous_plans(
        scheduler: &str,
        plans: &[crate::ContinuousPlan],
        requests: &[Request],
    ) -> Self {
        use crate::sim::Planned;
        let mut served = 0u64;
        let mut within = 0u64;
        let mut rejected = 0u64;
        let mut deadline_missed = 0u64;
        let mut cancelled = 0u64;
        let mut failed = 0u64;
        let mut shed_floor = 0u64;
        let mut certified = 0u64;
        let mut ttft_samples = Vec::new();
        let mut tpot_samples = Vec::new();
        let mut contribs = Vec::new();
        for (cp, req) in plans.iter().zip(requests) {
            let is_served = matches!(cp.plan.planned, Planned::Serve { .. });
            let in_deadline =
                is_served && cp.plan.finish_ms <= req.arrival_ms + req.deadline_ms;
            match cp.plan.planned {
                Planned::Serve { .. } => {
                    served += 1;
                    if in_deadline {
                        within += 1;
                        if cp.plan.rung.can_certify_alpha() {
                            certified += 1;
                        }
                    }
                }
                Planned::RejectOverloaded { .. } | Planned::RejectBudget { .. } => rejected += 1,
                Planned::ExpireInQueue | Planned::CancelDeadline => deadline_missed += 1,
                Planned::CancelCaller => cancelled += 1,
                Planned::FailPermanent { .. } => failed += 1,
                Planned::ShedQualityFloor => shed_floor += 1,
            }
            contribs.push(QualityContribution {
                tenant: req.tenant,
                served: is_served,
                certified: in_deadline && cp.plan.rung.can_certify_alpha(),
                uncertified_rung: is_served && !cp.plan.rung.can_certify_alpha(),
                tokens: req.seq_len as u64 + req.new_tokens as u64,
                shed_floor: matches!(cp.plan.planned, Planned::ShedQualityFloor),
            });
            if cp.first_token_ms > 0 {
                let ttft = cp.first_token_ms.saturating_sub(req.arrival_ms);
                ttft_samples.push(ttft);
                if matches!(cp.plan.planned, Planned::Serve { .. }) && cp.decode_steps > 1 {
                    let decode_span = cp.plan.finish_ms.saturating_sub(cp.first_token_ms);
                    tpot_samples.push(decode_span / (cp.decode_steps - 1));
                }
            }
        }
        let span_ms = stream_span_ms(requests);
        SloSummary {
            schema: SLO_SCHEMA.to_string(),
            scheduler: scheduler.to_string(),
            requests: plans.len() as u64,
            served,
            served_within_deadline: within,
            rejected,
            deadline_missed,
            cancelled,
            failed,
            shed_quality_floor: shed_floor,
            served_certified: certified,
            span_ms,
            goodput_per_sec: goodput_per_sec(within, span_ms),
            certified_goodput_per_sec: goodput_per_sec(certified, span_ms),
            ttft: LatencyStats::from_samples(&ttft_samples),
            tpot: LatencyStats::from_samples(&tpot_samples),
            tenants: tenant_rows(&contribs),
        }
    }

    /// Builds the one-shot counterpart from [`Plan`](crate::Plan)s, with
    /// the one-shot analytic TTFT (final prefill chunk lands one decode
    /// tail before the finish).
    pub fn from_oneshot_plans(
        scheduler: &str,
        plans: &[crate::Plan],
        requests: &[Request],
    ) -> Self {
        use crate::sim::Planned;
        let mut served = 0u64;
        let mut within = 0u64;
        let mut rejected = 0u64;
        let mut deadline_missed = 0u64;
        let mut cancelled = 0u64;
        let mut failed = 0u64;
        let mut shed_floor = 0u64;
        let mut certified = 0u64;
        let mut ttft_samples = Vec::new();
        let mut tpot_samples = Vec::new();
        let mut contribs = Vec::new();
        for (plan, req) in plans.iter().zip(requests) {
            let is_served = matches!(plan.planned, Planned::Serve { .. });
            let in_deadline = is_served && plan.finish_ms <= req.arrival_ms + req.deadline_ms;
            match plan.planned {
                Planned::Serve { .. } => {
                    served += 1;
                    if in_deadline {
                        within += 1;
                        if plan.rung.can_certify_alpha() {
                            certified += 1;
                        }
                    }
                    let per_token = (req.seq_len as u64 / 16).max(1);
                    let tail = (req.new_tokens as u64).saturating_sub(1) * per_token;
                    let ttft = plan
                        .finish_ms
                        .saturating_sub(tail)
                        .saturating_sub(req.arrival_ms)
                        .max(1);
                    ttft_samples.push(ttft);
                    if req.new_tokens > 1 {
                        tpot_samples.push(per_token);
                    }
                }
                Planned::RejectOverloaded { .. } | Planned::RejectBudget { .. } => rejected += 1,
                Planned::ExpireInQueue | Planned::CancelDeadline => deadline_missed += 1,
                Planned::CancelCaller => cancelled += 1,
                Planned::FailPermanent { .. } => failed += 1,
                Planned::ShedQualityFloor => shed_floor += 1,
            }
            contribs.push(QualityContribution {
                tenant: req.tenant,
                served: is_served,
                certified: in_deadline && plan.rung.can_certify_alpha(),
                uncertified_rung: is_served && !plan.rung.can_certify_alpha(),
                tokens: req.seq_len as u64 + req.new_tokens as u64,
                shed_floor: matches!(plan.planned, Planned::ShedQualityFloor),
            });
        }
        let span_ms = stream_span_ms(requests);
        SloSummary {
            schema: SLO_SCHEMA.to_string(),
            scheduler: scheduler.to_string(),
            requests: plans.len() as u64,
            served,
            served_within_deadline: within,
            rejected,
            deadline_missed,
            cancelled,
            failed,
            shed_quality_floor: shed_floor,
            served_certified: certified,
            span_ms,
            goodput_per_sec: goodput_per_sec(within, span_ms),
            certified_goodput_per_sec: goodput_per_sec(certified, span_ms),
            ttft: LatencyStats::from_samples(&ttft_samples),
            tpot: LatencyStats::from_samples(&tpot_samples),
            tenants: tenant_rows(&contribs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_json::{FromJson, ToJson};

    #[test]
    fn nearest_rank_percentiles() {
        let s = LatencyStats::from_samples(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.count, 10);
        assert_eq!(s.p50_ms, 50);
        assert_eq!(s.p90_ms, 90);
        assert_eq!(s.p95_ms, 100, "ceil(0.95*10)=10th value");
        assert_eq!(s.p99_ms, 100);
        assert_eq!(s.max_ms, 100);
        let single = LatencyStats::from_samples(&[7]);
        assert_eq!(single.p50_ms, 7);
        assert_eq!(single.p99_ms, 7);
        let empty = LatencyStats::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99_ms, 0);
    }

    #[test]
    fn summary_counts_and_goodput_from_plans() {
        use crate::{plan_continuous, Request, ServeConfig};
        let cfg = ServeConfig::default();
        let reqs: Vec<Request> = (0..4)
            .map(|id| Request::prefill(id, 64, id * 100, 1_000_000))
            .collect();
        let plans = plan_continuous(&cfg, &reqs);
        let s = SloSummary::from_continuous_plans("continuous", &plans, &reqs);
        assert_eq!(s.requests, 4);
        assert_eq!(s.served, 4);
        assert_eq!(s.served_within_deadline, 4);
        assert!(s.goodput_per_sec > 0.0);
        assert_eq!(s.ttft.count, 4);
        assert!(s.span_ms >= 300, "span covers the arrival spread");
    }

    #[test]
    fn degenerate_workloads_never_produce_nan() {
        use crate::{plan_continuous, Ledger, Request, ServeConfig, LEDGER_SCHEMA};
        let cfg = ServeConfig::default();

        // Empty stream: zero requests, zero span — every rate is 0.0.
        let empty_reqs: Vec<Request> = Vec::new();
        let empty_ledger = Ledger {
            schema: LEDGER_SCHEMA.to_string(),
            seed: 0,
            records: Vec::new(),
        };
        let plans = plan_continuous(&cfg, &empty_reqs);
        for s in [
            SloSummary::from_ledger("continuous", &empty_ledger, &empty_reqs),
            SloSummary::from_continuous_plans("continuous", &plans, &empty_reqs),
            SloSummary::from_oneshot_plans("oneshot", &[], &empty_reqs),
        ] {
            assert_eq!(s.requests, 0);
            assert_eq!(s.span_ms, 0);
            assert!(s.goodput_per_sec.is_finite());
            assert_eq!(s.goodput_per_sec, 0.0);
            assert_eq!(s.tpot.count, 0);
            let text = sa_json::to_string(&s.to_json());
            assert!(
                !text.contains("NaN") && !text.contains("inf"),
                "artifact must stay valid JSON: {text}"
            );
        }

        // Single pure-prefill request and a zero-decode stream: TTFT
        // exists, but no request qualifies for TPOT — the population is
        // empty, not a division by zero.
        for n in [1usize, 5] {
            let reqs: Vec<Request> = (0..n as u64)
                .map(|id| Request::prefill(id, 64, id * 50, 1_000_000))
                .collect();
            let plans = plan_continuous(&cfg, &reqs);
            let s = SloSummary::from_continuous_plans("continuous", &plans, &reqs);
            assert_eq!(s.served, n as u64);
            assert!(s.goodput_per_sec.is_finite() && s.goodput_per_sec > 0.0);
            assert_eq!(s.tpot.count, 0, "zero-decode workloads have no TPOT");
            assert!(s.ttft.count > 0);
            let text = sa_json::to_string(&s.to_json());
            assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        }

        // Degenerate zero-duration window: a single request whose
        // deadline is 0 still yields a >= 1ms span by construction.
        let reqs = vec![Request::prefill(0, 64, 0, 0)];
        let plans = plan_continuous(&cfg, &reqs);
        let s = SloSummary::from_continuous_plans("continuous", &plans, &reqs);
        assert_eq!(s.span_ms, 1);
        assert!(s.goodput_per_sec.is_finite());
    }

    #[test]
    fn summary_round_trips_through_json() {
        use crate::{plan_continuous, Request, ServeConfig};
        let cfg = ServeConfig::default();
        let reqs = vec![Request::prefill(0, 64, 0, 1_000_000)];
        let plans = plan_continuous(&cfg, &reqs);
        let s = SloSummary::from_continuous_plans("continuous", &plans, &reqs);
        let text = sa_json::to_string(&s.to_json());
        let back =
            SloSummary::from_json(&sa_json::from_str::<sa_json::Json>(&text).unwrap()).unwrap();
        assert_eq!(back.schema, SLO_SCHEMA);
        assert_eq!(back.requests, s.requests);
        assert_eq!(back.ttft, s.ttft);
    }

    #[test]
    fn plan_level_summary_matches_ledger_level_summary() {
        use crate::{open_loop_workload, Scheduler, ServeConfig};
        use sa_workloads::ArrivalProcess;
        let cfg = ServeConfig::default();
        let process = ArrivalProcess::constant(3, 2.0);
        let reqs = open_loop_workload(3, &process, 8_000, 2);
        let sched = Scheduler::new(cfg.clone()).unwrap();
        let plans = sched.plan_continuous(&reqs);
        let from_plans = SloSummary::from_continuous_plans("continuous", &plans, &reqs);
        let ledger = sched.run_continuous(&reqs).unwrap();
        let from_ledger = SloSummary::from_ledger("continuous", &ledger, &reqs);
        assert_eq!(from_plans.served, from_ledger.served);
        assert_eq!(
            from_plans.served_within_deadline,
            from_ledger.served_within_deadline
        );
        assert_eq!(from_plans.ttft, from_ledger.ttft);
        assert_eq!(from_plans.span_ms, from_ledger.span_ms);
    }
}
