//! Byte-accurate memory ledger with pressure watermarks.
//!
//! Admission control in [`crate::sim`] and [`crate::continuous`] works
//! from *projected* footprints (`sa_perf` scaling of the synthetic
//! model). This module adds the runtime side: a [`MemoryLedger`] tracks
//! bytes actually reserved — KV caches of in-flight sessions, staged
//! checkpoint restores — against the configured budget, and classifies
//! occupancy into [`PressureLevel`]s that drive the continuous
//! scheduler's governor ladder (defer admissions → evict low-mass KV →
//! force lower degradation rungs → shed).
//!
//! Reservations consult the fault harness
//! ([`sa_tensor::fault::should_fail_alloc`]) so a fault plan can fail
//! individual allocations deterministically; the serving layer counts
//! those in `serve.pressure.alloc_faults` and falls back instead of
//! crashing.
//!
//! The ledger is thread-safe (a single atomic) but deliberately carries
//! no ordering semantics beyond the counter itself: all *decisions*
//! that depend on occupancy are made on the serial virtual-time planner
//! thread, so ledgers stay byte-identical at every `SA_THREADS`.

use std::sync::atomic::{AtomicU64, Ordering};

use sa_tensor::{fault, SaError};

use crate::ServeConfig;

/// Occupancy classification against the watermarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Below the low watermark: admit freely.
    Normal,
    /// Between the watermarks: defer non-urgent admissions and start
    /// evicting low-mass KV from in-flight sessions.
    Elevated,
    /// At or above the high watermark: force lower degradation rungs;
    /// shed what still cannot fit.
    Critical,
}

impl PressureLevel {
    /// Stable lowercase name for metrics and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::Elevated => "elevated",
            PressureLevel::Critical => "critical",
        }
    }
}

/// Byte-accurate reservation ledger against a fixed budget.
#[derive(Debug)]
pub struct MemoryLedger {
    budget: u64,
    /// Bytes at which pressure becomes [`PressureLevel::Elevated`].
    low_mark: u64,
    /// Bytes at which pressure becomes [`PressureLevel::Critical`].
    high_mark: u64,
    in_use: AtomicU64,
}

impl MemoryLedger {
    /// A ledger over `budget` bytes with watermarks at `low_permille` /
    /// `high_permille` of the budget (clamped so low ≤ high ≤ 1000).
    pub fn new(budget: u64, low_permille: u64, high_permille: u64) -> Self {
        let high = high_permille.min(1000);
        let low = low_permille.min(high);
        MemoryLedger {
            budget,
            low_mark: budget / 1000 * low + budget % 1000 * low / 1000,
            high_mark: budget / 1000 * high + budget % 1000 * high / 1000,
            in_use: AtomicU64::new(0),
        }
    }

    /// A ledger from the scheduler's configured budget and watermarks.
    pub fn from_config(cfg: &ServeConfig) -> Self {
        MemoryLedger::new(cfg.mem_budget_bytes, cfg.mem_low_permille, cfg.mem_high_permille)
    }

    /// The fixed budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn free(&self) -> u64 {
        self.budget.saturating_sub(self.in_use())
    }

    /// Classifies an arbitrary occupancy against the watermarks — the
    /// serial planner calls this with its own virtual-time projection.
    pub fn level_of(&self, in_use: u64) -> PressureLevel {
        if in_use >= self.high_mark {
            PressureLevel::Critical
        } else if in_use >= self.low_mark {
            PressureLevel::Elevated
        } else {
            PressureLevel::Normal
        }
    }

    /// Current pressure from the ledger's own counter.
    pub fn level(&self) -> PressureLevel {
        self.level_of(self.in_use())
    }

    /// Reserves `bytes`, failing when the budget would be exceeded or
    /// when the installed fault plan fails this allocation (`salt` keys
    /// the deterministic draw; the serving layer passes a
    /// request/attempt-derived value).
    ///
    /// # Errors
    ///
    /// [`SaError::BudgetExceeded`] — the caller distinguishes a real
    /// over-budget from an injected allocation failure by consulting
    /// [`fault::should_fail_alloc`] with the same salt, if it needs to.
    pub fn reserve(&self, bytes: u64, salt: u64) -> Result<(), SaError> {
        if fault::should_fail_alloc(salt) {
            return Err(SaError::BudgetExceeded {
                required_bytes: bytes,
                budget_bytes: self.budget,
            });
        }
        // CAS loop: concurrent reservations must not overshoot the
        // budget between load and store.
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(bytes);
            if next > self.budget {
                return Err(SaError::BudgetExceeded {
                    required_bytes: bytes,
                    budget_bytes: self.budget,
                });
            }
            match self.in_use.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(observed) => current = observed,
            }
        }
    }

    /// Releases a prior reservation. Saturating: releasing more than is
    /// reserved clamps to zero rather than wrapping (double releases are
    /// a caller bug, but must not corrupt the ledger).
    pub fn release(&self, bytes: u64) {
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.in_use.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::fault::{install_local, FaultPlan};

    #[test]
    fn reserve_release_roundtrip() {
        let ledger = MemoryLedger::new(1000, 600, 850);
        assert_eq!(ledger.level(), PressureLevel::Normal);
        ledger.reserve(500, 0).expect("fits");
        assert_eq!(ledger.in_use(), 500);
        assert_eq!(ledger.free(), 500);
        ledger.reserve(200, 1).expect("fits");
        assert_eq!(ledger.level(), PressureLevel::Elevated);
        ledger.reserve(200, 2).expect("fits");
        assert_eq!(ledger.level(), PressureLevel::Critical);
        let err = ledger.reserve(200, 3).expect_err("over budget");
        assert!(matches!(
            err,
            SaError::BudgetExceeded { required_bytes: 200, budget_bytes: 1000 }
        ));
        ledger.release(900);
        assert_eq!(ledger.in_use(), 0);
        assert_eq!(ledger.level(), PressureLevel::Normal);
        // Saturating release never wraps.
        ledger.release(10_000);
        assert_eq!(ledger.in_use(), 0);
    }

    #[test]
    fn watermarks_clamp_and_order() {
        // high > 1000‰ clamps to the budget; low > high clamps to high.
        let ledger = MemoryLedger::new(100, 2000, 1500);
        assert_eq!(ledger.level_of(99), PressureLevel::Normal);
        assert_eq!(ledger.level_of(100), PressureLevel::Critical);
        let zero = MemoryLedger::new(0, 600, 850);
        assert_eq!(zero.level(), PressureLevel::Critical);
    }

    #[test]
    fn injected_alloc_failure_is_typed_and_reserves_nothing() {
        let ledger = MemoryLedger::new(1000, 600, 850);
        let _g = install_local(FaultPlan::new(5).alloc_failures(1));
        let err = ledger.reserve(10, 7).expect_err("fault plan fails every alloc");
        assert!(matches!(err, SaError::BudgetExceeded { .. }));
        assert_eq!(ledger.in_use(), 0, "failed reservation must not leak");
    }

    #[test]
    fn pressure_levels_order_and_name() {
        assert!(PressureLevel::Normal < PressureLevel::Elevated);
        assert!(PressureLevel::Elevated < PressureLevel::Critical);
        assert_eq!(PressureLevel::Critical.as_str(), "critical");
    }
}
