//! Continuous batching over an open-loop arrival stream.
//!
//! The one-shot planner ([`sim::plan_batch`]) holds an execution slot
//! for a request's **whole** service time — a 512-token prefill
//! monopolizes a slot for thousands of virtual milliseconds while
//! short requests queue behind it, and decode steps of in-flight
//! sessions cannot overlap newly arriving prefills at all. This module
//! replaces that with the TensorRT-LLM-style continuous-batching rule:
//! the engine schedules **micro-tasks** — one prefill chunk or one
//! decode step at a time — so every iteration interleaves prefill
//! chunks of newly admitted requests with decode steps of in-flight
//! sessions on the same worker pool.
//!
//! Like the one-shot planner, everything here runs on a deterministic
//! virtual clock **before** any model work: the continuous timeline is
//! a serial discrete-event simulation, so the resulting ledger stays
//! bit-identical at every `SA_THREADS` setting (the chaos soak asserts
//! this on the continuous timeline too). The parallel execution phase
//! afterwards only realizes the planned work and fills in measured CRA
//! α flags.
//!
//! ## Scheduling rules
//!
//! - **Admission**: arrivals join a bounded pending queue
//!   ([`max_pending`](crate::ServeConfig::max_pending); overflow is
//!   [`Overloaded`](sa_tensor::SaError::Overloaded)); the queue head is
//!   admitted as soon as its projected memory fits the budget —
//!   memory is *backpressure* here, not a hard rejection, except for a
//!   request that could never fit alone
//!   ([`BudgetExceeded`](sa_tensor::SaError::BudgetExceeded)).
//! - **Interleaving**: a free worker serves, in priority order, (1) a
//!   ready decode step — decode-first keeps time-per-output-token flat
//!   while prefills stream in — then (2) a prefill chunk, rotating over
//!   tenants and picking shortest-remaining-work-first within a tenant
//!   (short requests preempt long prefills at chunk boundaries;
//!   homogeneous streams run to completion, so overload does not
//!   round-robin-thrash every deadline at once).
//! - **Fairness**: each tenant holds a token bucket
//!   ([`tenant_rate_tokens_per_sec`](crate::ServeConfig::tenant_rate_tokens_per_sec),
//!   [`tenant_burst_tokens`](crate::ServeConfig::tenant_burst_tokens));
//!   a prefill chunk debits `chunk_size` synthetic tokens and a decode
//!   step debits one, so a flooding tenant throttles to its quota while
//!   others keep their share of the pool.
//! - **Deadlines & cancels** are honoured at micro-task boundaries —
//!   the same one-chunk cooperative-cancellation granularity the real
//!   execution phase provides via `CancelToken`.
//! - **Faults** follow the one-shot model: the first `fault_fails`
//!   attempts burn an eighth of the service time each, separated by
//!   seeded-jitter exponential backoff ([`sim::backoff_ms`]).
//! - **Crash recovery** ([`recovery_enabled`](crate::ServeConfig::recovery_enabled)):
//!   each crashed attempt leaves a chunk-boundary checkpoint behind
//!   ([`planned_checkpoint_chunks`]), so the attempt after it resumes
//!   with a prefill head start instead of re-running from scratch —
//!   bounded recompute of at most the one in-flight chunk per crash.
//!   The plan tallies `recovered_attempts` and `recomputed_tokens`;
//!   with recovery off the timeline is exactly the retry-from-scratch
//!   model above (the `recovery_bench` baseline).
//! - **Memory-pressure governor**: watermark-classified occupancy
//!   ([`MemoryLedger::level_of`]) drives a ladder of actions — defer
//!   non-urgent admissions (`serve.pressure.deferrals`), evict the
//!   low-mass KV share of in-flight decode sessions
//!   (`serve.pressure.evictions`), force newly dispatched work onto
//!   lower degradation rungs (`serve.pressure.forced_rungs`), and shed
//!   urgent requests that still cannot be placed with a typed
//!   [`BudgetExceeded`](sa_tensor::SaError::BudgetExceeded)
//!   (`serve.pressure.sheds`). Every decision reads the serial
//!   planner's own virtual occupancy, never the runtime ledger, so
//!   plans stay bit-identical at every `SA_THREADS`.
//! - **Quality floors** ([`ServeConfig::quality_floors`]): a tenant's
//!   floor caps how far the ladder walk (including the governor's
//!   pressure-halved budgets) may degrade its requests and bounds its
//!   uncertified-rung token share. Work that cannot be placed on a
//!   permitted rung sheds with [`Planned::ShedQualityFloor`] — the
//!   planner refuses loudly instead of quietly serving below contract.
//!
//! The degradation-ladder walk ([`sim::choose_rung`]), the memory model
//! ([`sim::request_bytes`]), and the per-rung cost model
//! ([`sim::service_ms`]) are shared with the one-shot planner, so the
//! two schedulers are comparable at the same trace and budget — the
//! `slo_sweep` bench sweeps arrival rate and reports both.

use crate::events::{
    EventKind, EventLog, FlightRecorder, PlannerDecision, FLIGHT_RECORDER_CAPACITY,
};
use crate::memory::{MemoryLedger, PressureLevel};
use crate::sim::{self, Plan, Planned};
use crate::{Request, ServeConfig};
use sa_core::DegradationRung;
use sa_tensor::splitmix64;
use sa_trace::metrics;
use std::collections::VecDeque;

/// One request's schedule on the continuous timeline: the familiar
/// [`Plan`] plus first-token timing and micro-task tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousPlan {
    /// Outcome, rung, start/finish, queue wait, retries, backoff.
    pub plan: Plan,
    /// Tenant the request billed against.
    pub tenant: u64,
    /// Virtual time the first output token completed (prefill-only:
    /// the final prefill chunk; decode: the first decode step). Zero
    /// when no token was produced.
    pub first_token_ms: u64,
    /// Prefill chunks completed on the virtual timeline.
    pub prefill_chunks: u64,
    /// Decode steps completed on the virtual timeline.
    pub decode_steps: u64,
    /// Attempts that resumed from a non-empty chunk-boundary checkpoint
    /// instead of re-running prefill from scratch. Zero when recovery
    /// is disabled or the request never crashed.
    pub recovered_attempts: u64,
    /// Prefill tokens recomputed because of crashes: with recovery on,
    /// at most the one in-flight chunk per crash (the part no
    /// chunk-boundary checkpoint can cover); with recovery off,
    /// everything the crashed attempt had already completed.
    pub recomputed_tokens: u64,
}

/// Chunks of prefill progress the `attempt`-th crashed attempt of
/// request `id` completed (and checkpointed) before crashing —
/// deterministic in `(cfg.seed, id, attempt)`, between one chunk and an
/// eighth of the prefill: crashes land early in an attempt far more
/// often than late, and a single attempt that survived most of its
/// prefill would usually have survived all of it.
pub(crate) fn checkpoint_advance(cfg: &ServeConfig, id: u64, attempt: u64, n_chunks: u64) -> u64 {
    let cap = (n_chunks / 8).max(1);
    let mut state = cfg.seed
        ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    1 + splitmix64(&mut state) % cap
}

/// Cumulative chunk-boundary checkpoint position after the first
/// `fails` crashed attempts of request `id`: each crash extends the
/// checkpoint by its [`checkpoint_advance`], clamped so a checkpoint
/// never covers the whole prefill (the final chunk always runs on the
/// attempt that completes). The execution phase replays the same draws,
/// so restored sessions resume from exactly the chunk the planner
/// credited.
pub(crate) fn planned_checkpoint_chunks(
    cfg: &ServeConfig,
    id: u64,
    fails: u64,
    n_chunks: u64,
) -> u64 {
    let mut h = 0u64;
    for attempt in 0..fails {
        h = (h + checkpoint_advance(cfg, id, attempt, n_chunks)).min(n_chunks.saturating_sub(1));
    }
    h
}

/// Per-tenant fairness quota: a token bucket in milli-tokens so the
/// refill arithmetic stays exact on the integer virtual clock.
#[derive(Debug, Clone)]
struct TokenBucket {
    level_milli: u64,
    capacity_milli: u64,
    rate_milli_per_ms: u64,
    last_refill_ms: u64,
}

impl TokenBucket {
    fn new(cfg: &ServeConfig) -> Self {
        let capacity_milli = cfg.tenant_burst_tokens.saturating_mul(1000).max(1);
        TokenBucket {
            level_milli: capacity_milli,
            capacity_milli,
            // tokens/second == milli-tokens/millisecond, conveniently.
            // Clamped ≥ 1 so a bucket always refills eventually (a zero
            // rate would starve its tenant forever).
            rate_milli_per_ms: cfg.tenant_rate_tokens_per_sec.max(1),
            last_refill_ms: 0,
        }
    }

    fn refill_to(&mut self, now_ms: u64) {
        if now_ms > self.last_refill_ms {
            let gained = (now_ms - self.last_refill_ms).saturating_mul(self.rate_milli_per_ms);
            self.level_milli = self.level_milli.saturating_add(gained).min(self.capacity_milli);
            self.last_refill_ms = now_ms;
        }
    }

    fn try_take(&mut self, now_ms: u64, cost_milli: u64) -> bool {
        self.refill_to(now_ms);
        if self.level_milli >= cost_milli {
            self.level_milli -= cost_milli;
            true
        } else {
            false
        }
    }

    /// Earliest virtual time the bucket could cover `cost_milli`,
    /// assuming nobody else drains it first (an optimistic bound — the
    /// event loop re-checks on wake-up).
    fn ready_time(&self, now_ms: u64, cost_milli: u64) -> u64 {
        let level = self
            .level_milli
            .saturating_add(now_ms.saturating_sub(self.last_refill_ms) * self.rate_milli_per_ms)
            .min(self.capacity_milli);
        if level >= cost_milli {
            return now_ms;
        }
        let deficit = cost_milli - level;
        now_ms.saturating_add(deficit.div_ceil(self.rate_milli_per_ms)).max(now_ms + 1)
    }
}

/// Where one request stands on the continuous timeline.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Waiting in the bounded pending queue for memory admission.
    Pending,
    /// Admitted (memory reserved) but no worker has picked it up yet;
    /// the degradation-ladder walk is deferred to first dispatch so the
    /// rung reflects the deadline budget actually left after queueing —
    /// exactly when the one-shot planner walks it.
    Admitted,
    /// Burning injected failed attempts (each costs an eighth of the
    /// service time, separated by backoff).
    FailAttempts { remaining: u64 },
    /// Streaming prefill chunks.
    Prefill,
    /// Streaming decode steps.
    Decode,
    /// Resolved; `finish` recorded.
    Done,
}

/// Mutable per-request simulation state.
struct RState {
    phase: Phase,
    /// Earliest time the next micro-task may start (task-serial per
    /// request: one worker at a time; also carries backoff gaps).
    next_ready: u64,
    /// Completion time of the last finished micro-task (admission time
    /// before any task ran).
    last_event: u64,
    /// First micro-task dispatch time.
    start: Option<u64>,
    rung: DegradationRung,
    skipped: Vec<(DegradationRung, String)>,
    /// Planned failing attempts (capped at the attempt budget).
    fails: u64,
    /// Fail attempts already burned (indexes the backoff schedule).
    fails_done: u64,
    backoff_total: u64,
    /// Per-chunk virtual cost, exact-sum distribution of the scaled
    /// prefill time: the first `chunk_rem` chunks cost `chunk_cost+1`.
    chunk_cost: u64,
    chunk_rem: u64,
    n_chunks: u64,
    chunks_done: u64,
    per_token: u64,
    steps_done: u64,
    first_token: Option<u64>,
    fail_ms: u64,
    permanent: bool,
    bytes: u64,
    /// Attempts that resumed from a non-empty checkpoint.
    recovered_attempts: u64,
    /// Prefill tokens recomputed across all crashes (see
    /// [`ContinuousPlan::recomputed_tokens`]).
    recomputed_tokens: u64,
    /// The governor already evicted this session's low-mass KV share;
    /// a session is evicted at most once.
    evicted: bool,
    terminal: Option<(Planned, u64)>,
}

impl RState {
    fn new() -> Self {
        RState {
            phase: Phase::Pending,
            next_ready: 0,
            last_event: 0,
            start: None,
            rung: DegradationRung::Full,
            skipped: Vec::new(),
            fails: 0,
            fails_done: 0,
            backoff_total: 0,
            chunk_cost: 0,
            chunk_rem: 0,
            n_chunks: 0,
            chunks_done: 0,
            per_token: 0,
            steps_done: 0,
            first_token: None,
            fail_ms: 0,
            permanent: false,
            bytes: 0,
            recovered_attempts: 0,
            recomputed_tokens: 0,
            evicted: false,
            terminal: None,
        }
    }

    fn resolve(&mut self, planned: Planned, finish: u64) {
        self.phase = Phase::Done;
        self.terminal = Some((planned, finish));
    }

    /// Cost of this request's next micro-task, and whether it debits
    /// the tenant bucket (milli-tokens).
    fn next_task(&self, cfg: &ServeConfig) -> (u64, u64) {
        match self.phase {
            Phase::FailAttempts { .. } => (self.fail_ms, 0),
            Phase::Prefill => {
                let cost = if self.chunks_done < self.chunk_rem {
                    self.chunk_cost + 1
                } else {
                    self.chunk_cost
                };
                (cost.max(1), (cfg.chunk_size.max(1) as u64) * 1000)
            }
            Phase::Decode => (self.per_token.max(1), 1000),
            Phase::Pending | Phase::Admitted | Phase::Done => (0, 0),
        }
    }
}

/// The deadline budget a request gets for its deferred ladder walk: its
/// remaining wall time scaled by the worker share it can expect under
/// the current backlog (`slots / contenders`). With free capacity the
/// request keeps its whole remaining deadline (full rung when it fits);
/// under backlog the budget shrinks and the walk lands on cheaper
/// rungs — the continuous analogue of the one-shot planner's late
/// starts, which eat the deadline in queue and force the same
/// degradation at `choose_rung` time. Degrading under load is what lets
/// the scheduler trade per-request fidelity for deadline goodput
/// instead of serving a few full-rung requests while the rest expire.
fn dispatch_budget_ms(remaining_ms: u64, slots: usize, contenders: usize) -> u64 {
    let share = contenders.max(slots).max(1) as u128;
    ((remaining_ms as u128 * slots.max(1) as u128) / share) as u64
}

/// Minimal virtual compute left on a request's schedule, excluding
/// backoff gaps. Excluding them makes this a strict under-estimate, so
/// feasibility shedding on it only ever abandons requests that provably
/// cannot finish by their deadline — never one that still had a chance.
/// Also the shortest-remaining-first dispatch key. For a request whose
/// ladder walk has not run yet, `budget_ms` picks the rung to project:
/// the shed check passes 0 (bottom rung — the true minimum), dispatch
/// ordering passes the load-scaled budget the walk would actually get.
fn est_remaining_ms(cfg: &ServeConfig, req: &Request, s: &RState, budget_ms: u64) -> u64 {
    match s.phase {
        Phase::Pending | Phase::Admitted => {
            // The ladder walk the request would get if dispatched now.
            let (rung, _) = sim::choose_rung(req, budget_ms);
            let service = sim::service_ms(req, rung);
            let fail_part = s.fails * (service / 8).max(1);
            if s.permanent {
                return fail_part;
            }
            if cfg.recovery_enabled && s.fails > 0 && s.n_chunks > 0 {
                // The clean attempt will resume from the cumulative
                // checkpoint, so the estimate must subtract the planned
                // head start to stay a strict under-estimate (the shed
                // check must never abandon a recoverable request).
                let h = planned_checkpoint_chunks(cfg, req.id, s.fails, s.n_chunks);
                let scaled = service
                    .saturating_sub(
                        req.base_service_ms().saturating_sub(req.prefill_service_ms()),
                    )
                    .max(1);
                let chunk_cost = scaled / s.n_chunks;
                let chunk_rem = scaled % s.n_chunks;
                let decode_tail = req.new_tokens as u64 * ((req.seq_len as u64) / 16).max(1);
                return fail_part
                    + (s.n_chunks - h) * chunk_cost
                    + chunk_rem.saturating_sub(h)
                    + decode_tail;
            }
            fail_part + service
        }
        Phase::FailAttempts { remaining } => {
            let mut rem = remaining * s.fail_ms;
            if !s.permanent {
                let h = if cfg.recovery_enabled {
                    planned_checkpoint_chunks(cfg, req.id, s.fails, s.n_chunks)
                } else {
                    0
                };
                rem += (s.n_chunks - h) * s.chunk_cost
                    + s.chunk_rem.saturating_sub(h)
                    + req.new_tokens as u64 * s.per_token;
            }
            rem
        }
        Phase::Prefill => {
            let chunks_left = s.n_chunks - s.chunks_done;
            let plus_one = s.chunk_rem.saturating_sub(s.chunks_done);
            chunks_left * s.chunk_cost + plus_one + req.new_tokens as u64 * s.per_token
        }
        Phase::Decode => {
            (req.new_tokens as u64).saturating_sub(s.steps_done) * s.per_token
        }
        Phase::Done => 0,
    }
}

/// The deferred ladder walk: runs when a worker first picks the request
/// up, fixing the rung against the load-scaled deadline budget
/// ([`dispatch_budget_ms`]) and deriving every rung-dependent cost
/// (failed-attempt time and the exact-sum distribution of the scaled
/// prefill over its chunks). The walk honours the tenant's quality
/// floor (`max_rung_index`): when no permitted rung fits the budget it
/// returns `false` and the caller sheds the request with
/// [`Planned::ShedQualityFloor`] instead of forcing a forbidden rung.
fn init_schedule(req: &Request, s: &mut RState, budget_ms: u64, max_rung_index: usize) -> bool {
    let Some((rung, skipped)) = sim::choose_rung_floored(req, budget_ms, max_rung_index) else {
        return false;
    };
    let service = sim::service_ms(req, rung);
    let scaled_prefill = service
        .saturating_sub(req.base_service_ms().saturating_sub(req.prefill_service_ms()))
        .max(1);
    s.rung = rung;
    s.skipped = skipped;
    s.fail_ms = (service / 8).max(1);
    s.chunk_cost = scaled_prefill / s.n_chunks;
    s.chunk_rem = scaled_prefill % s.n_chunks;
    s.phase = if s.fails > 0 {
        Phase::FailAttempts { remaining: s.fails }
    } else {
        Phase::Prefill
    };
    true
}

/// The terminal-event rung string, following the ledger convention: a
/// rung is meaningful exactly when model work started.
fn terminal_rung(planned: &Planned, rung: DegradationRung) -> String {
    if matches!(
        planned,
        Planned::RejectOverloaded { .. }
            | Planned::RejectBudget { .. }
            | Planned::ExpireInQueue
            | Planned::ShedQualityFloor
    ) {
        String::new()
    } else {
        rung.to_string()
    }
}

/// The typed reason string of a served terminal event.
fn served_reason(fails: u64) -> String {
    if fails > 0 {
        format!("served after {fails} failed attempts")
    } else {
        String::new()
    }
}

/// Simulates the continuous open-loop timeline and returns one
/// [`ContinuousPlan`] per request, aligned with the input order.
pub fn plan_continuous(cfg: &ServeConfig, requests: &[Request]) -> Vec<ContinuousPlan> {
    plan_continuous_with_events(cfg, requests).0
}

/// [`plan_continuous`] plus the `sa.events.v1` lifecycle event log and
/// any flight-recorder postmortems the governor tripped (see
/// [`crate::events`]). Everything is emitted by this serial
/// discrete-event simulation, so the serialized log is byte-identical
/// at every `SA_THREADS` setting.
pub fn plan_continuous_with_events(
    cfg: &ServeConfig,
    requests: &[Request],
) -> (Vec<ContinuousPlan>, EventLog) {
    let weights = sim::weight_bytes();
    let budget = cfg.mem_budget_bytes;
    // Watermark classifier for the governor ladder. Only `level_of`
    // is used — a pure function of the configured watermarks — fed
    // with the planner's own serial `mem_in_use` projection, so the
    // governor is deterministic by construction.
    let pressure = MemoryLedger::from_config(cfg);
    let slots = cfg.slots();
    let n = requests.len();

    // Dense tenant index, deterministic order.
    let mut tenant_ids: Vec<u64> = requests.iter().map(|r| r.tenant).collect();
    tenant_ids.sort_unstable();
    tenant_ids.dedup();
    let tenant_of = |req: &Request| -> usize {
        tenant_ids
            .binary_search(&req.tenant)
            .unwrap_or(0 /* unreachable: built from the same set */)
    };
    let mut buckets: Vec<TokenBucket> = tenant_ids.iter().map(|_| TokenBucket::new(cfg)).collect();
    // Per-tenant quality-floor accounting: synthetic tokens the planner
    // has committed to dispatch, split by whether the assigned rung can
    // certify the CRA α contract. A tenant floor's
    // `max_uncertified_permille` bounds the uncertified share; a
    // dispatch that would breach it sheds instead (the count is over
    // *dispatched* work, a conservative superset of what gets served).
    let mut dispatched_tokens: Vec<u64> = vec![0; tenant_ids.len()];
    let mut uncertified_tokens: Vec<u64> = vec![0; tenant_ids.len()];

    // Arrival order (stable by id for simultaneous arrivals).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (requests[i].arrival_ms, requests[i].id));

    let mut st: Vec<RState> = (0..n).map(|_| RState::new()).collect();
    for (i, req) in requests.iter().enumerate() {
        st[i].bytes = sim::request_bytes(cfg, req);
    }

    let deadline_t = |i: usize| requests[i].arrival_ms + requests[i].deadline_ms;
    let cancel_t = |i: usize| {
        if requests[i].cancel_after_ms > 0 {
            requests[i].arrival_ms + requests[i].cancel_after_ms
        } else {
            u64::MAX
        }
    };
    // The instant a request stops being worth any compute: whichever of
    // its deadline and its caller's cancellation comes first. Urgency
    // ordering, dispatch budgets, and feasibility shedding all use this
    // — a request that provably cannot finish before its caller hangs
    // up is exactly as worthless to schedule as one that cannot make
    // its deadline.
    let due_t = |i: usize| deadline_t(i).min(cancel_t(i));

    let mut worker_free: Vec<u64> = vec![0; slots];
    let mut next_arrival = 0usize; // index into `order`
    // The admission queue, kept in earliest-deadline-first order
    // (ties by arrival then id, so the order is total and
    // deterministic). EDF decides *who is the head* that memory
    // backpressure defers on: the most urgent request — never bypassed,
    // so it cannot be starved — rather than the oldest, so a
    // long-deadline giant waiting for memory does not pin down a string
    // of short-deadline requests behind it until they all expire.
    let mut pending: Vec<usize> = Vec::new();
    let mut inflight: Vec<usize> = Vec::new(); // admitted, not Done; sorted by admission
    let mut mem_in_use: u64 = weights;
    // (release_time, bytes, request index) of completed requests,
    // applied once the clock passes the release point (sorted
    // ascending; drained front).
    let mut releases: VecDeque<(u64, u64, usize)> = VecDeque::new();
    let mut rr_cursor: usize = 0;
    let mut done = 0usize;

    // Telemetry plane: the lifecycle event log, the flight recorder,
    // and the last pressure level seen (for the Critical-transition
    // trigger). All written by this serial simulation only.
    let mut log = EventLog::new(cfg.seed);
    let mut recorder = FlightRecorder::new(FLIGHT_RECORDER_CAPACITY);
    let mut prev_level = PressureLevel::Normal;

    // Admits from the pending queue head while memory allows, resolving
    // requests whose cancel/deadline already passed. `now` is the
    // virtual instant the admission opportunity exists.
    macro_rules! admit {
        ($now:expr) => {{
            let now: u64 = $now;
            while let Some((t, bytes, ridx)) = releases.front().copied() {
                if t <= now {
                    mem_in_use -= bytes;
                    releases.pop_front();
                    log.push(
                        t,
                        requests[ridx].id,
                        requests[ridx].tenant,
                        EventKind::Released,
                        "",
                        bytes,
                        mem_in_use,
                        String::new(),
                    );
                } else {
                    break;
                }
            }
            // Released memory can drop the pressure level; track the
            // drop so a later climb back to Critical re-triggers the
            // flight recorder.
            prev_level = prev_level.min(pressure.level_of(mem_in_use));
            while let Some(&i) = pending.first() {
                let req = &requests[i];
                if cancel_t(i) <= now {
                    let at = cancel_t(i).max(req.arrival_ms);
                    st[i].start = Some(at);
                    let rung = terminal_rung(&Planned::CancelCaller, st[i].rung);
                    st[i].resolve(Planned::CancelCaller, at);
                    log.push(
                        at,
                        req.id,
                        req.tenant,
                        EventKind::Cancelled,
                        &rung,
                        0,
                        mem_in_use,
                        "caller cancelled while queued".to_string(),
                    );
                    done += 1;
                    pending.remove(0);
                    continue;
                }
                if deadline_t(i) <= now {
                    let at = deadline_t(i);
                    st[i].start = Some(at);
                    st[i].resolve(Planned::ExpireInQueue, at);
                    log.push(
                        at,
                        req.id,
                        req.tenant,
                        EventKind::Expired,
                        "",
                        0,
                        mem_in_use,
                        "deadline expired in queue".to_string(),
                    );
                    done += 1;
                    pending.remove(0);
                    continue;
                }
                if weights + st[i].bytes > budget {
                    // Could never fit, even alone next to the weights.
                    let required_bytes = weights + st[i].bytes;
                    st[i].start = Some(now);
                    st[i].resolve(Planned::RejectBudget { required_bytes }, now);
                    log.push(
                        now,
                        req.id,
                        req.tenant,
                        EventKind::Rejected,
                        "",
                        0,
                        mem_in_use,
                        format!("required {required_bytes} bytes exceeds budget {budget}"),
                    );
                    done += 1;
                    pending.remove(0);
                    continue;
                }
                // ── Memory-pressure governor ───────────────────────
                // Watermark-classified occupancy drives the ladder:
                // defer non-urgent admissions → evict low-mass KV from
                // in-flight decode sessions → (at dispatch) force lower
                // rungs → shed what still cannot be placed.
                let level = pressure.level_of(mem_in_use);
                let must_start_by =
                    due_t(i).saturating_sub(sim::service_ms(req, DegradationRung::Full));
                let urgent = now >= must_start_by;
                // Lazy admission for slack-rich requests: admission
                // commits this request's memory until it finishes, so a
                // long-deadline giant admitted during a lull can pin
                // half the pool across a later crest and starve the
                // crest's short-deadline arrivals out of admission
                // entirely. While the head could still wait and keep
                // its full-rung service, admitting it early is a luxury
                // allowed to consume at most half of the free memory —
                // successive early admissions leave geometrically
                // shrinking headroom, so small requests always slip in
                // while a second giant must wait. Once waiting longer
                // would force a degraded rung the request is urgent and
                // may fill the pool to the brim. Under Critical
                // pressure the luxury disappears entirely: every
                // non-urgent head defers until occupancy drains.
                if !urgent
                    && (st[i].bytes > budget.saturating_sub(mem_in_use) / 2
                        || level == PressureLevel::Critical)
                {
                    if level >= PressureLevel::Elevated {
                        metrics::counter("serve.pressure.deferrals").add(1);
                        log.push(
                            now,
                            req.id,
                            req.tenant,
                            EventKind::Deferred,
                            "",
                            0,
                            mem_in_use,
                            format!("pressure {}", level.as_str()),
                        );
                        recorder.record(PlannerDecision {
                            t_ms: now,
                            request_id: req.id,
                            action: "defer".to_string(),
                            queue_depth: pending.len() as u64,
                            inflight: inflight.len() as u64,
                            free_bytes: budget.saturating_sub(mem_in_use),
                            contenders: 0,
                            budget_ms: 0,
                            rung: String::new(),
                            pressure: level.as_str().to_string(),
                        });
                    }
                    break;
                }
                if mem_in_use + st[i].bytes > budget {
                    // Evict the low-mass KV share (a quarter — the
                    // I_KV tail outside the attention-mass head set,
                    // recomputable from the prompt) of in-flight
                    // decode sessions, oldest admission first, until
                    // the head fits. Each session is evicted at most
                    // once: the abstraction is dropping resident
                    // low-mass rows, not repeatedly shrinking KV.
                    if level >= PressureLevel::Elevated {
                        for idx in 0..inflight.len() {
                            if mem_in_use + st[i].bytes <= budget {
                                break;
                            }
                            let j = inflight[idx];
                            if st[j].phase == Phase::Decode && !st[j].evicted {
                                let freed = st[j].bytes / 4;
                                st[j].bytes -= freed;
                                st[j].evicted = true;
                                mem_in_use -= freed;
                                metrics::counter("serve.pressure.evictions").add(1);
                                let rung = st[j].rung.to_string();
                                log.push(
                                    now,
                                    requests[j].id,
                                    requests[j].tenant,
                                    EventKind::PressureEvicted,
                                    &rung,
                                    freed,
                                    mem_in_use,
                                    format!(
                                        "pressure {}: low-mass KV freed for request {}",
                                        level.as_str(),
                                        req.id
                                    ),
                                );
                                recorder.record(PlannerDecision {
                                    t_ms: now,
                                    request_id: requests[j].id,
                                    action: "evict".to_string(),
                                    queue_depth: pending.len() as u64,
                                    inflight: inflight.len() as u64,
                                    free_bytes: budget.saturating_sub(mem_in_use),
                                    contenders: 0,
                                    budget_ms: 0,
                                    rung,
                                    pressure: level.as_str().to_string(),
                                });
                            }
                        }
                    }
                    if mem_in_use + st[i].bytes > budget {
                        if urgent && level == PressureLevel::Critical {
                            // The ladder's last rung: an urgent head
                            // that still cannot be placed under
                            // Critical pressure is shed with a typed
                            // budget rejection instead of blocking the
                            // EDF head while its deadline bleeds out.
                            let required_bytes = mem_in_use + st[i].bytes;
                            st[i].start = Some(now);
                            st[i].resolve(Planned::RejectBudget { required_bytes }, now);
                            metrics::counter("serve.pressure.sheds").add(1);
                            log.push(
                                now,
                                req.id,
                                req.tenant,
                                EventKind::Shed,
                                "",
                                0,
                                mem_in_use,
                                format!(
                                    "unplaceable under critical pressure: required \
                                     {required_bytes} bytes of budget {budget}"
                                ),
                            );
                            recorder.record(PlannerDecision {
                                t_ms: now,
                                request_id: req.id,
                                action: "shed".to_string(),
                                queue_depth: pending.len() as u64,
                                inflight: inflight.len() as u64,
                                free_bytes: budget.saturating_sub(mem_in_use),
                                contenders: 0,
                                budget_ms: 0,
                                rung: String::new(),
                                pressure: level.as_str().to_string(),
                            });
                            recorder.trigger(
                                "shed",
                                now,
                                req.id,
                                format!(
                                    "urgent head shed: required {required_bytes} bytes \
                                     against budget {budget} at critical pressure"
                                ),
                            );
                            done += 1;
                            pending.remove(0);
                            continue;
                        }
                        break; // head-of-line memory backpressure
                    }
                }
                pending.remove(0);
                mem_in_use += st[i].bytes;
                log.push(
                    now,
                    req.id,
                    req.tenant,
                    EventKind::Admitted,
                    "",
                    st[i].bytes,
                    mem_in_use,
                    String::new(),
                );
                recorder.record(PlannerDecision {
                    t_ms: now,
                    request_id: req.id,
                    action: "admit".to_string(),
                    queue_depth: pending.len() as u64,
                    inflight: inflight.len() as u64,
                    free_bytes: budget.saturating_sub(mem_in_use),
                    contenders: 0,
                    budget_ms: 0,
                    rung: String::new(),
                    pressure: pressure.level_of(mem_in_use).as_str().to_string(),
                });
                if pressure.level_of(mem_in_use) == PressureLevel::Critical
                    && prev_level != PressureLevel::Critical
                {
                    recorder.trigger(
                        "critical_transition",
                        now,
                        req.id,
                        format!(
                            "occupancy {mem_in_use} of budget {budget} crossed the \
                             high watermark on admission"
                        ),
                    );
                }
                prev_level = pressure.level_of(mem_in_use);
                // Only the rung-independent shape is fixed here; the
                // ladder walk waits for first dispatch (init_schedule).
                let attempts_budget = cfg.max_retries as u64 + 1;
                let s = &mut st[i];
                s.fails = req.fault_fails.min(attempts_budget);
                s.permanent = req.fault_fails >= attempts_budget;
                s.n_chunks = (req.seq_len as u64)
                    .div_ceil(cfg.chunk_size.max(1) as u64)
                    .max(1);
                s.per_token = ((req.seq_len as u64) / 16).max(1);
                s.phase = Phase::Admitted;
                s.next_ready = now;
                s.last_event = now;
                inflight.push(i);
            }
        }};
    }

    while done < n {
        // The worker that frees earliest decides the next dispatch
        // instant (lowest index wins ties, deterministically).
        let w = (0..slots)
            .min_by_key(|&w| (worker_free[w], w))
            .unwrap_or(0);
        let now = worker_free[w];

        // Ingest arrivals up to `now`, bounding the pending queue.
        while next_arrival < n {
            let i = order[next_arrival];
            let at = requests[i].arrival_ms;
            if at > now {
                break;
            }
            next_arrival += 1;
            admit!(at);
            if pending.len() >= cfg.max_pending.max(1) {
                let running = inflight.iter().filter(|&&j| st[j].terminal.is_none()).count();
                st[i].start = Some(at);
                st[i].resolve(
                    Planned::RejectOverloaded {
                        inflight: running + pending.len(),
                    },
                    at,
                );
                log.push(
                    at,
                    requests[i].id,
                    requests[i].tenant,
                    EventKind::Rejected,
                    "",
                    0,
                    mem_in_use,
                    format!(
                        "overloaded: {} in flight or queued",
                        running + pending.len()
                    ),
                );
                done += 1;
            } else {
                let key = |j: usize| (due_t(j), requests[j].arrival_ms, requests[j].id);
                let pos = pending.partition_point(|&j| key(j) <= key(i));
                pending.insert(pos, i);
                log.push(
                    at,
                    requests[i].id,
                    requests[i].tenant,
                    EventKind::Enqueued,
                    "",
                    0,
                    mem_in_use,
                    format!("edf position {} of {}", pos + 1, pending.len()),
                );
            }
        }
        admit!(now);
        inflight.retain(|&i| st[i].terminal.is_none());

        // Resolve in-flight requests whose cancel/deadline passed
        // (cooperative semantics: the stop lands at the later of the
        // signal and the last completed micro-task), and shed the
        // provably doomed: when even the backoff-free minimum of a
        // request's remaining compute cannot fit its deadline, finishing
        // is impossible — abandoning it *now* frees capacity for
        // requests that can still make their deadlines, instead of
        // burning workers on work that expires anyway.
        let mut freed: Vec<usize> = Vec::new();
        for &i in &inflight {
            if st[i].next_ready > now {
                continue; // mid-task or in backoff; checked on wake-up
            }
            // Admitted but never dispatched counts as a queue expiry
            // (matching the one-shot convention); once any micro-task
            // ran it is a mid-run deadline cancel.
            let expiry = if st[i].start.is_none() {
                Planned::ExpireInQueue
            } else {
                Planned::CancelDeadline
            };
            let doomed = !st[i].permanent
                && now.saturating_add(est_remaining_ms(cfg, &requests[i], &st[i], 0)) > due_t(i);
            let (stop, planned, release_at, reason) = if cancel_t(i) <= now {
                (cancel_t(i), Planned::CancelCaller, now, "caller cancelled")
            } else if deadline_t(i) <= now {
                (deadline_t(i), expiry, now, "due time passed mid-flight")
            } else if doomed {
                // Shed early; the record still shows the due instant as
                // the terminal one, but the memory frees now.
                if cancel_t(i) < deadline_t(i) {
                    (
                        cancel_t(i),
                        Planned::CancelCaller,
                        now,
                        "doomed: remaining work cannot finish before the caller hangs up",
                    )
                } else {
                    (
                        deadline_t(i),
                        expiry,
                        now,
                        "doomed: remaining work cannot meet the deadline",
                    )
                }
            } else {
                continue;
            };
            let finish = stop.max(st[i].last_event);
            let kind = EventKind::terminal_for(&planned);
            let rung = terminal_rung(&planned, st[i].rung);
            st[i].resolve(planned, finish);
            log.push(
                finish,
                requests[i].id,
                requests[i].tenant,
                kind,
                &rung,
                0,
                mem_in_use,
                reason.to_string(),
            );
            releases.push_back((release_at.max(st[i].last_event), st[i].bytes, i));
            done += 1;
            freed.push(i);
        }
        if !freed.is_empty() {
            releases.make_contiguous().sort_unstable();
            inflight.retain(|i| !freed.contains(i));
            admit!(now);
            inflight.retain(|&i| st[i].terminal.is_none());
        }

        // The same sweep over the whole EDF queue: expired, cancelled,
        // and provably-doomed entries leave immediately instead of
        // lingering until they reach the head (they hold no memory, but
        // they inflate the contention estimate and hide the backlog's
        // true shape from the dispatch budget).
        pending.retain(|&i| {
            let (planned, at, reason) = if cancel_t(i) <= now {
                (
                    Planned::CancelCaller,
                    cancel_t(i).max(requests[i].arrival_ms),
                    "caller cancelled while queued",
                )
            } else if deadline_t(i) <= now {
                (
                    Planned::ExpireInQueue,
                    deadline_t(i),
                    "deadline expired in queue",
                )
            } else if now.saturating_add(est_remaining_ms(cfg, &requests[i], &st[i], 0)) > due_t(i) {
                // Even the bottom rung, started this instant, misses
                // the due point (deadline or the caller hanging up).
                if cancel_t(i) < deadline_t(i) {
                    (
                        Planned::CancelCaller,
                        cancel_t(i),
                        "doomed in queue: cannot finish before the caller hangs up",
                    )
                } else {
                    (
                        Planned::ExpireInQueue,
                        deadline_t(i),
                        "doomed in queue: cannot meet the deadline",
                    )
                }
            } else {
                return true;
            };
            let kind = EventKind::terminal_for(&planned);
            let rung = terminal_rung(&planned, st[i].rung);
            st[i].start = Some(at);
            st[i].resolve(planned, at);
            log.push(
                at,
                requests[i].id,
                requests[i].tenant,
                kind,
                &rung,
                0,
                mem_in_use,
                reason.to_string(),
            );
            done += 1;
            false
        });

        // Pick a micro-task: decode-first, then prefill/fail-attempt by
        // tenant round-robin under the token buckets.
        let mut chosen: Option<usize> = None;
        let mut decode_best: Option<(u64, u64)> = None; // (ready, id)
        for &i in &inflight {
            if st[i].phase == Phase::Decode && st[i].next_ready <= now {
                let key = (st[i].next_ready, requests[i].id);
                if decode_best.is_none_or(|b| key < b) {
                    decode_best = Some(key);
                    chosen = Some(i);
                }
            }
        }
        // Earliest future instant anything becomes dispatchable, used
        // when this iteration cannot dispatch.
        let mut wake: u64 = u64::MAX;
        if chosen.is_none() {
            let n_tenants = tenant_ids.len().max(1);
            // Everyone contending for worker time right now: admitted
            // requests plus the memory-deferred pending queue.
            let contenders = inflight.len() + pending.len();
            let budget_of =
                |i: usize| dispatch_budget_ms(due_t(i).saturating_sub(now), slots, contenders);
            'tenants: for step in 0..n_tenants {
                let t_idx = (rr_cursor + step) % n_tenants;
                // Within a tenant, shortest-remaining-work-first at
                // chunk granularity: a short request preempts a long
                // prefill at its next chunk boundary, while homogeneous
                // streams degrade gracefully to run-to-completion (the
                // in-progress head always has the least remaining), so
                // overload never thrashes every request past its
                // deadline the way round-robin time-slicing does.
                let pick = inflight
                    .iter()
                    .copied()
                    .filter(|&i| {
                        matches!(
                            st[i].phase,
                            Phase::Admitted | Phase::FailAttempts { .. } | Phase::Prefill
                        ) && st[i].next_ready <= now
                            && tenant_of(&requests[i]) == t_idx
                    })
                    .min_by_key(|&i| {
                        (est_remaining_ms(cfg, &requests[i], &st[i], budget_of(i)), requests[i].id)
                    });
                let Some(i) = pick else { continue 'tenants };
                if st[i].phase == Phase::Admitted {
                    // First time a worker reaches this request: walk the
                    // ladder against the load-scaled deadline budget —
                    // halved under Critical memory pressure, so freshly
                    // dispatched work lands on cheaper rungs while
                    // occupancy drains (the governor's forced-rung
                    // action). The walk never drops below the tenant's
                    // quality floor: when no permitted rung fits (even
                    // pressure-halved), or an uncertifiable rung would
                    // breach the tenant's uncertified-token cap, the
                    // request sheds with a typed quality-floor refusal.
                    let level = pressure.level_of(mem_in_use);
                    let mut budget = budget_of(i);
                    let mut forced = false;
                    let max_idx = cfg.max_rung_index_for(requests[i].tenant);
                    if level == PressureLevel::Critical {
                        let uncapped =
                            sim::choose_rung_floored(&requests[i], budget, max_idx).map(|c| c.0);
                        budget /= 2;
                        let capped =
                            sim::choose_rung_floored(&requests[i], budget, max_idx).map(|c| c.0);
                        if capped != uncapped {
                            metrics::counter("serve.pressure.forced_rungs").add(1);
                            forced = true;
                        }
                    }
                    let tokens =
                        requests[i].seq_len as u64 + requests[i].new_tokens as u64;
                    let mut floor_refusal: Option<String> = None;
                    if !init_schedule(&requests[i], &mut st[i], budget, max_idx) {
                        floor_refusal = Some(format!(
                            "quality floor: no permitted rung fits the {budget} ms \
                             dispatch budget"
                        ));
                    } else if let Some(floor) = cfg.floor_for(requests[i].tenant) {
                        if !st[i].rung.can_certify_alpha() {
                            let unc = uncertified_tokens[t_idx] + tokens;
                            let total = dispatched_tokens[t_idx] + tokens;
                            if unc * 1000 > floor.max_uncertified_permille * total {
                                floor_refusal = Some(format!(
                                    "quality floor: uncertified rung would put tenant {} \
                                     at {unc} of {total} tokens (cap {}‰)",
                                    requests[i].tenant, floor.max_uncertified_permille
                                ));
                            }
                        }
                    }
                    if let Some(reason) = floor_refusal {
                        st[i].resolve(Planned::ShedQualityFloor, now);
                        log.push(
                            now,
                            requests[i].id,
                            requests[i].tenant,
                            EventKind::Shed,
                            "",
                            0,
                            mem_in_use,
                            reason.clone(),
                        );
                        recorder.record(PlannerDecision {
                            t_ms: now,
                            request_id: requests[i].id,
                            action: "shed_quality_floor".to_string(),
                            queue_depth: pending.len() as u64,
                            inflight: inflight.len() as u64,
                            free_bytes: cfg.mem_budget_bytes.saturating_sub(mem_in_use),
                            contenders: contenders as u64,
                            budget_ms: budget,
                            rung: String::new(),
                            pressure: level.as_str().to_string(),
                        });
                        recorder.trigger("shed", now, requests[i].id, reason);
                        releases.push_back((now, st[i].bytes, i));
                        releases.make_contiguous().sort_unstable();
                        done += 1;
                        continue 'tenants;
                    }
                    dispatched_tokens[t_idx] += tokens;
                    if !st[i].rung.can_certify_alpha() {
                        uncertified_tokens[t_idx] += tokens;
                    }
                    let rung = st[i].rung.to_string();
                    log.push(
                        now,
                        requests[i].id,
                        requests[i].tenant,
                        EventKind::Dispatched,
                        &rung,
                        0,
                        mem_in_use,
                        format!("budget {budget} ms, {contenders} contenders"),
                    );
                    if st[i].rung != DegradationRung::Full {
                        log.push(
                            now,
                            requests[i].id,
                            requests[i].tenant,
                            EventKind::RungDegraded,
                            &rung,
                            0,
                            mem_in_use,
                            if forced {
                                format!("pressure-forced under {} occupancy", level.as_str())
                            } else {
                                format!("deadline budget {budget} ms too tight for higher rungs")
                            },
                        );
                    }
                    recorder.record(PlannerDecision {
                        t_ms: now,
                        request_id: requests[i].id,
                        action: "dispatch".to_string(),
                        queue_depth: pending.len() as u64,
                        inflight: inflight.len() as u64,
                        free_bytes: cfg.mem_budget_bytes.saturating_sub(mem_in_use),
                        contenders: contenders as u64,
                        budget_ms: budget,
                        rung,
                        pressure: level.as_str().to_string(),
                    });
                }
                let (_, bucket_cost) = st[i].next_task(cfg);
                if bucket_cost == 0 || buckets[t_idx].try_take(now, bucket_cost) {
                    chosen = Some(i);
                    rr_cursor = (t_idx + 1) % n_tenants;
                    break 'tenants;
                }
                // Bucket-limited: note the optimistic refill time and
                // make the whole tenant wait (no cheap-task bypass, so
                // quota starvation cannot reorder a tenant's stream).
                wake = wake.min(buckets[t_idx].ready_time(now, bucket_cost));
            }
        }

        let Some(i) = chosen else {
            // Nothing dispatchable at `now`: advance this worker to the
            // earliest of (next arrival, a request waking from backoff
            // or another worker's completion, a bucket refill).
            if next_arrival < n {
                wake = wake.min(requests[order[next_arrival]].arrival_ms);
            }
            for &j in &inflight {
                let candidate = st[j]
                    .next_ready
                    .max(cancel_t(j).min(deadline_t(j)).min(u64::MAX));
                // A request sitting mid-task or in backoff becomes
                // actionable at next_ready; one already past its
                // deadline/cancel but mid-task resolves then too.
                let _ = candidate;
                wake = wake.min(st[j].next_ready.max(now + 1));
            }
            if let Some(&(t, _, _)) = releases.front() {
                wake = wake.min(t.max(now + 1));
            }
            if let Some(&h) = pending.first() {
                // A lazily-deferred head becomes an urgent admission
                // (allowed to fill the reserve) at its last full-rung
                // start instant.
                let must_start_by =
                    due_t(h).saturating_sub(sim::service_ms(&requests[h], DegradationRung::Full));
                wake = wake.min(must_start_by.max(now + 1));
            }
            if wake == u64::MAX {
                // No future event can occur. Everything left pending
                // expires at its own deadline (or cancel).
                for i in pending.drain(..) {
                    let (planned, at, reason) = if cancel_t(i) < deadline_t(i) {
                        (
                            Planned::CancelCaller,
                            cancel_t(i),
                            "caller cancelled while queued",
                        )
                    } else {
                        (
                            Planned::ExpireInQueue,
                            deadline_t(i),
                            "deadline expired in queue",
                        )
                    };
                    let at = at.max(requests[i].arrival_ms);
                    let kind = EventKind::terminal_for(&planned);
                    let rung = terminal_rung(&planned, st[i].rung);
                    st[i].start = Some(at);
                    st[i].resolve(planned, at);
                    log.push(
                        at,
                        requests[i].id,
                        requests[i].tenant,
                        kind,
                        &rung,
                        0,
                        mem_in_use,
                        reason.to_string(),
                    );
                    done += 1;
                }
                continue;
            }
            worker_free[w] = wake.max(now + 1);
            continue;
        };

        // Dispatch request `i`'s next micro-task on worker `w`.
        let (cost, _) = st[i].next_task(cfg);
        let cost = cost.max(1);
        let end = now + cost;
        worker_free[w] = end;
        if st[i].start.is_none() {
            st[i].start = Some(now);
        }
        st[i].last_event = end;
        st[i].next_ready = end;
        match st[i].phase.clone() {
            Phase::FailAttempts { remaining } => {
                let attempt = st[i].fails_done;
                st[i].fails_done += 1;
                // Crash-recovery accounting for the attempt that
                // follows this crash (the last crash of a permanent
                // failure has no successor). With recovery on, the
                // successor restores the chunk-boundary checkpoint and
                // recomputes only the one in-flight chunk the crash
                // destroyed; with recovery off it re-runs everything
                // this attempt had already completed.
                let has_successor = remaining > 1 || !st[i].permanent;
                if has_successor {
                    let seq = requests[i].seq_len as u64;
                    let chunk = cfg.chunk_size.max(1) as u64;
                    let rung = st[i].rung.to_string();
                    log.push(
                        end,
                        requests[i].id,
                        requests[i].tenant,
                        EventKind::Retried,
                        &rung,
                        0,
                        mem_in_use,
                        format!("attempt {} crashed", attempt + 1),
                    );
                    if cfg.recovery_enabled {
                        let h = planned_checkpoint_chunks(
                            cfg,
                            requests[i].id,
                            attempt + 1,
                            st[i].n_chunks,
                        );
                        if h > 0 {
                            st[i].recovered_attempts += 1;
                        }
                        st[i].recomputed_tokens += chunk.min(seq);
                        log.push(
                            end,
                            requests[i].id,
                            requests[i].tenant,
                            EventKind::CheckpointCaptured,
                            &rung,
                            0,
                            mem_in_use,
                            format!("chunk-boundary checkpoint at chunk {h} of {}", st[i].n_chunks),
                        );
                        if h > 0 {
                            log.push(
                                end,
                                requests[i].id,
                                requests[i].tenant,
                                EventKind::Recovered,
                                &rung,
                                0,
                                mem_in_use,
                                format!("next attempt resumes from chunk {h}"),
                            );
                        }
                    } else {
                        let progressed = checkpoint_advance(
                            cfg,
                            requests[i].id,
                            attempt,
                            st[i].n_chunks,
                        )
                        .min(st[i].n_chunks.saturating_sub(1));
                        st[i].recomputed_tokens += ((progressed + 1) * chunk).min(seq);
                    }
                }
                if remaining > 1 {
                    let gap = sim::backoff_ms(cfg, requests[i].id, attempt);
                    st[i].backoff_total = st[i].backoff_total.saturating_add(gap);
                    st[i].next_ready = end.saturating_add(gap);
                    st[i].phase = Phase::FailAttempts {
                        remaining: remaining - 1,
                    };
                } else if st[i].permanent {
                    let fails = st[i].fails;
                    let rung = st[i].rung.to_string();
                    st[i].resolve(Planned::FailPermanent { fails }, end);
                    log.push(
                        end,
                        requests[i].id,
                        requests[i].tenant,
                        EventKind::Failed,
                        &rung,
                        0,
                        mem_in_use,
                        format!("attempt budget exhausted after {fails} failed attempts"),
                    );
                    recorder.trigger(
                        "storm_budget_exhausted",
                        end,
                        requests[i].id,
                        format!("request {} burned all {fails} attempts", requests[i].id),
                    );
                    releases.push_back((end, st[i].bytes, i));
                    releases.make_contiguous().sort_unstable();
                    done += 1;
                } else {
                    // Last injected failure: back off, then run clean —
                    // resuming from the cumulative chunk-boundary
                    // checkpoint when recovery is on (the prefill head
                    // start that makes resume cheaper than re-running),
                    // from scratch when it is off.
                    let gap = sim::backoff_ms(cfg, requests[i].id, attempt);
                    st[i].backoff_total = st[i].backoff_total.saturating_add(gap);
                    st[i].next_ready = end.saturating_add(gap);
                    st[i].phase = Phase::Prefill;
                    if cfg.recovery_enabled {
                        st[i].chunks_done = planned_checkpoint_chunks(
                            cfg,
                            requests[i].id,
                            st[i].fails,
                            st[i].n_chunks,
                        );
                        if st[i].chunks_done > 0 {
                            let rung = st[i].rung.to_string();
                            log.push(
                                end,
                                requests[i].id,
                                requests[i].tenant,
                                EventKind::CheckpointRestored,
                                &rung,
                                0,
                                mem_in_use,
                                format!(
                                    "clean attempt resumes prefill from chunk {} of {}",
                                    st[i].chunks_done,
                                    st[i].n_chunks
                                ),
                            );
                        }
                    }
                }
            }
            Phase::Prefill => {
                st[i].chunks_done += 1;
                if st[i].chunks_done == st[i].n_chunks {
                    if requests[i].new_tokens == 0 {
                        let fails = st[i].fails;
                        let rung = st[i].rung.to_string();
                        st[i].first_token = Some(end);
                        st[i].resolve(Planned::Serve { fails }, end);
                        log.push(
                            end,
                            requests[i].id,
                            requests[i].tenant,
                            EventKind::FirstToken,
                            &rung,
                            0,
                            mem_in_use,
                            "final prefill chunk".to_string(),
                        );
                        log.push(
                            end,
                            requests[i].id,
                            requests[i].tenant,
                            EventKind::Completed,
                            &rung,
                            0,
                            mem_in_use,
                            served_reason(fails),
                        );
                        releases.push_back((end, st[i].bytes, i));
                        releases.make_contiguous().sort_unstable();
                        done += 1;
                    } else {
                        st[i].phase = Phase::Decode;
                    }
                }
            }
            Phase::Decode => {
                st[i].steps_done += 1;
                if st[i].steps_done == 1 {
                    st[i].first_token = Some(end);
                    let rung = st[i].rung.to_string();
                    log.push(
                        end,
                        requests[i].id,
                        requests[i].tenant,
                        EventKind::FirstToken,
                        &rung,
                        0,
                        mem_in_use,
                        "first decode step".to_string(),
                    );
                }
                if st[i].steps_done == requests[i].new_tokens as u64 {
                    let fails = st[i].fails;
                    let rung = st[i].rung.to_string();
                    st[i].resolve(Planned::Serve { fails }, end);
                    log.push(
                        end,
                        requests[i].id,
                        requests[i].tenant,
                        EventKind::Completed,
                        &rung,
                        0,
                        mem_in_use,
                        served_reason(fails),
                    );
                    releases.push_back((end, st[i].bytes, i));
                    releases.make_contiguous().sort_unstable();
                    done += 1;
                }
            }
            Phase::Pending | Phase::Admitted | Phase::Done => {
                // Unreachable: dispatch schedules Admitted requests
                // before picking them, and only compute phases run.
            }
        }
    }

    // Apply the releases the loop never reached (the clock stops at the
    // last micro-task, which can precede queued release points), so the
    // event log's memory balance returns to the weights baseline — the
    // conservation invariant [`EventLog::check_conservation`] asserts.
    while let Some((t, bytes, ridx)) = releases.pop_front() {
        mem_in_use -= bytes;
        log.push(
            t,
            requests[ridx].id,
            requests[ridx].tenant,
            EventKind::Released,
            "",
            bytes,
            mem_in_use,
            String::new(),
        );
    }
    log.postmortems = recorder.into_postmortems();

    // Assemble plans in input order.
    let plans = (0..n)
        .map(|i| {
            let req = &requests[i];
            let s = &st[i];
            let (planned, finish) = s
                .terminal
                .clone()
                // Unreachable by construction — every request resolves
                // before the loop exits. Resolve defensively.
                .unwrap_or((Planned::ExpireInQueue, deadline_t(i)));
            let started_model = !matches!(
                planned,
                Planned::RejectOverloaded { .. }
                    | Planned::RejectBudget { .. }
                    | Planned::ExpireInQueue
                    | Planned::ShedQualityFloor
            );
            let start = s.start.unwrap_or(finish).min(finish);
            // Recovery tallies follow the retries convention: only
            // outcomes that ran their full fault schedule report them
            // (a cancelled request's partial tallies describe attempts
            // whose retries are likewise not reported).
            let (retries, backoff_ms, recovered_attempts, recomputed_tokens) = match planned {
                Planned::Serve { fails } => {
                    (fails, s.backoff_total, s.recovered_attempts, s.recomputed_tokens)
                }
                Planned::FailPermanent { fails } => (
                    fails.saturating_sub(1),
                    s.backoff_total,
                    s.recovered_attempts,
                    s.recomputed_tokens,
                ),
                _ => (0, 0, 0, 0),
            };
            ContinuousPlan {
                plan: Plan {
                    planned,
                    rung: if started_model { s.rung } else { DegradationRung::Full },
                    skipped: if started_model { s.skipped.clone() } else { Vec::new() },
                    start_ms: start,
                    finish_ms: finish,
                    queue_wait_ms: start.saturating_sub(req.arrival_ms),
                    retries,
                    backoff_ms,
                },
                tenant: req.tenant,
                first_token_ms: s.first_token.unwrap_or(0),
                prefill_chunks: s.chunks_done,
                decode_steps: s.steps_done,
                recovered_attempts,
                recomputed_tokens,
            }
        })
        .collect();
    (plans, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mixed_workload, open_loop_workload};
    use sa_workloads::{ArrivalProcess, ArrivalShape};

    fn cfg() -> ServeConfig {
        ServeConfig::default()
    }

    #[test]
    fn healthy_stream_serves_everything_in_arrival_order_capacity() {
        let c = cfg();
        let reqs: Vec<Request> = (0..4)
            .map(|id| Request::prefill(id, 64, id * 10, 1_000_000))
            .collect();
        let plans = plan_continuous(&c, &reqs);
        for p in &plans {
            assert!(matches!(p.plan.planned, Planned::Serve { fails: 0 }), "{p:?}");
            assert_eq!(p.plan.rung, DegradationRung::Full);
            assert!(p.first_token_ms > 0);
            assert_eq!(p.first_token_ms, p.plan.finish_ms, "prefill-only TTFT = finish");
            assert_eq!(p.prefill_chunks, 2, "64 tokens / 32-chunk = 2 chunks");
        }
    }

    #[test]
    fn long_prefill_no_longer_blocks_short_requests() {
        // One huge prefill arrives first; a short one right behind it.
        // Under one-shot planning with one slot the short request waits
        // the whole 512² service; under continuous batching it
        // interleaves at chunk granularity and finishes far earlier.
        let c = ServeConfig {
            max_inflight: 1,
            ..cfg()
        };
        let long = Request::prefill(0, 512, 0, 1_000_000);
        let short = Request::prefill(1, 48, 1, 1_000_000);
        let oneshot = sim::plan_batch(&c, &[long.clone(), short.clone()]);
        let cont = plan_continuous(&c, &[long, short]);
        assert!(matches!(cont[1].plan.planned, Planned::Serve { .. }));
        assert!(
            cont[1].plan.finish_ms < oneshot[1].finish_ms / 4,
            "continuous {} ms vs one-shot {} ms",
            cont[1].plan.finish_ms,
            oneshot[1].finish_ms
        );
    }

    #[test]
    fn decode_steps_interleave_with_prefill_chunks() {
        // A decode session in flight and a prefill arriving later: the
        // decode's tokens must not all wait for the prefill to finish.
        let c = ServeConfig {
            max_inflight: 1,
            ..cfg()
        };
        let mut decode = Request::prefill(0, 64, 0, 1_000_000);
        decode.kind = crate::RequestKind::Decode;
        decode.new_tokens = 8;
        let prefill = Request::prefill(1, 512, 1, 1_000_000);
        let plans = plan_continuous(&c, &[decode, prefill]);
        assert!(matches!(plans[0].plan.planned, Planned::Serve { .. }));
        assert!(matches!(plans[1].plan.planned, Planned::Serve { .. }));
        // Decode-first priority: the decode session finishes its 8
        // tokens long before the 4096 ms prefill completes.
        assert!(
            plans[0].plan.finish_ms < plans[1].plan.finish_ms,
            "decode {} vs prefill {}",
            plans[0].plan.finish_ms,
            plans[1].plan.finish_ms
        );
        assert_eq!(plans[0].decode_steps, 8);
        assert!(plans[0].first_token_ms < plans[0].plan.finish_ms);
    }

    #[test]
    fn pending_overflow_rejects_with_inflight_count() {
        let c = ServeConfig {
            max_inflight: 1,
            max_pending: 2,
            ..cfg()
        };
        // Slow head + queue bound 2: the fourth simultaneous arrival
        // bounces.
        let reqs: Vec<Request> = (0..5)
            .map(|id| Request::prefill(id, 512, 0, 1_000_000))
            .collect();
        let plans = plan_continuous(&c, &reqs);
        let rejected = plans
            .iter()
            .filter(|p| matches!(p.plan.planned, Planned::RejectOverloaded { .. }))
            .count();
        assert!(rejected >= 1, "bounded pending queue must reject overflow");
        for p in &plans {
            if let Planned::RejectOverloaded { inflight } = p.plan.planned {
                assert!(inflight >= 2, "rejection carries the load snapshot");
                assert_eq!(p.plan.start_ms, p.plan.finish_ms);
            }
        }
    }

    #[test]
    fn oversized_request_is_budget_rejected_not_stuck() {
        let c = ServeConfig {
            mem_budget_bytes: sim::weight_bytes() + 1,
            ..cfg()
        };
        let reqs = vec![Request::prefill(0, 512, 0, 1_000_000)];
        let plans = plan_continuous(&c, &reqs);
        assert!(
            matches!(plans[0].plan.planned, Planned::RejectBudget { required_bytes }
                if required_bytes > c.mem_budget_bytes)
        );
    }

    #[test]
    fn memory_backpressure_defers_instead_of_rejecting() {
        // Two 512-prefills fit concurrently, a third waits for a
        // release instead of bouncing (unlike the one-shot planner).
        let c = cfg();
        let reqs: Vec<Request> = (0..3)
            .map(|id| Request::prefill(id, 512, 0, 10_000_000))
            .collect();
        let plans = plan_continuous(&c, &reqs);
        for p in &plans {
            assert!(matches!(p.plan.planned, Planned::Serve { .. }), "{p:?}");
        }
        // The third request waited for memory: it starts only after an
        // earlier one finished.
        let first_finish = plans.iter().map(|p| p.plan.finish_ms).min().unwrap();
        let last_start = plans.iter().map(|p| p.plan.start_ms).max().unwrap();
        assert!(
            last_start >= first_finish,
            "start {last_start} should wait for release at {first_finish}"
        );
    }

    #[test]
    fn deadline_expires_in_queue_and_mid_run() {
        let c = ServeConfig {
            max_inflight: 1,
            ..cfg()
        };
        // Feasible-but-tight: the full rung (4096 ms) fits the 4500 ms
        // deadline, so the long prefill starts at t=0 undegraded.
        let long = Request::prefill(0, 512, 0, 4500);
        // Deadline shorter than one chunk of anything: expires queued.
        let hopeless = Request::prefill(1, 512, 1, 2);
        // Less remaining work: preempts the long prefill at every chunk
        // boundary until the long one can no longer make its deadline.
        let short = Request::prefill(2, 256, 1, 1_000_000);
        let plans = plan_continuous(&c, &[long, hopeless, short]);
        assert!(matches!(plans[1].plan.planned, Planned::ExpireInQueue));
        assert!(matches!(plans[2].plan.planned, Planned::Serve { fails: 0 }));
        // The long request ran at least one chunk, then was shed the
        // moment its backoff-free remaining work provably could not fit
        // the deadline — charged as a mid-run deadline cancellation at
        // the deadline itself, exactly like the one-shot planner.
        assert!(matches!(plans[0].plan.planned, Planned::CancelDeadline));
        assert_eq!(plans[0].plan.finish_ms, 4500);
        assert_eq!(plans[0].plan.start_ms, 0, "it started before the shed");
        assert!(plans[0].prefill_chunks >= 1, "it ran before the shed");
    }

    #[test]
    fn caller_cancellation_wins_over_completion() {
        let c = cfg();
        let mut req = Request::prefill(0, 512, 0, 1_000_000);
        req.cancel_after_ms = 10;
        let plans = plan_continuous(&c, &[req]);
        assert!(matches!(plans[0].plan.planned, Planned::CancelCaller));
        assert!(plans[0].plan.finish_ms >= 10);
        assert!(plans[0].plan.finish_ms < 4096, "stopped within ~a chunk");
    }

    #[test]
    fn transient_and_permanent_faults_follow_the_oneshot_model() {
        let c = cfg();
        let mut transient = Request::prefill(0, 64, 0, 1_000_000);
        transient.fault_fails = 2;
        let mut permanent = Request::prefill(1, 64, 50_000, 1_000_000);
        permanent.fault_fails = 99;
        let plans = plan_continuous(&c, &[transient, permanent]);
        assert!(matches!(plans[0].plan.planned, Planned::Serve { fails: 2 }));
        assert_eq!(plans[0].plan.retries, 2);
        assert!(plans[0].plan.backoff_ms >= 2 * c.backoff_base_ms);
        assert!(
            matches!(plans[1].plan.planned, Planned::FailPermanent { fails }
                if fails == c.max_retries as u64 + 1)
        );
        assert_eq!(plans[1].plan.retries, c.max_retries as u64);
    }

    #[test]
    fn token_bucket_throttles_a_flooding_tenant() {
        // Tenant 0 floods with big prefills; tenant 1 sends one small
        // request slightly later. With a tight bucket, tenant 1 must
        // not wait for the entire flood.
        let c = ServeConfig {
            max_inflight: 2,
            tenant_rate_tokens_per_sec: 64,
            tenant_burst_tokens: 64,
            ..cfg()
        };
        let mut reqs: Vec<Request> = (0..4)
            .map(|id| Request::prefill(id, 224, 0, 10_000_000))
            .collect();
        let mut small = Request::prefill(4, 48, 10, 10_000_000);
        small.tenant = 1;
        reqs.push(small);
        let plans = plan_continuous(&c, &reqs);
        assert!(matches!(plans[4].plan.planned, Planned::Serve { .. }));
        let flood_last = plans[..4].iter().map(|p| p.plan.finish_ms).max().unwrap();
        assert!(
            plans[4].plan.finish_ms < flood_last,
            "tenant 1 ({} ms) should not trail the whole flood ({} ms)",
            plans[4].plan.finish_ms,
            flood_last
        );
    }

    #[test]
    fn plans_are_deterministic_and_total_on_adversarial_mixes() {
        let c = ServeConfig {
            max_pending: 8,
            ..cfg()
        };
        let reqs = mixed_workload(11, 48);
        let a = plan_continuous(&c, &reqs);
        let b = plan_continuous(&c, &reqs);
        assert_eq!(a, b);
        assert_eq!(a.len(), reqs.len());
        assert!(a.iter().any(|p| matches!(p.plan.planned, Planned::Serve { fails: 0 })));
        for (p, r) in a.iter().zip(&reqs) {
            assert!(p.plan.finish_ms >= p.plan.start_ms, "{p:?}");
            assert!(p.plan.start_ms >= r.arrival_ms, "{p:?}");
            if p.first_token_ms > 0 {
                assert!(p.first_token_ms >= p.plan.start_ms);
                assert!(p.first_token_ms <= p.plan.finish_ms);
            }
        }
    }

    #[test]
    fn open_loop_flash_crowd_is_planned_totally() {
        let c = cfg();
        let process = ArrivalProcess {
            seed: 13,
            rate_per_sec: 6.0,
            shape: ArrivalShape::FlashCrowd {
                quiet_ms: 6_000,
                burst_ms: 1_500,
                multiplier: 6.0,
            },
        };
        let reqs = open_loop_workload(13, &process, 25_000, 3);
        assert!(reqs.len() > 50, "flash crowd should draw a real stream");
        let plans = plan_continuous(&c, &reqs);
        assert_eq!(plans.len(), reqs.len());
        let served = plans
            .iter()
            .filter(|p| matches!(p.plan.planned, Planned::Serve { .. }))
            .count();
        assert!(served > 0);
    }

    #[test]
    fn recovery_resumes_from_checkpoints_instead_of_rerunning_prefill() {
        // The same crashing request planned twice: resume-from-
        // checkpoint must finish no later than retry-from-scratch and
        // recompute strictly fewer prefill tokens.
        let recovery = cfg();
        let scratch = ServeConfig {
            recovery_enabled: false,
            ..cfg()
        };
        let mut req = Request::prefill(0, 512, 0, 1_000_000);
        req.fault_fails = 2;
        let with = plan_continuous(&recovery, &[req.clone()]);
        let without = plan_continuous(&scratch, &[req]);
        assert!(matches!(with[0].plan.planned, Planned::Serve { fails: 2 }));
        assert!(matches!(without[0].plan.planned, Planned::Serve { fails: 2 }));
        // Every crash left a non-empty checkpoint behind (512 tokens =
        // 16 chunks; the first crash already advances at least one).
        assert_eq!(with[0].recovered_attempts, 2);
        assert_eq!(without[0].recovered_attempts, 0);
        // Bounded recompute: one in-flight chunk per crash vs the whole
        // completed progress of each crashed attempt.
        assert_eq!(with[0].recomputed_tokens, 2 * 32);
        assert!(
            without[0].recomputed_tokens > with[0].recomputed_tokens,
            "scratch recomputed {} must exceed recovery {}",
            without[0].recomputed_tokens,
            with[0].recomputed_tokens
        );
        // The head start makes the clean attempt strictly shorter.
        assert!(
            with[0].plan.finish_ms < without[0].plan.finish_ms,
            "recovery {} ms vs scratch {} ms",
            with[0].plan.finish_ms,
            without[0].plan.finish_ms
        );
        // Both still complete the full prefill on the virtual timeline.
        assert_eq!(with[0].prefill_chunks, 16);
        assert_eq!(without[0].prefill_chunks, 16);
    }

    #[test]
    fn recovery_accounting_skips_fault_free_and_permanent_edges() {
        let c = cfg();
        let clean = Request::prefill(0, 64, 0, 1_000_000);
        let mut permanent = Request::prefill(1, 64, 50_000, 1_000_000);
        permanent.fault_fails = 99;
        let plans = plan_continuous(&c, &[clean, permanent]);
        assert_eq!(plans[0].recovered_attempts, 0);
        assert_eq!(plans[0].recomputed_tokens, 0);
        // A permanent failure's last crash has no successor: resumes
        // happen only between the `fails` attempts.
        let fails = c.max_retries as u64 + 1;
        assert!(matches!(plans[1].plan.planned, Planned::FailPermanent { fails: f } if f == fails));
        assert!(plans[1].recovered_attempts <= fails - 1);
        assert!(plans[1].recomputed_tokens > 0);
    }

    #[test]
    fn governor_evicts_low_mass_kv_to_admit_an_urgent_giant() {
        // A decode session holds ~5.7 GiB of KV; the budget leaves one
        // byte less than an urgent 512-giant needs beside it. With the
        // watermarks armed, the governor evicts the session's low-mass
        // quarter and the giant starts while the decode is still in
        // flight; with the watermarks parked at the budget (pressure
        // never classifies above Normal) the giant must wait for the
        // decode to finish and release.
        let decode_bytes = sim::request_bytes(&cfg(), &Request::prefill(0, 64, 0, 0));
        let giant_bytes = sim::request_bytes(&cfg(), &Request::prefill(0, 512, 0, 0));
        let base = ServeConfig {
            mem_budget_bytes: sim::weight_bytes() + decode_bytes + giant_bytes - 1,
            mem_low_permille: 300,
            mem_high_permille: 990,
            ..cfg()
        };
        let mut decode = Request::prefill(0, 64, 0, 1_000_000);
        decode.kind = crate::RequestKind::Decode;
        decode.new_tokens = 64;
        // Urgent on arrival: the deadline is shorter than the full-rung
        // service, so the giant may fill the pool to the brim at once.
        let giant = Request::prefill(1, 512, 100, 2_000);
        let governed = plan_continuous(&base, &[decode.clone(), giant.clone()]);
        assert!(matches!(governed[0].plan.planned, Planned::Serve { .. }));
        assert!(matches!(governed[1].plan.planned, Planned::Serve { .. }), "{:?}", governed[1]);
        assert!(
            governed[1].plan.start_ms < governed[0].plan.finish_ms,
            "eviction admitted the giant (start {}) while the decode ran (finish {})",
            governed[1].plan.start_ms,
            governed[0].plan.finish_ms
        );
        let parked = ServeConfig {
            mem_low_permille: 1000,
            mem_high_permille: 1000,
            ..base
        };
        let ungoverned = plan_continuous(&parked, &[decode, giant]);
        assert!(
            ungoverned[1].plan.start_ms >= ungoverned[0].plan.finish_ms,
            "without the governor the giant (start {}) waits for the release ({})",
            ungoverned[1].plan.start_ms,
            ungoverned[0].plan.finish_ms
        );
    }

    #[test]
    fn governor_sheds_urgent_unplaceable_head_at_critical_pressure() {
        // One giant prefill occupies ~71% of a shrunken budget; with
        // the high watermark at 700‰ that is Critical. A second urgent
        // giant fits the budget alone (so it is not a could-never-fit
        // rejection) but cannot be placed beside the first, and there
        // is no decode KV to evict: the governor sheds it with a typed
        // budget rejection instead of letting it rot at the EDF head.
        let giant_bytes = sim::request_bytes(&cfg(), &Request::prefill(0, 512, 0, 0));
        let c = ServeConfig {
            mem_budget_bytes: sim::weight_bytes() + giant_bytes + giant_bytes / 2,
            mem_high_permille: 700,
            ..cfg()
        };
        // Urgent on arrival (deadline == full-rung service), so the
        // lazy-admission reserve rule does not defer it: it is admitted
        // at t=0 and pins occupancy at Critical while it runs.
        let g1 = Request::prefill(0, 512, 0, 4_096);
        let g2 = Request::prefill(1, 512, 50, 4_146);
        let plans = plan_continuous(&c, &[g1, g2]);
        assert!(matches!(plans[0].plan.planned, Planned::Serve { .. }), "{:?}", plans[0]);
        assert!(
            matches!(plans[1].plan.planned, Planned::RejectBudget { required_bytes }
                if required_bytes > c.mem_budget_bytes),
            "{:?}",
            plans[1]
        );
    }

    #[test]
    fn governor_forces_lower_rungs_at_critical_pressure() {
        // Two urgent giants (deadline == full-rung service, so the
        // lazy-admission reserve cannot defer them) push occupancy past
        // the default 850‰ mark. An urgent small request dispatched
        // under that pressure gets its ladder budget halved:
        // PaperDefault instead of the Full rung its deadline would
        // normally buy.
        let c = cfg();
        let g1 = Request::prefill(0, 512, 0, 4_096);
        let g2 = Request::prefill(1, 512, 0, 4_096);
        let small = Request::prefill(2, 64, 5, 100);
        let governed = plan_continuous(&c, &[g1.clone(), g2.clone(), small.clone()]);
        assert!(matches!(governed[2].plan.planned, Planned::Serve { .. }), "{:?}", governed[2]);
        assert_eq!(
            governed[2].plan.rung,
            DegradationRung::PaperDefault,
            "critical pressure halves the dispatch budget"
        );
        let parked = ServeConfig {
            mem_low_permille: 1000,
            mem_high_permille: 1000,
            ..cfg()
        };
        let ungoverned = plan_continuous(&parked, &[g1, g2, small]);
        assert!(matches!(ungoverned[2].plan.planned, Planned::Serve { .. }));
        assert_eq!(ungoverned[2].plan.rung, DegradationRung::Full);
    }

    #[test]
    fn lazy_admission_keeps_memory_reserve_for_urgent_arrivals() {
        // A slack-rich giant (deadline far beyond its full-rung
        // service) may be admitted early only while it takes at most
        // half the free memory; a second giant must wait even though it
        // would fit, keeping headroom for urgent arrivals. An urgent
        // small request then slips straight in past the deferred giant.
        let c = cfg();
        let g1 = Request::prefill(0, 512, 0, 1_000_000);
        let g2 = Request::prefill(1, 512, 1, 1_000_000);
        let urgent = Request::prefill(2, 96, 2, 338);
        let plans = plan_continuous(&c, &[g1, g2, urgent]);
        for p in &plans {
            assert!(matches!(p.plan.planned, Planned::Serve { .. }), "{p:?}");
        }
        assert!(
            plans[2].plan.finish_ms <= 2 + 338,
            "urgent request served within its deadline, not behind the giants"
        );
        assert!(
            plans[1].plan.start_ms >= plans[0].plan.finish_ms.min(plans[2].plan.finish_ms),
            "second giant was deferred, not admitted alongside the first"
        );
    }
}
