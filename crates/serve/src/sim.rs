//! Virtual-time admission simulation.
//!
//! All *scheduling* decisions — admission, queueing, the degradation
//! rung, retries, backoff, and which cancellation (if any) wins — are
//! made here on a deterministic virtual clock, **before** any model
//! work runs. The real execution phase then runs the admitted requests
//! in parallel on the worker pool and only fills in bit-deterministic
//! measurements (the CRA α flags). Real wall-clock time never
//! influences an outcome, so the ledger is bit-identical at every
//! `SA_THREADS` setting — the property the chaos soak asserts.
//!
//! The simulated server has [`slots`](crate::ServeConfig::slots)
//! concurrent-execution slots and a bounded FIFO queue. Per arrival:
//!
//! 1. free every slot whose occupant finished by now, handing freed
//!    slots to queued requests (FIFO, at the freeing instant);
//! 2. a free slot starts the request, a full queue rejects it with
//!    [`Overloaded`](sa_tensor::SaError::Overloaded);
//! 3. at start, the degradation ladder picks the highest rung whose
//!    projected cost fits the remaining deadline budget, and the
//!    admission memory model (scaled ChatGLM2-6B footprints against
//!    `SA_MEM_BUDGET`) either admits or rejects with
//!    [`BudgetExceeded`](sa_tensor::SaError::BudgetExceeded);
//! 4. transient faults cost failed attempts plus seeded-jitter
//!    exponential backoff; the earliest of caller-cancel, deadline,
//!    and completion decides the planned outcome.

use crate::events::{EventKind, EventLog};
use crate::{Request, ServeConfig};
use sa_core::DegradationRung;
use sa_perf::memory::{prefill_footprint, PrefillStyle};
use sa_perf::ttft::ModelGeometry;
use sa_tensor::splitmix64;
use std::collections::VecDeque;

/// What the simulation decided should happen to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Planned {
    /// Runs to completion after `fails` failed attempts (0 = first try).
    Serve { fails: u64 },
    /// Every attempt up to the retry budget fails; the request errors out.
    FailPermanent { fails: u64 },
    /// The caller cancels before completion.
    CancelCaller,
    /// The deadline expires mid-run.
    CancelDeadline,
    /// The deadline expires while still queued — no slot ever ran it.
    ExpireInQueue,
    /// Rejected at arrival: slots and queue both full.
    RejectOverloaded { inflight: usize },
    /// Rejected at start: projected memory exceeds the budget.
    RejectBudget { required_bytes: u64 },
    /// Shed at start: the deadline demands a rung below the tenant's
    /// quality floor, and the floor wins — the request is refused
    /// rather than served with uncertifiable quality.
    ShedQualityFloor,
}

/// One request's simulated schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The planned outcome category.
    pub planned: Planned,
    /// Chosen degradation rung (meaningful only when model work runs).
    pub rung: DegradationRung,
    /// Rungs the ladder walked past, with the reason each was skipped.
    pub skipped: Vec<(DegradationRung, String)>,
    /// Virtual start time (== finish for never-started requests).
    pub start_ms: u64,
    /// Virtual completion / cancellation / rejection time.
    pub finish_ms: u64,
    /// Time spent waiting for a slot.
    pub queue_wait_ms: u64,
    /// Retries performed (failed attempts that were followed by another).
    pub retries: u64,
    /// Total virtual backoff slept between attempts.
    pub backoff_ms: u64,
}

impl Plan {
    /// Whether the plan involves running the model at all.
    pub fn runs_model(&self) -> bool {
        !matches!(
            self.planned,
            Planned::RejectOverloaded { .. }
                | Planned::RejectBudget { .. }
                | Planned::ExpireInQueue
                | Planned::ShedQualityFloor
        )
    }
}

/// A rung's cost factor as an integer per-mille, rounded to nearest.
/// Truncation here would under-project every rung whose factor is not
/// exactly representable in thousandths (e.g. a 0.2999… factor flooring
/// to 299‰), so the ladder's projected costs would silently disagree
/// with the documented factors.
pub fn cost_permille(factor: f64) -> u64 {
    (factor.max(0.0) * 1000.0).round() as u64
}

/// Per-rung projected service time: the prefill part scales with the
/// rung's cost factor, the decode tail does not (decode always runs
/// full attention over the caches). The tail is computed with
/// `saturating_sub`: a request whose prefill estimate meets or exceeds
/// its base estimate must yield a zero tail, not a wrapped ~`u64::MAX`
/// service time that poisons every downstream admission decision.
pub fn service_ms(req: &Request, rung: DegradationRung) -> u64 {
    let permille = cost_permille(rung.cost_factor());
    let prefill = (req.prefill_service_ms() * permille / 1000).max(1);
    prefill + req.base_service_ms().saturating_sub(req.prefill_service_ms())
}

/// Exponential backoff with deterministic jitter for attempt `attempt`
/// of request `id` (virtual milliseconds; nothing sleeps).
pub fn backoff_ms(cfg: &ServeConfig, id: u64, attempt: u64) -> u64 {
    let shift = attempt.min(16) as u32;
    let exp = cfg
        .backoff_base_ms
        .saturating_mul(1u64 << shift)
        .min(cfg.backoff_cap_ms);
    let jitter = if cfg.backoff_base_ms == 0 {
        0
    } else {
        let mut state = cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt;
        splitmix64(&mut state) % cfg.backoff_base_ms
    };
    // A cap near u64::MAX plus jitter must saturate, not wrap to a tiny
    // (or zero) backoff that would defeat the exponential schedule.
    exp.saturating_add(jitter)
}

/// The per-request device bytes of the admission memory model: KV cache
/// plus peak activations for a chunked prefill of the scaled-up request
/// on ChatGLM2-6B. Weights are shared and counted once, by the caller.
pub fn request_bytes(cfg: &ServeConfig, req: &Request) -> u64 {
    let scale = cfg.tokens_per_synthetic.max(1) as usize;
    let fp = prefill_footprint(
        &ModelGeometry::chatglm2_6b(),
        req.seq_len.saturating_mul(scale),
        1,
        1,
        PrefillStyle::Chunked(cfg.chunk_size.max(1) * scale),
    );
    fp.kv_cache_bytes + fp.activation_bytes + fp.score_matrix_bytes
}

/// The shared weight bytes of the admission memory model.
pub fn weight_bytes() -> u64 {
    prefill_footprint(
        &ModelGeometry::chatglm2_6b(),
        1024,
        1,
        1,
        PrefillStyle::Chunked(1024),
    )
    .weights_bytes
}

/// Walks the ladder top-down and returns the highest rung whose
/// projected cost fits `remaining_ms`, plus the skipped rungs. When
/// even the bottom rung does not fit, the bottom rung is chosen anyway
/// (the deadline will then expire mid-run — explicitly, in the plan).
pub fn choose_rung(
    req: &Request,
    remaining_ms: u64,
) -> (DegradationRung, Vec<(DegradationRung, String)>) {
    match choose_rung_floored(req, remaining_ms, DegradationRung::ALL.len() - 1) {
        Some(choice) => choice,
        // Unreachable: with the full ladder available the floored walk
        // always resolves (the bottom rung runs anyway). Resolve
        // defensively rather than panicking.
        None => (DegradationRung::WindowOnly, Vec::new()),
    }
}

/// [`choose_rung`] restricted to rungs `0..=max_rung_index` — the
/// tenant's quality floor. Returns `None` when no permitted rung fits
/// `remaining_ms` and the floor forbids the run-anyway bottom rung:
/// the floor wins and the request must be shed
/// ([`Planned::ShedQualityFloor`]). A floor admitting the whole ladder
/// (`max_rung_index == ALL.len() - 1`) reproduces [`choose_rung`]'s
/// behavior exactly, including running the bottom rung over-deadline.
pub fn choose_rung_floored(
    req: &Request,
    remaining_ms: u64,
    max_rung_index: usize,
) -> Option<(DegradationRung, Vec<(DegradationRung, String)>)> {
    let max_rung_index = max_rung_index.min(DegradationRung::ALL.len() - 1);
    let mut skipped = Vec::new();
    for rung in &DegradationRung::ALL[..=max_rung_index] {
        let cost = service_ms(req, *rung);
        if cost <= remaining_ms {
            return Some((*rung, skipped));
        }
        skipped.push((
            *rung,
            format!("projected {cost} ms exceeds remaining {remaining_ms} ms"),
        ));
    }
    if max_rung_index == DegradationRung::ALL.len() - 1 {
        // Unfloored bottom rung still runs; drop its "skipped" entry.
        skipped.pop();
        return Some((DegradationRung::WindowOnly, skipped));
    }
    None
}

struct Active {
    finish_ms: u64,
    id: u64,
    bytes: u64,
    /// Index into the request slice, for terminal-event emission at
    /// slot-free time.
    idx: usize,
}

enum StartResult {
    /// Slot consumed until `finish_ms`.
    Started(Plan, u64 /* bytes */),
    /// Plan resolved without consuming the slot.
    Resolved(Plan),
}

/// The typed reason string for a terminal event of `plan`.
fn terminal_reason(plan: &Plan, budget: u64) -> String {
    match &plan.planned {
        Planned::Serve { fails: 0 } => String::new(),
        Planned::Serve { fails } => format!("served after {fails} failed attempts"),
        Planned::FailPermanent { fails } => {
            format!("attempt budget exhausted after {fails} failed attempts")
        }
        Planned::CancelCaller => "caller cancelled".to_string(),
        Planned::CancelDeadline => "deadline expired mid-run".to_string(),
        Planned::ExpireInQueue => "deadline expired in queue".to_string(),
        Planned::RejectOverloaded { inflight } => {
            format!("overloaded: {inflight} in flight or queued")
        }
        Planned::RejectBudget { required_bytes } => {
            format!("required {required_bytes} bytes exceeds budget {budget}")
        }
        Planned::ShedQualityFloor => {
            "quality floor: no permitted rung fits the remaining deadline".to_string()
        }
    }
}

/// Emits the admission-side events of a freshly started plan:
/// `Admitted` (with the reservation delta), `Dispatched`, and — when the
/// ladder degraded or retries are planned — `RungDegraded` / `Retried`.
fn push_start_events(
    log: &mut EventLog,
    req: &Request,
    plan: &Plan,
    bytes: u64,
    mem_in_use: u64,
) {
    let rung = plan.rung.to_string();
    log.push(
        plan.start_ms,
        req.id,
        req.tenant,
        EventKind::Admitted,
        "",
        bytes,
        mem_in_use,
        String::new(),
    );
    log.push(
        plan.start_ms,
        req.id,
        req.tenant,
        EventKind::Dispatched,
        &rung,
        0,
        mem_in_use,
        format!("queue wait {} ms", plan.queue_wait_ms),
    );
    if !plan.skipped.is_empty() {
        log.push(
            plan.start_ms,
            req.id,
            req.tenant,
            EventKind::RungDegraded,
            &rung,
            0,
            mem_in_use,
            format!("{} rungs skipped under deadline budget", plan.skipped.len()),
        );
    }
    if plan.retries > 0 {
        log.push(
            plan.start_ms,
            req.id,
            req.tenant,
            EventKind::Retried,
            &rung,
            0,
            mem_in_use,
            format!(
                "{} retries planned, {} ms backoff",
                plan.retries, plan.backoff_ms
            ),
        );
    }
}

/// Simulates the whole batch and returns one [`Plan`] per request,
/// aligned with the input order.
pub fn plan_batch(cfg: &ServeConfig, requests: &[Request]) -> Vec<Plan> {
    plan_batch_with_events(cfg, requests).0
}

/// [`plan_batch`] plus the `sa.events.v1` lifecycle event log the
/// simulation emitted (see [`crate::events`]). The log is produced by
/// this serial planner, so its serialized bytes are identical at every
/// `SA_THREADS` setting.
pub fn plan_batch_with_events(cfg: &ServeConfig, requests: &[Request]) -> (Vec<Plan>, EventLog) {
    let weights = weight_bytes();
    let mut log = EventLog::new(cfg.seed);
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (requests[i].arrival_ms, requests[i].id));

    let mut active: Vec<Active> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut plans: Vec<Option<Plan>> = vec![None; requests.len()];

    let drain_to = |upto: u64,
                    active: &mut Vec<Active>,
                    queue: &mut VecDeque<usize>,
                    plans: &mut Vec<Option<Plan>>,
                    log: &mut EventLog| {
        loop {
            let Some(pos) = active
                .iter()
                .enumerate()
                .filter(|(_, a)| a.finish_ms <= upto)
                .min_by_key(|(_, a)| (a.finish_ms, a.id))
                .map(|(p, _)| p)
            else {
                break;
            };
            let freed = active.swap_remove(pos);
            let freed_at = freed.finish_ms;
            let after: u64 = weights + active.iter().map(|a| a.bytes).sum::<u64>();
            if let Some(plan) = &plans[freed.idx] {
                let req = &requests[freed.idx];
                let rung = if plan.runs_model() {
                    plan.rung.to_string()
                } else {
                    String::new()
                };
                log.push(
                    freed_at,
                    req.id,
                    req.tenant,
                    EventKind::terminal_for(&plan.planned),
                    &rung,
                    0,
                    after + freed.bytes,
                    terminal_reason(plan, cfg.mem_budget_bytes),
                );
            }
            log.push(
                freed_at,
                freed.id,
                requests[freed.idx].tenant,
                EventKind::Released,
                "",
                freed.bytes,
                after,
                String::new(),
            );
            // The freed slot serves the queue head; requests that
            // resolve without running (expired, budget-rejected) keep
            // the slot free for the next in line.
            while let Some(qi) = queue.pop_front() {
                let in_use: u64 = weights + active.iter().map(|a| a.bytes).sum::<u64>();
                let req = &requests[qi];
                match try_start(cfg, req, freed_at, in_use, cfg.mem_budget_bytes) {
                    StartResult::Started(plan, bytes) => {
                        push_start_events(log, req, &plan, bytes, in_use + bytes);
                        active.push(Active {
                            finish_ms: plan.finish_ms,
                            id: req.id,
                            bytes,
                            idx: qi,
                        });
                        plans[qi] = Some(plan);
                        break;
                    }
                    StartResult::Resolved(plan) => {
                        log.push(
                            plan.finish_ms,
                            req.id,
                            req.tenant,
                            EventKind::terminal_for(&plan.planned),
                            "",
                            0,
                            in_use,
                            terminal_reason(&plan, cfg.mem_budget_bytes),
                        );
                        plans[qi] = Some(plan);
                    }
                }
            }
        }
    };

    for &i in &order {
        let req = &requests[i];
        let now = req.arrival_ms;
        drain_to(now, &mut active, &mut queue, &mut plans, &mut log);
        if active.len() < cfg.slots() {
            let in_use: u64 = weights + active.iter().map(|a| a.bytes).sum::<u64>();
            match try_start(cfg, req, now, in_use, cfg.mem_budget_bytes) {
                StartResult::Started(plan, bytes) => {
                    push_start_events(&mut log, req, &plan, bytes, in_use + bytes);
                    active.push(Active {
                        finish_ms: plan.finish_ms,
                        id: req.id,
                        bytes,
                        idx: i,
                    });
                    plans[i] = Some(plan);
                }
                StartResult::Resolved(plan) => {
                    log.push(
                        plan.finish_ms,
                        req.id,
                        req.tenant,
                        EventKind::terminal_for(&plan.planned),
                        "",
                        0,
                        in_use,
                        terminal_reason(&plan, cfg.mem_budget_bytes),
                    );
                    plans[i] = Some(plan);
                }
            }
        } else if queue.len() < cfg.max_queue {
            queue.push_back(i);
            let in_use: u64 = weights + active.iter().map(|a| a.bytes).sum::<u64>();
            log.push(
                now,
                req.id,
                req.tenant,
                EventKind::Enqueued,
                "",
                0,
                in_use,
                format!("queue depth {}", queue.len()),
            );
        } else {
            let plan = Plan {
                planned: Planned::RejectOverloaded {
                    inflight: active.len() + queue.len(),
                },
                rung: DegradationRung::Full,
                skipped: Vec::new(),
                start_ms: now,
                finish_ms: now,
                queue_wait_ms: 0,
                retries: 0,
                backoff_ms: 0,
            };
            let in_use: u64 = weights + active.iter().map(|a| a.bytes).sum::<u64>();
            log.push(
                now,
                req.id,
                req.tenant,
                EventKind::Rejected,
                "",
                0,
                in_use,
                terminal_reason(&plan, cfg.mem_budget_bytes),
            );
            plans[i] = Some(plan);
        }
    }
    drain_to(u64::MAX, &mut active, &mut queue, &mut plans, &mut log);

    let plans = plans
        .into_iter()
        .enumerate()
        .map(|(i, p)| match p {
            Some(p) => p,
            // Unreachable by construction: every request either starts,
            // queues (drained at the end), or is rejected. Resolve
            // defensively rather than panicking.
            None => Plan {
                planned: Planned::ExpireInQueue,
                rung: DegradationRung::Full,
                skipped: Vec::new(),
                start_ms: requests[i].arrival_ms,
                finish_ms: requests[i].arrival_ms,
                queue_wait_ms: 0,
                retries: 0,
                backoff_ms: 0,
            },
        })
        .collect();
    (plans, log)
}

fn try_start(
    cfg: &ServeConfig,
    req: &Request,
    start_ms: u64,
    in_use_bytes: u64,
    budget: u64,
) -> StartResult {
    let deadline_t = req.arrival_ms + req.deadline_ms;
    let cancel_t = if req.cancel_after_ms > 0 {
        req.arrival_ms + req.cancel_after_ms
    } else {
        u64::MAX
    };
    let queue_wait_ms = start_ms - req.arrival_ms;
    let resolved = |planned: Planned, finish: u64| {
        StartResult::Resolved(Plan {
            planned,
            rung: DegradationRung::Full,
            skipped: Vec::new(),
            start_ms,
            finish_ms: finish,
            queue_wait_ms,
            retries: 0,
            backoff_ms: 0,
        })
    };

    if cancel_t <= start_ms {
        // Cancelled while still queued.
        return resolved(Planned::CancelCaller, start_ms);
    }
    if start_ms >= deadline_t {
        return resolved(Planned::ExpireInQueue, start_ms);
    }

    let remaining = deadline_t - start_ms;
    let Some((rung, skipped)) =
        choose_rung_floored(req, remaining, cfg.max_rung_index_for(req.tenant))
    else {
        return resolved(Planned::ShedQualityFloor, start_ms);
    };

    let bytes = request_bytes(cfg, req);
    if in_use_bytes + bytes > budget {
        return resolved(
            Planned::RejectBudget {
                required_bytes: in_use_bytes + bytes,
            },
            start_ms,
        );
    }

    let service = service_ms(req, rung);
    let fail_ms = (service / 8).max(1);
    let attempts_budget = cfg.max_retries as u64 + 1;
    let (planned, retries, backoff_total, duration) = if req.fault_fails >= attempts_budget {
        // Permanent: every attempt in the budget fails; backoff between
        // attempts, none after the last.
        let fails = attempts_budget;
        let backoff: u64 = (0..fails - 1).map(|a| backoff_ms(cfg, req.id, a)).sum();
        (
            Planned::FailPermanent { fails },
            fails - 1,
            backoff,
            fails * fail_ms + backoff,
        )
    } else if req.fault_fails > 0 {
        let fails = req.fault_fails;
        let backoff: u64 = (0..fails).map(|a| backoff_ms(cfg, req.id, a)).sum();
        (
            Planned::Serve { fails },
            fails,
            backoff,
            fails * fail_ms + backoff + service,
        )
    } else {
        (Planned::Serve { fails: 0 }, 0, 0, service)
    };

    let projected = start_ms + duration;
    let (planned, finish, retries, backoff_total) =
        if cancel_t < projected && cancel_t < deadline_t {
            (Planned::CancelCaller, cancel_t, 0, 0)
        } else if projected > deadline_t {
            (Planned::CancelDeadline, deadline_t, 0, 0)
        } else {
            (planned, projected, retries, backoff_total)
        };

    StartResult::Started(
        Plan {
            planned,
            rung,
            skipped,
            start_ms,
            finish_ms: finish,
            queue_wait_ms,
            retries,
            backoff_ms: backoff_total,
        },
        bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed_workload;

    fn cfg() -> ServeConfig {
        ServeConfig::default()
    }

    #[test]
    fn cost_permille_rounds_to_nearest() {
        // 0.3 is not exactly representable: 0.3 * 1000.0 lands a hair
        // below 300 and truncation used to floor it to 299‰.
        assert_eq!(cost_permille(0.3), 300);
        assert_eq!(cost_permille(0.2999999999), 300);
        assert_eq!(cost_permille(0.0004), 0);
        assert_eq!(cost_permille(0.0006), 1);
        assert_eq!(cost_permille(-1.0), 0, "negative factors clamp to zero");
        for rung in DegradationRung::ALL {
            let exact = (rung.cost_factor() * 1000.0).round() as u64;
            assert_eq!(cost_permille(rung.cost_factor()), exact, "{rung}");
        }
    }

    #[test]
    fn service_ms_never_underflows_when_prefill_meets_base() {
        // Prefill-only requests have prefill_service_ms == base_service_ms;
        // the decode tail must be exactly zero, never a wrapped u64.
        let req = Request::prefill(0, 128, 0, 100);
        assert_eq!(req.prefill_service_ms(), req.base_service_ms());
        for rung in DegradationRung::ALL {
            let s = service_ms(&req, rung);
            assert!(
                s <= req.base_service_ms(),
                "{rung}: service {s} exceeds base {} — tail underflowed",
                req.base_service_ms()
            );
            assert!(s >= 1);
        }
    }

    #[test]
    fn backoff_saturates_instead_of_wrapping() {
        let c = ServeConfig {
            backoff_base_ms: u64::MAX / 2,
            backoff_cap_ms: u64::MAX,
            ..cfg()
        };
        // cap + jitter would wrap without saturating_add.
        for attempt in 0..4 {
            let b = backoff_ms(&c, 1, attempt);
            assert!(b >= c.backoff_base_ms, "attempt {attempt} wrapped to {b}");
        }
    }

    #[test]
    fn ladder_degrades_with_deadline_pressure() {
        let req = Request::prefill(0, 128, 0, 0);
        let base = req.base_service_ms();
        let (r, skipped) = choose_rung(&req, 2 * base);
        assert_eq!(r, DegradationRung::Full);
        assert!(skipped.is_empty());
        let (r, skipped) = choose_rung(&req, base / 3);
        assert_eq!(r, DegradationRung::PaperDefault);
        assert_eq!(skipped.len(), 1);
        let (r, _) = choose_rung(&req, base / 8);
        assert_eq!(r, DegradationRung::Tight);
        let (r, skipped) = choose_rung(&req, 1);
        assert_eq!(r, DegradationRung::WindowOnly, "bottom rung always runs");
        assert_eq!(skipped.len(), 3);
    }

    #[test]
    fn floored_ladder_sheds_instead_of_dropping_below_the_floor() {
        let req = Request::prefill(0, 128, 0, 0);
        let base = req.base_service_ms();
        let tight = DegradationRung::Tight.index();
        // Plenty of budget: the floor is invisible.
        let (r, _) = choose_rung_floored(&req, 2 * base, tight).unwrap();
        assert_eq!(r, DegradationRung::Full);
        // Moderate pressure lands on a permitted rung.
        let (r, _) = choose_rung_floored(&req, base / 8, tight).unwrap();
        assert_eq!(r, DegradationRung::Tight);
        // Brutal pressure: only WindowOnly would fit, the floor forbids
        // it, and the walk refuses instead of running anyway.
        assert!(choose_rung_floored(&req, 1, tight).is_none());
        // The unfloored walk keeps the run-anyway bottom behavior.
        let (r, skipped) = choose_rung_floored(&req, 1, DegradationRung::ALL.len() - 1).unwrap();
        assert_eq!(r, DegradationRung::WindowOnly);
        assert_eq!(skipped.len(), 3);
        // Out-of-range indices clamp to the full ladder.
        assert!(choose_rung_floored(&req, 1, 99).is_some());
    }

    #[test]
    fn plan_batch_sheds_floored_tenants_under_deadline_pressure() {
        let mut c = cfg();
        c.quality_floors.push(crate::TenantFloor {
            tenant: 0,
            max_rung_index: DegradationRung::Tight.index(),
            max_uncertified_permille: 0,
        });
        // tenant = id % 3: ids 0 and 3 are floored, 1/2/4 are not.
        // Deadline of 2 ms forces the unfloored ladder to WindowOnly.
        let reqs: Vec<Request> = (0..5)
            .map(|id| {
                let mut r = Request::prefill(id, 224, id * 10_000, 2);
                r.tenant = id % 3;
                r
            })
            .collect();
        let plans = plan_batch(&c, &reqs);
        for p in plans.iter().step_by(3) {
            assert!(
                matches!(p.planned, Planned::ShedQualityFloor),
                "floored tenant must shed, got {:?}",
                p.planned
            );
            assert!(!p.runs_model());
        }
        assert!(
            plans
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 != 0)
                .all(|(_, p)| p.rung == DegradationRung::WindowOnly),
            "unfloored tenants still bottom the ladder"
        );
    }

    #[test]
    fn overload_rejects_when_slots_and_queue_full() {
        let c = ServeConfig {
            max_inflight: 1,
            max_queue: 1,
            ..cfg()
        };
        // Three simultaneous arrivals: one runs, one queues, one bounces.
        let reqs: Vec<Request> = (0..3)
            .map(|id| Request::prefill(id, 128, 0, 100_000))
            .collect();
        let plans = plan_batch(&c, &reqs);
        assert!(matches!(plans[0].planned, Planned::Serve { .. }));
        assert!(matches!(plans[1].planned, Planned::Serve { .. }));
        assert!(plans[1].queue_wait_ms > 0, "second request waited");
        assert!(matches!(
            plans[2].planned,
            Planned::RejectOverloaded { inflight: 2 }
        ));
    }

    #[test]
    fn budget_rejects_oversized_concurrency() {
        // Two scaled 1M-token prefills fit next to the weights on one
        // A100-80GB; a third concurrent one does not.
        let c = cfg();
        let one = request_bytes(&c, &Request::prefill(0, 512, 0, 0));
        assert!(weight_bytes() + 3 * one > c.mem_budget_bytes);
        assert!(weight_bytes() + 2 * one <= c.mem_budget_bytes);
        let reqs: Vec<Request> = (0..3)
            .map(|id| Request::prefill(id, 512, 0, 100_000))
            .collect();
        let plans = plan_batch(&c, &reqs);
        assert!(matches!(plans[0].planned, Planned::Serve { .. }));
        assert!(matches!(plans[1].planned, Planned::Serve { .. }));
        assert!(
            matches!(plans[2].planned, Planned::RejectBudget { required_bytes }
                if required_bytes > c.mem_budget_bytes)
        );
    }

    #[test]
    fn deadline_expires_in_queue() {
        let c = ServeConfig {
            max_inflight: 1,
            ..cfg()
        };
        let mut long = Request::prefill(0, 512, 0, 1_000_000);
        long.fault_fails = 0;
        // Arrives immediately behind, deadline far shorter than the
        // first request's service time.
        let short = Request::prefill(1, 48, 1, 3);
        let plans = plan_batch(&c, &[long, short]);
        assert!(matches!(plans[1].planned, Planned::ExpireInQueue));
    }

    #[test]
    fn transient_fault_retries_then_serves_with_backoff() {
        let c = cfg();
        let mut req = Request::prefill(3, 64, 0, 1_000_000);
        req.fault_fails = 2;
        let plans = plan_batch(&c, &[req]);
        assert!(matches!(plans[0].planned, Planned::Serve { fails: 2 }));
        assert_eq!(plans[0].retries, 2);
        assert!(plans[0].backoff_ms >= 2 * c.backoff_base_ms);
        // Jitter is deterministic in (seed, id, attempt).
        assert_eq!(backoff_ms(&c, 3, 0), backoff_ms(&c, 3, 0));
        assert_ne!(backoff_ms(&c, 3, 0), backoff_ms(&c, 4, 0));
    }

    #[test]
    fn permanent_fault_exhausts_retry_budget() {
        let c = cfg();
        let mut req = Request::prefill(0, 64, 0, 1_000_000);
        req.fault_fails = 99;
        let plans = plan_batch(&c, &[req]);
        assert!(
            matches!(plans[0].planned, Planned::FailPermanent { fails }
                if fails == c.max_retries as u64 + 1)
        );
    }

    #[test]
    fn caller_cancel_beats_completion() {
        let c = cfg();
        let mut req = Request::prefill(0, 512, 0, 1_000_000);
        req.cancel_after_ms = 10;
        let plans = plan_batch(&c, &[req]);
        assert!(matches!(plans[0].planned, Planned::CancelCaller));
        assert_eq!(plans[0].finish_ms, 10);
    }

    #[test]
    fn plan_batch_is_deterministic_and_total() {
        let c = cfg();
        let reqs = mixed_workload(11, 48);
        let a = plan_batch(&c, &reqs);
        let b = plan_batch(&c, &reqs);
        assert_eq!(a, b);
        assert_eq!(a.len(), reqs.len());
        // Every planned category that the chaos soak exercises shows up.
        assert!(a.iter().any(|p| matches!(p.planned, Planned::Serve { fails: 0 })));
        assert!(a.iter().any(|p| matches!(p.planned, Planned::Serve { fails } if fails > 0)));
        assert!(a.iter().any(|p| matches!(p.planned, Planned::CancelDeadline)));
    }
}
