//! Scheduler configuration and its environment overrides.
//!
//! These knobs are operator-facing and overridable from the
//! environment (mirroring `SA_THREADS` / `SA_FAULT` / `SA_TRACE`):
//!
//! | variable | meaning | accepted values |
//! |---|---|---|
//! | `SA_DEADLINE_MS` | default per-request deadline | integer milliseconds |
//! | `SA_MEM_BUDGET` | device memory budget for admission | bytes, with optional `K`/`M`/`G` suffix |
//! | `SA_MAX_INFLIGHT` | concurrent-request slots | integer ≥ 1 |
//! | `SA_RECOVERY` | resume faulted attempts from checkpoints | `1`/`on` (default), `0`/`off`/`false` |
//! | `SA_MEM_LOW` | memory-pressure low watermark | permille of the budget (default 600) |
//! | `SA_MEM_HIGH` | memory-pressure high watermark | permille of the budget (default 850) |
//! | `SA_CANARY` | shadow-canary denominator: 1 in N served requests runs a dense reference prefill | integer N (default 32, `0` disables) |
//!
//! Everything else (retry policy, backoff shape, chunk size, the virtual
//! token scale) is code-level configuration on [`ServeConfig`].

use sa_core::DegradationRung;
use sa_perf::memory::A100_BYTES;

/// A per-tenant quality floor: the lowest degradation rung the serving
/// stack may assign to the tenant's requests, plus a cap on how much of
/// the tenant's traffic may land on uncertified rungs at all.
///
/// A request that cannot be served at or above the floor is shed with a
/// typed [`QualityFloor`](sa_tensor::SaError::QualityFloor) error — the
/// ladder and the memory governor never trade a floored tenant's quality
/// below its contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantFloor {
    /// The tenant this floor applies to.
    pub tenant: u64,
    /// Deepest permitted ladder rung (inclusive), as an index into
    /// [`DegradationRung::ALL`] — e.g. `Tight.index()` forbids
    /// `WindowOnly`.
    pub max_rung_index: usize,
    /// Cap on the tenant's uncertified-rung tokens
    /// (rungs where [`DegradationRung::can_certify_alpha`] is false), as
    /// a permille of the tenant's total dispatched tokens over a
    /// planning run. `0` forbids uncertified rungs outright; `1000`
    /// disables the cap.
    pub max_uncertified_permille: u64,
}

impl TenantFloor {
    /// True when `rung` is at or above this floor.
    pub fn permits(&self, rung: DegradationRung) -> bool {
        rung.index() <= self.max_rung_index
    }

    /// The deepest rung this floor permits.
    pub fn min_rung(&self) -> DegradationRung {
        DegradationRung::ALL[self.max_rung_index.min(DegradationRung::ALL.len() - 1)]
    }
}

/// All tunables of the [`Scheduler`](crate::Scheduler).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for every scheduler-internal random draw (backoff jitter)
    /// and for the synthetic model weights.
    pub seed: u64,
    /// Concurrent-request slots (`SA_MAX_INFLIGHT`). Clamped to ≥ 1.
    pub max_inflight: usize,
    /// Requests allowed to wait for a slot before new arrivals are
    /// rejected with [`Overloaded`](sa_tensor::SaError::Overloaded).
    pub max_queue: usize,
    /// Device memory budget in bytes for admission control
    /// (`SA_MEM_BUDGET`). Defaults to one A100-80GB.
    pub mem_budget_bytes: u64,
    /// Deadline applied to requests that do not carry their own
    /// (`SA_DEADLINE_MS`), in virtual milliseconds after arrival.
    pub default_deadline_ms: u64,
    /// Sequence chunk size for chunked prefill — also the cancellation
    /// granularity: a tripped token stops a prefill within one chunk.
    pub chunk_size: usize,
    /// Maximum retry attempts after a transient worker fault.
    pub max_retries: usize,
    /// First-retry backoff, virtual milliseconds.
    pub backoff_base_ms: u64,
    /// Cap on the exponential backoff, virtual milliseconds.
    pub backoff_cap_ms: u64,
    /// The near-lossless CRA target recorded in every
    /// [`DegradationReport`](sa_core::DegradationReport).
    pub alpha_target: f32,
    /// How many real-model tokens one synthetic token stands for in the
    /// memory model (the synthetic transformer runs tiny sequences; the
    /// admission footprint scales them up to paper-sized contexts).
    pub tokens_per_synthetic: u64,
    /// Continuous batching: bound on the admission queue of the
    /// open-loop scheduler. Arrivals beyond it are rejected with
    /// [`Overloaded`](sa_tensor::SaError::Overloaded). Deeper than
    /// `max_queue` because continuous batching drains at chunk
    /// granularity instead of holding slots for whole requests.
    pub max_pending: usize,
    /// Continuous batching: per-tenant token-bucket sustained refill
    /// rate, synthetic tokens per virtual second (clamped ≥ 1 token/s).
    /// Prefill chunks debit `chunk_size` tokens, decode steps 1 token.
    pub tenant_rate_tokens_per_sec: u64,
    /// Continuous batching: per-tenant token-bucket capacity (burst
    /// allowance), synthetic tokens.
    pub tenant_burst_tokens: u64,
    /// Crash recovery (`SA_RECOVERY`): when `true`, a faulted attempt
    /// resumes from its last chunk-boundary checkpoint (bounded
    /// recompute of at most one chunk); when `false`, it retries from
    /// scratch — PR-7 behavior, kept as the `recovery_bench` baseline.
    pub recovery_enabled: bool,
    /// Memory-pressure low watermark (`SA_MEM_LOW`), permille of
    /// `mem_budget_bytes`. Occupancy at or above it is `Elevated`:
    /// non-urgent admissions defer and in-flight sessions start
    /// shedding low-mass KV.
    pub mem_low_permille: u64,
    /// Memory-pressure high watermark (`SA_MEM_HIGH`), permille of
    /// `mem_budget_bytes`. Occupancy at or above it is `Critical`:
    /// new admissions are forced onto lower degradation rungs.
    pub mem_high_permille: u64,
    /// Shadow-canary denominator (`SA_CANARY`): one in this many served
    /// requests additionally runs a dense reference prefill and compares
    /// true CRA / output error against the sparse path. Selection is a
    /// pure function of `(seed, request id)`, so canaries never change
    /// scheduling decisions and the set is identical at any `SA_THREADS`.
    /// `0` disables canaries.
    pub canary_denominator: u64,
    /// Per-tenant quality floors. Tenants not listed have no floor:
    /// the ladder may degrade them all the way to `WindowOnly`.
    pub quality_floors: Vec<TenantFloor>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0x5EED_5EED,
            max_inflight: 4,
            max_queue: 8,
            mem_budget_bytes: A100_BYTES,
            default_deadline_ms: 400,
            chunk_size: 32,
            max_retries: 2,
            backoff_base_ms: 8,
            backoff_cap_ms: 64,
            alpha_target: 0.95,
            tokens_per_synthetic: 2048,
            max_pending: 64,
            tenant_rate_tokens_per_sec: 2048,
            tenant_burst_tokens: 8192,
            recovery_enabled: true,
            mem_low_permille: 600,
            mem_high_permille: 850,
            canary_denominator: 32,
            quality_floors: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// Applies the `SA_DEADLINE_MS` / `SA_MEM_BUDGET` / `SA_MAX_INFLIGHT`
    /// environment overrides on top of `self`. Unset or unparseable
    /// variables leave the corresponding field untouched.
    #[must_use]
    pub fn from_env(mut self) -> Self {
        if let Some(ms) = env_u64("SA_DEADLINE_MS") {
            self.default_deadline_ms = ms;
        }
        if let Some(bytes) = env_bytes("SA_MEM_BUDGET") {
            self.mem_budget_bytes = bytes;
        }
        if let Some(n) = env_u64("SA_MAX_INFLIGHT") {
            self.max_inflight = (n as usize).max(1);
        }
        if let Ok(raw) = std::env::var("SA_RECOVERY") {
            let raw = raw.trim();
            if !raw.is_empty() {
                self.recovery_enabled = raw != "0" && raw != "off" && raw != "false";
            }
        }
        if let Some(p) = env_u64("SA_MEM_LOW") {
            self.mem_low_permille = p.min(1000);
        }
        if let Some(p) = env_u64("SA_MEM_HIGH") {
            self.mem_high_permille = p.min(1000);
        }
        if let Some(n) = env_u64("SA_CANARY") {
            self.canary_denominator = n;
        }
        self
    }

    /// `max_inflight` with the ≥ 1 clamp applied.
    pub fn slots(&self) -> usize {
        self.max_inflight.max(1)
    }

    /// The quality floor configured for `tenant`, if any.
    pub fn floor_for(&self, tenant: u64) -> Option<&TenantFloor> {
        self.quality_floors.iter().find(|f| f.tenant == tenant)
    }

    /// The deepest ladder-rung index `tenant` may be degraded to
    /// (`DegradationRung::ALL.len() - 1`, i.e. no floor, for tenants
    /// without one).
    pub fn max_rung_index_for(&self, tenant: u64) -> usize {
        self.floor_for(tenant)
            .map(|f| f.max_rung_index.min(DegradationRung::ALL.len() - 1))
            .unwrap_or(DegradationRung::ALL.len() - 1)
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Parses a byte count with an optional binary suffix: `123456`,
/// `512M`, `48G`, `100K` (case-insensitive).
pub(crate) fn parse_bytes(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    let (digits, mult) = match raw.chars().last()? {
        'k' | 'K' => (&raw[..raw.len() - 1], 1u64 << 10),
        'm' | 'M' => (&raw[..raw.len() - 1], 1u64 << 20),
        'g' | 'G' => (&raw[..raw.len() - 1], 1u64 << 30),
        _ => (raw, 1),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

fn env_bytes(name: &str) -> Option<u64> {
    parse_bytes(&std::env::var(name).ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.slots() >= 1);
        assert_eq!(c.mem_budget_bytes, A100_BYTES);
        assert!(c.backoff_base_ms <= c.backoff_cap_ms);
        assert!(c.alpha_target > 0.0 && c.alpha_target <= 1.0);
    }

    #[test]
    fn byte_suffixes_parse() {
        assert_eq!(parse_bytes("123456"), Some(123_456));
        assert_eq!(parse_bytes("100K"), Some(100 << 10));
        assert_eq!(parse_bytes("512m"), Some(512 << 20));
        assert_eq!(parse_bytes("48G"), Some(48 << 30));
        assert_eq!(parse_bytes(" 2 G "), Some(2 << 30));
        assert_eq!(parse_bytes("oops"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn env_overrides_apply() {
        // Distinct names to avoid cross-test env races.
        std::env::set_var("SA_DEADLINE_MS", "123");
        std::env::set_var("SA_MEM_BUDGET", "2G");
        std::env::set_var("SA_MAX_INFLIGHT", "0");
        let c = ServeConfig::default().from_env();
        std::env::remove_var("SA_DEADLINE_MS");
        std::env::remove_var("SA_MEM_BUDGET");
        std::env::remove_var("SA_MAX_INFLIGHT");
        assert_eq!(c.default_deadline_ms, 123);
        assert_eq!(c.mem_budget_bytes, 2 << 30);
        assert_eq!(c.max_inflight, 1, "inflight is clamped to >= 1");
    }

    #[test]
    fn recovery_and_watermark_overrides_apply() {
        let c = ServeConfig::default();
        assert!(c.recovery_enabled, "recovery is on by default");
        assert!(c.mem_low_permille < c.mem_high_permille);
        std::env::set_var("SA_RECOVERY", "off");
        std::env::set_var("SA_MEM_LOW", "500");
        std::env::set_var("SA_MEM_HIGH", "2000");
        let c = ServeConfig::default().from_env();
        std::env::remove_var("SA_RECOVERY");
        std::env::remove_var("SA_MEM_LOW");
        std::env::remove_var("SA_MEM_HIGH");
        assert!(!c.recovery_enabled);
        assert_eq!(c.mem_low_permille, 500);
        assert_eq!(c.mem_high_permille, 1000, "permille clamps to 1000");
    }

    #[test]
    fn canary_override_applies() {
        assert_eq!(ServeConfig::default().canary_denominator, 32);
        std::env::set_var("SA_CANARY", "8");
        let c = ServeConfig::default().from_env();
        std::env::remove_var("SA_CANARY");
        assert_eq!(c.canary_denominator, 8);
    }

    #[test]
    fn quality_floors_look_up_by_tenant() {
        let mut c = ServeConfig::default();
        assert!(c.floor_for(0).is_none(), "no floors by default");
        assert_eq!(c.max_rung_index_for(0), DegradationRung::ALL.len() - 1);
        c.quality_floors.push(TenantFloor {
            tenant: 1,
            max_rung_index: DegradationRung::Tight.index(),
            max_uncertified_permille: 0,
        });
        assert!(c.floor_for(1).is_some());
        assert!(c.floor_for(2).is_none());
        assert_eq!(c.max_rung_index_for(1), DegradationRung::Tight.index());

        let floor = c.floor_for(1).unwrap();
        assert!(floor.permits(DegradationRung::Full));
        assert!(floor.permits(DegradationRung::Tight));
        assert!(!floor.permits(DegradationRung::WindowOnly));
        assert_eq!(floor.min_rung(), DegradationRung::Tight);
    }

    #[test]
    fn out_of_range_floor_index_clamps() {
        let f = TenantFloor {
            tenant: 0,
            max_rung_index: 99,
            max_uncertified_permille: 1000,
        };
        assert_eq!(f.min_rung(), DegradationRung::WindowOnly);
        assert!(f.permits(DegradationRung::WindowOnly));
    }
}
