//! # sa-serve
//!
//! Deadline-aware request scheduling for the SampleAttention serving
//! stack: admission control, cooperative cancellation, retry with
//! deterministic backoff, and an adaptive degradation ladder — all on a
//! virtual clock, so every scheduling decision is reproducible and the
//! batch ledger is bit-identical at every `SA_THREADS` setting.
//!
//! ## Architecture
//!
//! - [`ServeConfig`] ([`config`]) — tunables plus the `SA_DEADLINE_MS`,
//!   `SA_MEM_BUDGET`, `SA_MAX_INFLIGHT` environment knobs.
//! - [`Request`] / [`mixed_workload`] ([`request`]) — what arrives:
//!   prefills and decodes with deadlines, caller cancellations, and
//!   transient-fault scripts.
//! - [`sim`] — the virtual-time admission simulation: slots, a bounded
//!   FIFO queue, the scaled ChatGLM2-6B memory model, the degradation
//!   ladder walk, and retry/backoff/cancellation arbitration.
//! - [`Scheduler`] ([`scheduler`]) — executes admitted requests in
//!   parallel on the worker pool: chunked prefills and decode sessions
//!   under per-request [`CancelToken`](sa_tensor::CancelToken)s, with
//!   thread-local fault injection per retry attempt.
//! - [`Ledger`] ([`ledger`]) — one audit record per request; validated
//!   for totality (no request ever lost) and honesty (no silent drop
//!   below the CRA α target).
//! - [`continuous`] — the continuous-batching planner for open-loop
//!   arrival streams: prefill chunks of new requests interleave with
//!   decode steps of in-flight sessions at micro-task granularity,
//!   under per-tenant token-bucket fairness quotas.
//! - [`quality`] — the quality guardrail plane: a seeded fraction of
//!   served requests re-runs as a **shadow canary** against a dense
//!   reference ([`canary_probe`]), a per-head EWMA/CUSUM drift detector
//!   ([`QualityGuard`]) quarantines heads whose coverage estimates go
//!   optimistic (routing them dense via [`GuardedMethod`] until
//!   probation clears), and per-tenant [`TenantFloor`]s keep the
//!   degradation ladder from dropping a tenant below its contracted
//!   quality — the planner sheds instead, typed.
//! - [`slo`] — SLO accounting over a ledger: TTFT/TPOT percentiles,
//!   goodput under deadline, and per-tenant certified-goodput quality
//!   columns, exported as the `sa.slo.v2` artifact.
//! - [`memory`] — the byte-accurate [`MemoryLedger`] with pressure
//!   watermarks; its [`PressureLevel`]s drive the continuous planner's
//!   governor ladder (defer → evict → force lower rungs → shed) and the
//!   execution side's checkpoint-restore reservations.
//! - [`events`] — the telemetry plane: the `sa.events.v1` per-request
//!   lifecycle [`EventLog`] both planners emit, the events↔ledger
//!   conservation validator, and the scheduler [`FlightRecorder`] whose
//!   [`Postmortem`]s capture the decisions leading up to a shed, a
//!   Critical-pressure transition, or an attempt-budget exhaustion.
//!
//! ## Failure taxonomy
//!
//! | condition | surfaces as | ledger outcome |
//! |---|---|---|
//! | slots + queue full | [`SaError::Overloaded`] | `RejectedOverloaded` |
//! | memory budget exceeded | [`SaError::BudgetExceeded`] | `RejectedBudget` |
//! | deadline expires queued | — | `ExpiredInQueue` |
//! | deadline expires mid-run | [`SaError::DeadlineExceeded`] | `DeadlineExceeded` |
//! | caller cancels | [`SaError::Cancelled`] | `Cancelled` |
//! | transient worker fault | [`SaError::WorkerPanic`], retried | `Served` (after retries) |
//! | fault outlasts retries | [`SaError::WorkerPanic`] | `Failed` |
//! | quality floor unmeetable | [`SaError::QualityFloor`] | `ShedQualityFloor` |
//!
//! [`SaError::Overloaded`]: sa_tensor::SaError::Overloaded
//! [`SaError::BudgetExceeded`]: sa_tensor::SaError::BudgetExceeded
//! [`SaError::DeadlineExceeded`]: sa_tensor::SaError::DeadlineExceeded
//! [`SaError::Cancelled`]: sa_tensor::SaError::Cancelled
//! [`SaError::WorkerPanic`]: sa_tensor::SaError::WorkerPanic
//! [`SaError::QualityFloor`]: sa_tensor::SaError::QualityFloor
//!
//! ## Example
//!
//! ```
//! use sa_serve::{mixed_workload, Scheduler, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scheduler = Scheduler::new(ServeConfig::default())?;
//! let requests = mixed_workload(7, 8);
//! let ledger = scheduler.run(&requests)?;
//! ledger.validate(&requests).map_err(std::io::Error::other)?;
//! assert_eq!(ledger.records.len(), requests.len()); // nothing lost
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod continuous;
pub mod events;
pub mod ledger;
pub mod memory;
pub mod quality;
pub mod request;
pub mod scheduler;
pub mod sim;
pub mod slo;

pub use config::{ServeConfig, TenantFloor};
pub use continuous::{plan_continuous, plan_continuous_with_events, ContinuousPlan};
pub use events::{
    Event, EventKind, EventLog, FlightRecorder, PlannerDecision, Postmortem, EVENTS_SCHEMA,
};
pub use ledger::{Ledger, Outcome, RequestRecord, LEDGER_SCHEMA};
pub use memory::{MemoryLedger, PressureLevel};
pub use quality::{
    canary_probe, is_canary, CanaryObservation, GuardedMethod, HeadCanary, QualityGuard,
    QualityTransition,
};
pub use request::{
    fault_storm_workload, mixed_workload, open_loop_workload, Request, RequestKind, FAULT_SITE,
};
pub use scheduler::Scheduler;
pub use sim::{plan_batch, plan_batch_with_events, Plan, Planned};
pub use slo::{LatencyStats, SloSummary, TenantQuality, SLO_SCHEMA};
