//! Sparsity degree (**SD**, Definition 1) and pattern analysis.
//!
//! ```text
//! SD(α) = max_M { 1 - ΣM / (S_q·S_k/2) }  s.t.  CRA(M) ≥ α
//! ```
//!
//! The unconstrained optimum admits a closed form: independently per query
//! row, keep the fewest highest-probability entries whose sum reaches `α`
//! (any other row-feasible mask keeps at least as many entries). This
//! module computes that optimum, the *structured* (column-stripe) variant,
//! and a per-head pattern decomposition used by the Figure 2(d) analysis.

use sa_kernels::DenseMask;
use sa_tensor::{argsort_desc, Matrix};

/// The optimal (unstructured) sparsity degree `SD(α)` of a probability
/// matrix, together with the witnessing mask.
///
/// `p` must be row-stochastic over its live region (rows of a causal
/// softmax). The denominator is the number of causally visible entries
/// (the paper's `S_q · S_k / 2`).
///
/// Returns `(sd, mask)`; `sd` is 0 for an empty matrix.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1]`.
pub fn optimal_sparsity_degree(p: &Matrix, alpha: f32) -> (f64, DenseMask) {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "alpha must be in (0, 1], got {alpha}"
    );
    let (s_q, s_k) = p.shape();
    let mut mask = DenseMask::zeros(s_q, s_k);
    let mut kept: u64 = 0;
    let mut causal: u64 = 0;
    for i in 0..s_q {
        let row = p.row(i);
        let total: f32 = row.iter().sum();
        // Count causally visible entries: for a causal-softmax P these are
        // the positions up to the diagonal. We infer the causal width from
        // the row structure of a square/rectangular problem.
        let visible = causal_width(i, s_q, s_k);
        causal += visible as u64;
        if total <= 0.0 {
            continue;
        }
        let target = alpha * total;
        let order = argsort_desc(row);
        let mut acc = 0.0;
        for &j in &order {
            mask.set(i, j, true);
            kept += 1;
            acc += row[j];
            if acc >= target {
                break;
            }
        }
    }
    let sd = if causal == 0 {
        0.0
    } else {
        1.0 - kept as f64 / causal as f64
    };
    (sd, mask)
}

/// The *structured* sparsity degree: the best achievable with a window of
/// `window` tokens plus whole-column stripes, selected greedily by
/// column mass outside the window.
///
/// This is the quantity SampleAttention can actually realise; the gap to
/// [`optimal_sparsity_degree`] measures the price of structure.
///
/// Returns `(sd, stripe_columns)`.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1]`.
pub fn structured_sparsity_degree(p: &Matrix, alpha: f32, window: usize) -> (f64, Vec<usize>) {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "alpha must be in (0, 1], got {alpha}"
    );
    let (s_q, s_k) = p.shape();
    if s_q == 0 || s_k == 0 {
        return (0.0, Vec::new());
    }

    // Column mass restricted to the region below each row's window.
    let mut col_mass = vec![0.0f64; s_k];
    // Per-row window mass (already-covered fraction).
    let mut row_window_mass = vec![0.0f32; s_q];
    for i in 0..s_q {
        let row = p.row(i);
        let visible = causal_width(i, s_q, s_k);
        if visible == 0 {
            continue;
        }
        let win_start = visible.saturating_sub(window);
        row_window_mass[i] = row[win_start..visible].iter().sum();
        for (j, &v) in row[..win_start].iter().enumerate() {
            col_mass[j] += v as f64;
        }
    }

    // Greedily add columns by global mass until every row reaches alpha.
    let scores: Vec<f32> = col_mass.iter().map(|&v| v as f32).collect();
    let order = argsort_desc(&scores);
    let mut row_mass = row_window_mass;
    let mut chosen: Vec<usize> = Vec::new();
    let worst = |rm: &[f32], p: &Matrix| -> f32 {
        let mut min = f32::INFINITY;
        for (i, &m) in rm.iter().enumerate() {
            let total: f32 = p.row(i).iter().sum();
            if total > 0.0 {
                min = min.min(m / total);
            }
        }
        if min == f32::INFINITY {
            1.0
        } else {
            min
        }
    };
    let mut current = worst(&row_mass, p);
    for &j in &order {
        if current >= alpha {
            break;
        }
        if scores[j] <= 0.0 {
            // No more mass to gain: adding columns cannot help.
            break;
        }
        chosen.push(j);
        for i in 0..s_q {
            let visible = causal_width(i, s_q, s_k);
            let win_start = visible.saturating_sub(window);
            if j < win_start {
                row_mass[i] += p.get(i, j);
            }
        }
        current = worst(&row_mass, p);
    }
    chosen.sort_unstable();

    // Count kept entries: window per row + chosen columns below windows.
    let mut kept: u64 = 0;
    let mut causal: u64 = 0;
    for i in 0..s_q {
        let visible = causal_width(i, s_q, s_k);
        causal += visible as u64;
        if visible == 0 {
            continue;
        }
        let win_start = visible.saturating_sub(window);
        kept += (visible - win_start) as u64;
        kept += chosen.iter().take_while(|&&c| c < win_start).count() as u64;
    }
    let sd = if causal == 0 {
        0.0
    } else {
        1.0 - kept as f64 / causal as f64
    };
    (sd, chosen)
}

/// Decomposition of a head's attention mass into the paper's two
/// significant patterns (Figure 2(d)): local window vs. column stripes,
/// plus the unexplained remainder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternSummary {
    /// Mean fraction of row mass inside the local window.
    pub window_mass: f32,
    /// Mean fraction of row mass on the top stripe columns (outside the
    /// window).
    pub stripe_mass: f32,
    /// Mean fraction on the first few (sink) columns, counted within
    /// `stripe_mass` as well.
    pub sink_mass: f32,
    /// Remaining dispersed mass (`1 - window - stripe`).
    pub residual_mass: f32,
}

sa_json::impl_json_struct!(PatternSummary {
    window_mass,
    stripe_mass,
    sink_mass,
    residual_mass
});

/// Computes a [`PatternSummary`] for a probability matrix using a window
/// of `window` tokens, the top `num_stripes` columns, and `sinks` sink
/// positions.
pub fn pattern_summary(
    p: &Matrix,
    window: usize,
    num_stripes: usize,
    sinks: usize,
) -> PatternSummary {
    let (s_q, s_k) = p.shape();
    if s_q == 0 || s_k == 0 {
        return PatternSummary {
            window_mass: 0.0,
            stripe_mass: 0.0,
            sink_mass: 0.0,
            residual_mass: 0.0,
        };
    }
    let mut col_mass = vec![0.0f32; s_k];
    let mut window_mass = 0.0f64;
    let mut sink_mass = 0.0f64;
    let mut rows_counted = 0usize;
    for i in 0..s_q {
        let row = p.row(i);
        let total: f32 = row.iter().sum();
        if total <= 0.0 {
            continue;
        }
        rows_counted += 1;
        let visible = causal_width(i, s_q, s_k);
        let win_start = visible.saturating_sub(window);
        window_mass += (row[win_start..visible].iter().sum::<f32>() / total) as f64;
        sink_mass += (row[..sinks.min(win_start)].iter().sum::<f32>() / total) as f64;
        for (j, &v) in row[..win_start].iter().enumerate() {
            col_mass[j] += v / total;
        }
    }
    if rows_counted == 0 {
        return PatternSummary {
            window_mass: 0.0,
            stripe_mass: 0.0,
            sink_mass: 0.0,
            residual_mass: 0.0,
        };
    }
    let order = argsort_desc(&col_mass);
    let stripe_mass: f32 = order
        .iter()
        .take(num_stripes)
        .map(|&j| col_mass[j])
        .sum::<f32>()
        / rows_counted as f32;
    let window_mass = (window_mass / rows_counted as f64) as f32;
    let sink_mass = (sink_mass / rows_counted as f64) as f32;
    PatternSummary {
        window_mass,
        stripe_mass,
        sink_mass,
        residual_mass: (1.0 - window_mass - stripe_mass).max(0.0),
    }
}

/// Number of causally visible keys for query row `i` of an
/// `s_q x s_k` problem (same diagonal convention as `StructuredMask`).
pub(crate) fn causal_width(i: usize, s_q: usize, s_k: usize) -> usize {
    let end = i as isize + s_k as isize - s_q as isize;
    if end < 0 {
        0
    } else {
        (end as usize + 1).min(s_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cra::cra_of_dense_mask;
    use sa_kernels::attention_probs;
    use sa_tensor::DeterministicRng;

    fn probs(s: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = DeterministicRng::new(seed);
        let q = rng.normal_matrix(s, d, 1.0);
        let k = rng.normal_matrix(s, d, 1.0);
        attention_probs(&q, &k, true).unwrap()
    }

    #[test]
    fn optimal_mask_meets_alpha() {
        let p = probs(40, 8, 1);
        for alpha in [0.5, 0.9, 0.95, 0.99] {
            let (sd, mask) = optimal_sparsity_degree(&p, alpha);
            assert!(cra_of_dense_mask(&p, &mask).unwrap() >= alpha - 1e-5, "alpha={alpha}");
            assert!((0.0..=1.0).contains(&sd));
        }
    }

    #[test]
    fn sd_decreases_with_alpha() {
        let p = probs(40, 8, 2);
        let (sd_low, _) = optimal_sparsity_degree(&p, 0.8);
        let (sd_high, _) = optimal_sparsity_degree(&p, 0.99);
        assert!(sd_low >= sd_high, "{sd_low} vs {sd_high}");
    }

    #[test]
    fn alpha_one_keeps_everything_with_mass() {
        // With alpha = 1 every positive-probability entry must be kept.
        let p = Matrix::from_rows(&[vec![0.5, 0.5, 0.0], vec![0.2, 0.3, 0.5]]).unwrap();
        let (_, mask) = optimal_sparsity_degree(&p, 1.0);
        assert!(mask.get(0, 0) && mask.get(0, 1));
        assert!(mask.get(1, 0) && mask.get(1, 1) && mask.get(1, 2));
    }

    #[test]
    fn peaked_distribution_is_very_sparse() {
        // Rows put almost all mass on column 0.
        let s = 50;
        let p = Matrix::from_fn(s, s, |i, j| {
            if j > i {
                0.0
            } else if j == 0 {
                0.97
            } else {
                0.03 / i.max(1) as f32
            }
        });
        let (sd, _) = optimal_sparsity_degree(&p, 0.95);
        assert!(sd > 0.9, "sd = {sd}");
    }

    #[test]
    fn uniform_distribution_is_dense() {
        let s = 30;
        let p = Matrix::from_fn(s, s, |i, j| {
            if j <= i {
                1.0 / (i + 1) as f32
            } else {
                0.0
            }
        });
        let (sd, _) = optimal_sparsity_degree(&p, 0.95);
        assert!(sd < 0.10, "sd = {sd}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let p = probs(4, 4, 3);
        let _ = optimal_sparsity_degree(&p, 0.0);
    }

    #[test]
    fn structured_sd_at_most_optimal() {
        let p = probs(48, 8, 4);
        let (opt, _) = optimal_sparsity_degree(&p, 0.95);
        let (structured, cols) = structured_sparsity_degree(&p, 0.95, 4);
        assert!(structured <= opt + 1e-9, "structured {structured} > optimal {opt}");
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn structured_mask_achieves_alpha() {
        let p = probs(48, 8, 5);
        let window = 5;
        let alpha = 0.9;
        let (_, cols) = structured_sparsity_degree(&p, alpha, window);
        let mask = sa_kernels::StructuredMask::builder(48, 48)
            .window(window)
            .columns(cols)
            .build()
            .unwrap();
        let cra = crate::cra::cra_of_structured_mask(&p, &mask).unwrap();
        assert!(cra >= alpha - 1e-4, "cra {cra}");
    }

    #[test]
    fn pattern_summary_fractions_bounded() {
        let p = probs(32, 8, 6);
        let s = pattern_summary(&p, 4, 4, 2);
        for v in [s.window_mass, s.stripe_mass, s.sink_mass, s.residual_mass] {
            assert!((0.0..=1.0 + 1e-5).contains(&v), "{s:?}");
        }
        let total = s.window_mass + s.stripe_mass + s.residual_mass;
        assert!((total - 1.0).abs() < 1e-3, "{s:?}");
        assert!(s.sink_mass <= s.stripe_mass + 1e-5);
    }

    #[test]
    fn pattern_summary_local_head_is_windowed() {
        // A strictly diagonal P: all mass at j == i.
        let s = 20;
        let p = Matrix::from_fn(s, s, |i, j| if i == j { 1.0 } else { 0.0 });
        let sum = pattern_summary(&p, 2, 4, 1);
        assert!(sum.window_mass > 0.99);
        assert!(sum.stripe_mass < 0.01);
    }

    #[test]
    fn pattern_summary_sink_head_is_striped() {
        // All mass on column 0 except the diagonal's forced self-attention.
        let s = 20;
        let p = Matrix::from_fn(s, s, |i, j| {
            if i == 0 {
                if j == 0 { 1.0 } else { 0.0 }
            } else if j == 0 {
                0.95
            } else if j == i {
                0.05
            } else {
                0.0
            }
        });
        let sum = pattern_summary(&p, 1, 2, 1);
        assert!(sum.stripe_mass > 0.8, "{sum:?}");
        assert!(sum.sink_mass > 0.8, "{sum:?}");
    }

    #[test]
    fn causal_width_conventions() {
        assert_eq!(causal_width(0, 4, 4), 1);
        assert_eq!(causal_width(3, 4, 4), 4);
        assert_eq!(causal_width(0, 2, 5), 4);
        assert_eq!(causal_width(1, 5, 2), 0);
        assert_eq!(causal_width(4, 5, 2), 2);
    }

    #[test]
    fn empty_matrix_sd_zero() {
        let p = Matrix::zeros(0, 0);
        let (sd, _) = optimal_sparsity_degree(&p, 0.9);
        assert_eq!(sd, 0.0);
        let (ssd, cols) = structured_sparsity_degree(&p, 0.9, 2);
        assert_eq!(ssd, 0.0);
        assert!(cols.is_empty());
    }
}
