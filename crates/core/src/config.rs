use crate::SampleAttentionError;

/// What [`SampleAttention::forward`](crate::SampleAttention::forward) does
/// when a numerical-health sentinel trips (non-finite values, degenerate
/// masks, zero sampled mass, α shortfall beyond the configured tolerance,
/// or a worker panic inside a kernel).
///
/// See DESIGN.md, "Failure model & degradation policy".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthPolicy {
    /// Return the typed [`SaError`](sa_tensor::SaError) to the caller.
    Propagate,
    /// Transparently re-run the head with dense [`flash_attention`]
    /// (non-finite inputs sanitised to 0.0 first) and record the fallback
    /// in the stats. The default: a single sick head degrades to the
    /// dense baseline instead of poisoning the forward pass.
    ///
    /// [`flash_attention`]: sa_kernels::flash_attention
    #[default]
    FallbackDense,
    /// Fail-stop: raise a panic carrying the sentinel's message. For
    /// harnesses that want corrupt state to be loud and immediate.
    Abort,
}

sa_json::impl_json_enum!(HealthPolicy {
    Propagate,
    FallbackDense,
    Abort
});

/// Which sparse-attention kernel executes the merged mask.
///
/// Both kernels are bitwise-identical on every mask (locked down by the
/// differential suite in `tests/kernel_equivalence.rs`), so the choice
/// only affects performance. The default is the tiled kernel; legacy
/// config payloads without the key parse to the default, preserving
/// their numerical behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseKernel {
    /// The original per-row kernel walking each row's live columns.
    RowMajor,
    /// The block-CSR tiled kernel (`sparse_flash_attention_tiled`),
    /// with tile size from `tile_size` (0 = autotuned).
    #[default]
    Tiled,
}

sa_json::impl_json_enum!(SparseKernel { RowMajor, Tiled });

/// Hyper-parameters of SampleAttention (the paper's Table 1).
///
/// | field | paper symbol | meaning |
/// |---|---|---|
/// | `cra_threshold` | `α` | desired cumulative residual attention |
/// | `sample_ratio` | `r_row` | fraction of query rows sampled in stage 1 |
/// | `window_ratio` | `r_w%` | local window size as a fraction of `S_k` |
///
/// Additional engineering knobs not in Table 1 but present in the
/// algorithm / kernel:
///
/// - `min_window`: a floor on the absolute window size so very short
///   sequences still keep a few local tokens;
/// - `forced_sinks`: key positions `0..forced_sinks` are always retained
///   (0 by default — the paper notes sinks are *discovered* by stage 2,
///   but the knob supports the StreamingLLM-style ablation);
/// - `max_kv_ratio`: a cap on `|I_KV| / S_k` guarding against degenerate
///   heads selecting everything (1.0 = no cap).
///
/// Construct via [`SampleAttentionConfig::builder`]; the defaults are the
/// paper's tuned operating point (`α = 0.95`, `r_row = 5 %`, `r_w = 8 %`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleAttentionConfig {
    /// Desired CRA threshold `α` in `(0, 1]`.
    pub cra_threshold: f32,
    /// Stage-1 row sampling ratio `r_row` in `(0, 1]`.
    pub sample_ratio: f32,
    /// Local window ratio `r_w` in `[0, 1]`.
    pub window_ratio: f32,
    /// Minimum absolute window size in tokens.
    pub min_window: usize,
    /// Minimum number of sampled query rows in stage 1 (a real fused
    /// kernel samples at least a tile's worth of rows; this also keeps the
    /// column-score estimate stable on short prompts, where a bare
    /// `r_row` fraction would leave late columns covered by only one or
    /// two sampled rows).
    pub min_sample_rows: usize,
    /// Height of the dense "bottom area" (Figure 3): the last rows of the
    /// score matrix attend densely. They are the rows a decoder generates
    /// from, and the strided sample cannot judge the most recent keys.
    pub bottom_area_rows: usize,
    /// Key positions always kept (0 = rely on discovery).
    pub forced_sinks: usize,
    /// Minimum share of sampled mass a relative diagonal must hold to be
    /// selected (0 = diagonal detection disabled; the paper's main method
    /// uses only windows + stripes, Appendix A.6 sketches diagonals as
    /// future work).
    pub diagonal_threshold: f32,
    /// Maximum diagonals selected per head when detection is enabled.
    pub max_diagonals: usize,
    /// Cap on the selected stripe ratio, in `(0, 1]`.
    pub max_kv_ratio: f32,
    /// What to do when a numerical-health sentinel trips
    /// ([`HealthPolicy::FallbackDense`] by default).
    pub health_policy: HealthPolicy,
    /// How far `covered_mass` may fall below `α` before the head is
    /// treated as unhealthy (only under a positive tolerance; `0.0` — the
    /// default — disables the α sentinel entirely, since a deliberate
    /// `max_kv_ratio` cap legitimately leaves `alpha_satisfied == false`).
    pub alpha_fallback_tolerance: f32,
    /// Which sparse kernel executes the merged mask (tiled by default;
    /// numerically identical either way).
    pub sparse_kernel: SparseKernel,
    /// Tile edge for the tiled kernel, in `1..=MAX_TILE`; `0` (the
    /// default) selects per-problem via the seeded tile autotuner.
    pub tile_size: usize,
}

sa_json::impl_json_struct!(SampleAttentionConfig {
    cra_threshold,
    sample_ratio,
    window_ratio,
    min_window,
    min_sample_rows,
    bottom_area_rows,
    forced_sinks,
    diagonal_threshold,
    max_diagonals,
    max_kv_ratio,
    health_policy: default,
    alpha_fallback_tolerance: default,
    sparse_kernel: default,
    tile_size: default
});

impl SampleAttentionConfig {
    /// Starts building a config from the paper's defaults.
    pub fn builder() -> SampleAttentionConfigBuilder {
        SampleAttentionConfigBuilder::default()
    }

    /// The paper's tuned operating point: `α=0.95`, `r_row=5 %`, `r_w=8 %`.
    pub fn paper_default() -> Self {
        SampleAttentionConfig {
            cra_threshold: 0.95,
            sample_ratio: 0.05,
            window_ratio: 0.08,
            min_window: 1,
            min_sample_rows: 32,
            bottom_area_rows: 32,
            forced_sinks: 0,
            diagonal_threshold: 0.0,
            max_diagonals: 8,
            max_kv_ratio: 1.0,
            health_policy: HealthPolicy::FallbackDense,
            alpha_fallback_tolerance: 0.0,
            sparse_kernel: SparseKernel::Tiled,
            tile_size: 0,
        }
    }

    /// Effective stage-1 sampling ratio for `s_q` query rows:
    /// `max(sample_ratio, min_sample_rows / s_q)`, capped at 1.
    pub fn effective_sample_ratio(&self, s_q: usize) -> f32 {
        if s_q == 0 {
            return self.sample_ratio;
        }
        self.sample_ratio
            .max(self.min_sample_rows as f32 / s_q as f32)
            .min(1.0)
    }

    /// Absolute window size for a sequence of `s_k` keys:
    /// `max(min_window, ⌈r_w · S_k⌉)`, clamped to `s_k`.
    pub fn window_size(&self, s_k: usize) -> usize {
        let w = (self.window_ratio * s_k as f32).ceil() as usize;
        w.max(self.min_window).min(s_k)
    }
}

impl Default for SampleAttentionConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Builder for [`SampleAttentionConfig`], with range validation at
/// [`build`](SampleAttentionConfigBuilder::build).
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct SampleAttentionConfigBuilder {
    config: SampleAttentionConfig,
}


impl SampleAttentionConfigBuilder {
    /// Sets the CRA threshold `α`.
    pub fn cra_threshold(mut self, alpha: f32) -> Self {
        self.config.cra_threshold = alpha;
        self
    }

    /// Sets the stage-1 sampling ratio `r_row`.
    pub fn sample_ratio(mut self, ratio: f32) -> Self {
        self.config.sample_ratio = ratio;
        self
    }

    /// Sets the local window ratio `r_w`.
    pub fn window_ratio(mut self, ratio: f32) -> Self {
        self.config.window_ratio = ratio;
        self
    }

    /// Sets the minimum absolute window size.
    pub fn min_window(mut self, tokens: usize) -> Self {
        self.config.min_window = tokens;
        self
    }

    /// Sets the minimum number of sampled rows in stage 1.
    pub fn min_sample_rows(mut self, rows: usize) -> Self {
        self.config.min_sample_rows = rows;
        self
    }

    /// Sets the dense bottom-area height in rows.
    pub fn bottom_area_rows(mut self, rows: usize) -> Self {
        self.config.bottom_area_rows = rows;
        self
    }

    /// Enables Appendix A.6 diagonal detection at the given sampled-mass
    /// share threshold (e.g. 0.02 = diagonals holding >= 2 % each).
    pub fn diagonal_threshold(mut self, share: f32) -> Self {
        self.config.diagonal_threshold = share;
        self
    }

    /// Caps how many diagonals may be selected per head.
    pub fn max_diagonals(mut self, n: usize) -> Self {
        self.config.max_diagonals = n;
        self
    }

    /// Forces the first `n` key positions to be retained.
    pub fn forced_sinks(mut self, n: usize) -> Self {
        self.config.forced_sinks = n;
        self
    }

    /// Caps the stripe ratio selected by stage 2.
    pub fn max_kv_ratio(mut self, ratio: f32) -> Self {
        self.config.max_kv_ratio = ratio;
        self
    }

    /// Sets the response to a tripped numerical-health sentinel.
    pub fn health_policy(mut self, policy: HealthPolicy) -> Self {
        self.config.health_policy = policy;
        self
    }

    /// Sets how far `covered_mass` may fall below `α` before the head is
    /// treated as unhealthy (0.0 disables the α sentinel).
    pub fn alpha_fallback_tolerance(mut self, tolerance: f32) -> Self {
        self.config.alpha_fallback_tolerance = tolerance;
        self
    }

    /// Selects the sparse kernel executing the merged mask.
    pub fn sparse_kernel(mut self, kernel: SparseKernel) -> Self {
        self.config.sparse_kernel = kernel;
        self
    }

    /// Pins the tiled kernel's tile edge (`0` = autotune per problem).
    pub fn tile_size(mut self, tile: usize) -> Self {
        self.config.tile_size = tile;
        self
    }

    /// Validates and builds the config.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::InvalidConfig`] if any field is out
    /// of range: `α ∈ (0, 1]`, `r_row ∈ (0, 1]`, `r_w ∈ [0, 1]`,
    /// `max_kv_ratio ∈ (0, 1]`, all finite.
    pub fn build(self) -> Result<SampleAttentionConfig, SampleAttentionError> {
        let c = self.config;
        let check_unit = |field: &'static str, v: f32, allow_zero: bool| {
            let lo_ok = if allow_zero { v >= 0.0 } else { v > 0.0 };
            if !v.is_finite() || !lo_ok || v > 1.0 {
                Err(SampleAttentionError::InvalidConfig {
                    field,
                    why: format!(
                        "must be in {}0, 1], got {v}",
                        if allow_zero { "[" } else { "(" }
                    ),
                })
            } else {
                Ok(())
            }
        };
        check_unit("cra_threshold", c.cra_threshold, false)?;
        check_unit("diagonal_threshold", c.diagonal_threshold, true)?;
        check_unit("sample_ratio", c.sample_ratio, false)?;
        check_unit("window_ratio", c.window_ratio, true)?;
        check_unit("max_kv_ratio", c.max_kv_ratio, false)?;
        check_unit("alpha_fallback_tolerance", c.alpha_fallback_tolerance, true)?;
        if c.tile_size > sa_kernels::MAX_TILE {
            return Err(SampleAttentionError::InvalidConfig {
                field: "tile_size",
                why: format!(
                    "must be 0 (autotune) or 1..={}, got {}",
                    sa_kernels::MAX_TILE,
                    c.tile_size
                ),
            });
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SampleAttentionConfig::default();
        assert_eq!(c.cra_threshold, 0.95);
        assert_eq!(c.sample_ratio, 0.05);
        assert_eq!(c.window_ratio, 0.08);
    }

    #[test]
    fn builder_round_trip() {
        let c = SampleAttentionConfig::builder()
            .cra_threshold(0.8)
            .sample_ratio(0.02)
            .window_ratio(0.04)
            .min_window(8)
            .min_sample_rows(16)
            .forced_sinks(4)
            .max_kv_ratio(0.5)
            .build()
            .unwrap();
        assert_eq!(c.cra_threshold, 0.8);
        assert_eq!(c.min_sample_rows, 16);
        assert_eq!(c.sample_ratio, 0.02);
        assert_eq!(c.window_ratio, 0.04);
        assert_eq!(c.min_window, 8);
        assert_eq!(c.forced_sinks, 4);
        assert_eq!(c.max_kv_ratio, 0.5);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(SampleAttentionConfig::builder().cra_threshold(0.0).build().is_err());
        assert!(SampleAttentionConfig::builder().cra_threshold(1.5).build().is_err());
        assert!(SampleAttentionConfig::builder().sample_ratio(0.0).build().is_err());
        assert!(SampleAttentionConfig::builder().window_ratio(-0.1).build().is_err());
        assert!(SampleAttentionConfig::builder().window_ratio(0.0).build().is_ok());
        assert!(SampleAttentionConfig::builder().max_kv_ratio(0.0).build().is_err());
        assert!(SampleAttentionConfig::builder().cra_threshold(f32::NAN).build().is_err());
    }

    #[test]
    fn window_size_rounds_up_and_clamps() {
        let c = SampleAttentionConfig::builder().window_ratio(0.08).build().unwrap();
        assert_eq!(c.window_size(100), 8);
        assert_eq!(c.window_size(99), 8); // ceil(7.92)
        assert_eq!(c.window_size(1), 1);
        let tiny = SampleAttentionConfig::builder()
            .window_ratio(0.01)
            .min_window(16)
            .build()
            .unwrap();
        assert_eq!(tiny.window_size(100), 16);
        assert_eq!(tiny.window_size(8), 8); // clamped to s_k
    }

    #[test]
    fn json_round_trip() {
        let c = SampleAttentionConfig::paper_default();
        let s = sa_json::to_string(&c);
        let back: SampleAttentionConfig = sa_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn health_fields_default_and_validate() {
        let c = SampleAttentionConfig::paper_default();
        assert_eq!(c.health_policy, HealthPolicy::FallbackDense);
        assert_eq!(c.alpha_fallback_tolerance, 0.0);
        let c = SampleAttentionConfig::builder()
            .health_policy(HealthPolicy::Propagate)
            .alpha_fallback_tolerance(0.1)
            .build()
            .unwrap();
        assert_eq!(c.health_policy, HealthPolicy::Propagate);
        assert_eq!(c.alpha_fallback_tolerance, 0.1);
        assert!(SampleAttentionConfig::builder()
            .alpha_fallback_tolerance(-0.5)
            .build()
            .is_err());
        assert!(SampleAttentionConfig::builder()
            .alpha_fallback_tolerance(f32::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn old_json_without_health_fields_still_parses() {
        // Pre-health-policy payloads lack the two new keys: they must
        // parse with the defaults (FallbackDense, tolerance 0).
        let c = SampleAttentionConfig::paper_default();
        let s = sa_json::to_string(&c);
        let legacy = s
            .replace(",\"health_policy\":\"FallbackDense\"", "")
            .replace(",\"alpha_fallback_tolerance\":0.0", "");
        assert!(!legacy.contains("health_policy"), "{legacy}");
        let back: SampleAttentionConfig = sa_json::from_str(&legacy).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn kernel_fields_default_and_validate() {
        let c = SampleAttentionConfig::paper_default();
        assert_eq!(c.sparse_kernel, SparseKernel::Tiled);
        assert_eq!(c.tile_size, 0);
        let c = SampleAttentionConfig::builder()
            .sparse_kernel(SparseKernel::RowMajor)
            .tile_size(32)
            .build()
            .unwrap();
        assert_eq!(c.sparse_kernel, SparseKernel::RowMajor);
        assert_eq!(c.tile_size, 32);
        assert!(SampleAttentionConfig::builder()
            .tile_size(sa_kernels::MAX_TILE + 1)
            .build()
            .is_err());
    }

    #[test]
    fn old_json_without_kernel_fields_still_parses() {
        // Pre-tiling payloads lack the two kernel keys: they must parse
        // to the tiled default, which is bitwise-identical to the old
        // row-major kernel — legacy semantics are preserved exactly.
        let c = SampleAttentionConfig::paper_default();
        let s = sa_json::to_string(&c);
        let legacy = s
            .replace(",\"sparse_kernel\":\"Tiled\"", "")
            .replace(",\"tile_size\":0", "");
        assert!(!legacy.contains("sparse_kernel"), "{legacy}");
        let back: SampleAttentionConfig = sa_json::from_str(&legacy).unwrap();
        assert_eq!(back, c);
    }
}
