//! Offline hyper-parameter tuning (the paper's Table 1 + §4.2).
//!
//! The paper fixes `α`, `r_row`, `r_w` per model by "lightweight offline
//! profiling" over a small dataset (22 requests, 25K–96K tokens). This
//! module implements that procedure: sweep a grid of hyper-parameters over
//! a set of profiling requests, measure output fidelity against full
//! attention and achieved mask density, then select the cheapest config
//! that stays near-lossless.

use sa_kernels::full_attention;
use sa_tensor::{cosine_similarity, Matrix};

use crate::{SampleAttention, SampleAttentionConfig, SampleAttentionError};

/// One profiling request: one head's Q/K/V drawn from a representative
/// prompt.
#[derive(Debug, Clone)]
pub struct ProfilingRequest {
    /// Query tensor `(S, d)`.
    pub q: Matrix,
    /// Key tensor `(S, d)`.
    pub k: Matrix,
    /// Value tensor `(S, d)`.
    pub v: Matrix,
}

impl ProfilingRequest {
    /// Creates a request, validating shapes.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::Tensor`] on inconsistent shapes.
    pub fn new(q: Matrix, k: Matrix, v: Matrix) -> Result<Self, SampleAttentionError> {
        if q.cols() != k.cols() || k.rows() != v.rows() {
            return Err(SampleAttentionError::Tensor(
                sa_tensor::TensorError::ShapeMismatch {
                    op: "ProfilingRequest::new",
                    lhs: q.shape(),
                    rhs: k.shape(),
                },
            ));
        }
        Ok(ProfilingRequest { q, k, v })
    }
}

/// The hyper-parameter grid to sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerGrid {
    /// Candidate CRA thresholds `α`.
    pub cra_thresholds: Vec<f32>,
    /// Candidate sampling ratios `r_row`.
    pub sample_ratios: Vec<f32>,
    /// Candidate window ratios `r_w`.
    pub window_ratios: Vec<f32>,
}

sa_json::impl_json_struct!(TunerGrid {
    cra_thresholds,
    sample_ratios,
    window_ratios
});

impl TunerGrid {
    /// The grid from the paper's ablation (Table 3):
    /// `α ∈ {0.80, 0.90, 0.95, 0.98}`, `r_row ∈ {2 %, 5 %, 10 %}`,
    /// `r_w ∈ {4 %, 8 %}`.
    pub fn paper_grid() -> Self {
        TunerGrid {
            cra_thresholds: vec![0.80, 0.90, 0.95, 0.98],
            sample_ratios: vec![0.02, 0.05, 0.10],
            window_ratios: vec![0.04, 0.08],
        }
    }

    /// Number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.cra_thresholds.len() * self.sample_ratios.len() * self.window_ratios.len()
    }

    /// `true` when the grid is empty in any dimension.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterator over all configurations.
    ///
    /// # Errors
    ///
    /// Returns the first config validation error (e.g. an `α` of 0 in the
    /// grid).
    pub fn configs(&self) -> Result<Vec<SampleAttentionConfig>, SampleAttentionError> {
        let mut out = Vec::with_capacity(self.len());
        for &alpha in &self.cra_thresholds {
            for &r_row in &self.sample_ratios {
                for &r_w in &self.window_ratios {
                    out.push(
                        SampleAttentionConfig::builder()
                            .cra_threshold(alpha)
                            .sample_ratio(r_row)
                            .window_ratio(r_w)
                            .build()?,
                    );
                }
            }
        }
        Ok(out)
    }
}

/// Measured quality/cost of one configuration over the profiling set.
#[derive(Debug, Clone, Copy)]
pub struct TunerEntry {
    /// The configuration evaluated.
    pub config: SampleAttentionConfig,
    /// Minimum output cosine similarity vs. full attention across
    /// requests (worst case, matching the paper's min-CRA philosophy).
    pub fidelity: f32,
    /// Mean mask density across requests (lower = faster).
    pub mean_density: f64,
    /// Total pipeline FLOPs across requests.
    pub total_flops: u64,
    /// Largest tile size the tiled sparse kernel selected across the
    /// profiling requests (0 when the tiled kernel never ran, e.g. the
    /// row-major kernel was configured or every request fell back).
    pub tile_size: usize,
}

sa_json::impl_json_struct!(TunerEntry {
    config,
    fidelity,
    mean_density,
    total_flops,
    tile_size: default
});

/// The chosen configuration and why.
#[derive(Debug, Clone, Copy)]
pub struct TunerSelection {
    /// The winning entry.
    pub entry: TunerEntry,
    /// Whether it met the near-lossless target (otherwise it is simply
    /// the highest-fidelity config).
    pub met_target: bool,
}

sa_json::impl_json_struct!(TunerSelection { entry, met_target });

/// Full tuning report: every evaluated point plus the selection.
#[derive(Debug, Clone)]
pub struct TunerReport {
    /// All grid entries, in grid order.
    pub entries: Vec<TunerEntry>,
    /// The selected configuration.
    pub selection: TunerSelection,
}

sa_json::impl_json_struct!(TunerReport { entries, selection });

/// Offline profiler: sweeps a [`TunerGrid`] over profiling requests and
/// picks the cheapest near-lossless configuration.
#[derive(Debug, Clone)]
pub struct HyperParamTuner {
    grid: TunerGrid,
    target_fidelity: f32,
}

impl HyperParamTuner {
    /// Creates a tuner with the near-lossless target (the paper/MLPerf use
    /// 99 % of baseline; we measure fidelity as worst-case output cosine
    /// similarity, so 0.99 is the analogous target).
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::InvalidConfig`] if the grid is
    /// empty or the target is not in `(0, 1]`.
    pub fn new(grid: TunerGrid, target_fidelity: f32) -> Result<Self, SampleAttentionError> {
        if grid.is_empty() {
            return Err(SampleAttentionError::InvalidConfig {
                field: "grid",
                why: "grid must be non-empty in every dimension".to_string(),
            });
        }
        if !(target_fidelity > 0.0 && target_fidelity <= 1.0) {
            return Err(SampleAttentionError::InvalidConfig {
                field: "target_fidelity",
                why: format!("must be in (0, 1], got {target_fidelity}"),
            });
        }
        Ok(HyperParamTuner {
            grid,
            target_fidelity,
        })
    }

    /// Runs the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::InvalidConfig`] for an empty
    /// request set, or propagates kernel errors.
    pub fn tune(&self, requests: &[ProfilingRequest]) -> Result<TunerReport, SampleAttentionError> {
        if requests.is_empty() {
            return Err(SampleAttentionError::InvalidConfig {
                field: "requests",
                why: "profiling set must be non-empty".to_string(),
            });
        }
        // Full-attention references, computed once.
        let references: Vec<Matrix> = requests
            .iter()
            .map(|r| full_attention(&r.q, &r.k, &r.v, true).map(|o| o.output))
            .collect::<Result<_, _>>()?;

        let mut entries = Vec::with_capacity(self.grid.len());
        for config in self.grid.configs()? {
            let attn = SampleAttention::new(config);
            let mut min_fidelity = f32::INFINITY;
            let mut density_sum = 0.0f64;
            let mut total_flops = 0u64;
            let mut tile_size = 0usize;
            for (req, reference) in requests.iter().zip(&references) {
                let out = attn.forward(&req.q, &req.k, &req.v)?;
                let sim = cosine_similarity(out.output.as_slice(), reference.as_slice());
                min_fidelity = min_fidelity.min(sim);
                density_sum += out.stats.mask_density;
                total_flops += out.stats.total_cost().flops;
                tile_size = tile_size.max(out.stats.tile_size);
            }
            entries.push(TunerEntry {
                config,
                fidelity: min_fidelity,
                mean_density: density_sum / requests.len() as f64,
                total_flops,
                tile_size,
            });
        }

        // Among configs meeting the target, pick the cheapest (lowest
        // FLOPs, then lowest density); otherwise fall back to the highest
        // fidelity.
        let meeting: Vec<&TunerEntry> = entries
            .iter()
            .filter(|e| e.fidelity >= self.target_fidelity)
            .collect();
        let selection = if let Some(best) = meeting.iter().min_by(|a, b| {
            (a.total_flops, a.mean_density)
                .partial_cmp(&(b.total_flops, b.mean_density))
                .unwrap_or(std::cmp::Ordering::Equal)
        }) {
            TunerSelection {
                entry: **best,
                met_target: true,
            }
        } else {
            let best = entries
                .iter()
                .max_by(|a, b| {
                    a.fidelity
                        .partial_cmp(&b.fidelity)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("entries non-empty");
            TunerSelection {
                entry: *best,
                met_target: false,
            }
        };

        Ok(TunerReport { entries, selection })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    fn structured_request(s: usize, d: usize, seed: u64) -> ProfilingRequest {
        let mut rng = DeterministicRng::new(seed);
        let mut k = rng.normal_matrix(s, d, 0.3);
        for j in 0..d {
            let v0 = k.get(0, j);
            k.set(0, j, v0 + 2.0);
            let vm = k.get(s / 3, j);
            k.set(s / 3, j, vm + 1.5);
        }
        let q = Matrix::from_fn(s, d, |_, _| 0.5 + 0.1 * rng.normal());
        let v = rng.normal_matrix(s, d, 1.0);
        ProfilingRequest::new(q, k, v).unwrap()
    }

    fn small_grid() -> TunerGrid {
        TunerGrid {
            cra_thresholds: vec![0.5, 0.95],
            sample_ratios: vec![0.1],
            window_ratios: vec![0.08],
        }
    }

    #[test]
    fn paper_grid_size() {
        assert_eq!(TunerGrid::paper_grid().len(), 4 * 3 * 2);
        assert!(!TunerGrid::paper_grid().is_empty());
    }

    #[test]
    fn tune_selects_near_lossless_config() {
        let requests = vec![structured_request(128, 8, 1), structured_request(160, 8, 2)];
        let tuner = HyperParamTuner::new(small_grid(), 0.99).unwrap();
        let report = tuner.tune(&requests).unwrap();
        assert_eq!(report.entries.len(), 2);
        assert!(report.selection.entry.fidelity >= 0.99 || !report.selection.met_target);
        // Fidelity at alpha=0.95 should dominate alpha=0.5.
        let f_lo = report.entries[0].fidelity;
        let f_hi = report.entries[1].fidelity;
        assert!(f_hi >= f_lo, "{f_hi} vs {f_lo}");
    }

    #[test]
    fn selection_prefers_cheapest_meeting_target() {
        let requests = vec![structured_request(128, 8, 3)];
        // Both alphas likely meet a loose 0.5 target; the cheaper (lower
        // alpha → sparser) must win.
        let tuner = HyperParamTuner::new(small_grid(), 0.5).unwrap();
        let report = tuner.tune(&requests).unwrap();
        assert!(report.selection.met_target);
        let min_flops = report.entries.iter().map(|e| e.total_flops).min().unwrap();
        assert_eq!(report.selection.entry.total_flops, min_flops);
    }

    #[test]
    fn falls_back_to_best_fidelity() {
        let requests = vec![structured_request(96, 8, 4)];
        // Impossible target: nothing meets fidelity 1.0 exactly... use a
        // grid of low alphas so the target is missed.
        let grid = TunerGrid {
            cra_thresholds: vec![0.2],
            sample_ratios: vec![0.05],
            window_ratios: vec![0.02],
        };
        let tuner = HyperParamTuner::new(grid, 1.0).unwrap();
        let report = tuner.tune(&requests).unwrap();
        if !report.selection.met_target {
            let max_f = report
                .entries
                .iter()
                .map(|e| e.fidelity)
                .fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(report.selection.entry.fidelity, max_f);
        }
    }

    #[test]
    fn tuner_records_selected_tile_size() {
        let requests = vec![structured_request(128, 8, 5)];
        let tuner = HyperParamTuner::new(small_grid(), 0.5).unwrap();
        let report = tuner.tune(&requests).unwrap();
        // The default config uses the tiled kernel, so every entry that
        // ran the sparse stage must have recorded an autotuned tile.
        for entry in &report.entries {
            assert!(
                entry.tile_size >= 1 && entry.tile_size <= sa_kernels::MAX_TILE,
                "tile {} outside 1..=MAX_TILE",
                entry.tile_size
            );
        }
        // And it survives a JSON round trip (back-compat default is 0).
        let json = sa_json::to_string(&report.selection.entry);
        let back: TunerEntry = sa_json::from_str(&json).unwrap();
        assert_eq!(back.tile_size, report.selection.entry.tile_size);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(HyperParamTuner::new(
            TunerGrid {
                cra_thresholds: vec![],
                sample_ratios: vec![0.05],
                window_ratios: vec![0.08]
            },
            0.99
        )
        .is_err());
        assert!(HyperParamTuner::new(small_grid(), 0.0).is_err());
        let tuner = HyperParamTuner::new(small_grid(), 0.99).unwrap();
        assert!(tuner.tune(&[]).is_err());
    }

    #[test]
    fn profiling_request_validates_shapes() {
        let q = Matrix::zeros(4, 8);
        let k = Matrix::zeros(4, 6);
        let v = Matrix::zeros(4, 8);
        assert!(ProfilingRequest::new(q, k, v).is_err());
    }
}
