//! Stage 2: **score-based key-value filtering**.
//!
//! Given the column-accumulated sampled scores, selects the minimal stripe
//! set `I_KV` whose mass reaches the CRA threshold `α` (Eq. 6, solved
//! approximately): sort descending, prefix-sum, `searchsorted` against
//! `α · total`, gather the winning indices. Attention sinks emerge
//! naturally — the sink columns carry large accumulated mass and are
//! selected first.
//!
//! Two selection modes are provided:
//!
//! - [`KvRatioSchedule::Exact`] — searchsorted over the full prefix sum
//!   (the minimal `k`);
//! - [`KvRatioSchedule::Coarse`] — the paper's Algorithm 1 candidate-ratio
//!   list (`prefixsum_sample_list = [0.0125, 0.025, 0.05, 0.1, 0.2, 0.4,
//!   0.8, 1.0] · S_k`): evaluate the prefix sum only at those ratios and
//!   pick the first that clears `α`. Cheaper on hardware, slightly
//!   over-selects.

use sa_kernels::CostReport;
use sa_tensor::{argsort_desc, prefix_sum, searchsorted_left, TensorError};

/// How stage 2 maps the sorted column scores to a kept-KV count.
#[derive(Debug, Clone, PartialEq)]
#[derive(Default)]
pub enum KvRatioSchedule {
    /// Minimal `k` via binary search over the full prefix sum.
    #[default]
    Exact,
    /// The paper's coarse candidate ratios: the first ratio in the list
    /// whose prefix mass clears `α` is used.
    Coarse(Vec<f32>),
}

impl KvRatioSchedule {
    /// The candidate list from Algorithm 1.
    pub fn paper_coarse() -> Self {
        KvRatioSchedule::Coarse(vec![0.0125, 0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0])
    }
}


/// Result of stage-2 filtering.
#[derive(Debug, Clone)]
pub struct KvFilterResult {
    /// Selected key-value indices `I_KV`, sorted ascending.
    pub indices: Vec<usize>,
    /// `|I_KV| / S_k`.
    pub kv_ratio: f32,
    /// Fraction of the sampled mass covered by the selection, clamped to
    /// `[0, 1]` (the raw prefix/total ratio can exceed 1 under fp
    /// rounding).
    pub covered_mass: f32,
    /// Whether the selection actually reaches the requested `α` coverage.
    /// `false` when the `max_kv_ratio` cap truncated the selection below
    /// the α point (silent under-coverage otherwise), and for an empty /
    /// zero-mass input.
    pub alpha_satisfied: bool,
    /// Cost of the sort/prefix-sum/searchsorted/gather pipeline.
    pub cost: CostReport,
}

/// Selects the minimal stripe set covering `alpha` of the accumulated
/// column mass.
///
/// `max_kv_ratio` caps the selection size (1.0 = no cap). Returns an empty
/// selection when the scores carry no mass.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] if `alpha` is not in `(0, 1]`
/// or `max_kv_ratio` is not in `(0, 1]` (including NaN).
///
/// # Example
///
/// ```
/// use sa_core::filtering::{filter_kv_indices, KvRatioSchedule};
///
/// # fn main() -> Result<(), sa_tensor::TensorError> {
/// // Columns 1 and 3 dominate.
/// let scores = [0.02, 0.60, 0.03, 0.30, 0.05];
/// let r = filter_kv_indices(&scores, 0.9, 1.0, &KvRatioSchedule::Exact)?;
/// assert_eq!(r.indices, vec![1, 3]);
/// assert!(r.covered_mass >= 0.9);
/// # Ok(())
/// # }
/// ```
pub fn filter_kv_indices(
    column_scores: &[f32],
    alpha: f32,
    max_kv_ratio: f32,
    schedule: &KvRatioSchedule,
) -> Result<KvFilterResult, TensorError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(TensorError::InvalidDimension {
            op: "filter_kv_indices",
            what: format!("alpha must be in (0, 1], got {alpha}"),
        });
    }
    if !(max_kv_ratio > 0.0 && max_kv_ratio <= 1.0) {
        return Err(TensorError::InvalidDimension {
            op: "filter_kv_indices",
            what: format!("max_kv_ratio must be in (0, 1], got {max_kv_ratio}"),
        });
    }
    let s_k = column_scores.len();
    let total: f32 = column_scores.iter().sum();
    if s_k == 0 || total <= 0.0 {
        return Ok(KvFilterResult {
            indices: Vec::new(),
            kv_ratio: 0.0,
            covered_mass: 0.0,
            alpha_satisfied: false,
            cost: CostReport::launch(0, 0, 0),
        });
    }

    // SortedWeight = SampleWeight.sort(dim=-1)  (descending)
    let order = argsort_desc(column_scores);
    let sorted: Vec<f32> = order.iter().map(|&j| column_scores[j]).collect();
    // prefix sums of the sorted weights
    let prefix = prefix_sum(&sorted);
    let target = alpha * total;

    let k = match schedule {
        KvRatioSchedule::Exact => searchsorted_left(&prefix, target) + 1,
        KvRatioSchedule::Coarse(ratios) => {
            let mut chosen = s_k;
            for &r in ratios {
                let cand = ((r.clamp(0.0, 1.0) * s_k as f32).round() as usize).clamp(1, s_k);
                if prefix[cand - 1] >= target {
                    chosen = cand;
                    break;
                }
            }
            chosen
        }
    };
    let cap = ((max_kv_ratio * s_k as f32).ceil() as usize).max(1);
    let k = k.min(s_k).min(cap);

    let mut indices: Vec<usize> = order[..k].to_vec();
    indices.sort_unstable();
    // Same comparison the selection itself uses: reports false exactly
    // when the kept prefix mass falls short of α·total — most commonly
    // because the `max_kv_ratio` cap truncated the selection below the α
    // point.
    let alpha_satisfied = prefix[k - 1] >= target;
    let covered_mass = (prefix[k - 1] / total).clamp(0.0, 1.0);

    // Cost model: sort O(S log S) compares, prefix sum + searchsorted,
    // gather of k indices. All operate on length-S_k vectors.
    let logn = (s_k as f64).log2().max(1.0) as u64;
    let flops = (s_k as u64) * (logn + 2);
    let bytes = 4 * s_k as u64;
    let cost = CostReport::launch(flops, 2 * bytes, bytes + 8 * k as u64);

    Ok(KvFilterResult {
        indices,
        kv_ratio: k as f32 / s_k as f32,
        covered_mass,
        alpha_satisfied,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_minimal_exact_set() {
        let scores = [0.1, 0.4, 0.1, 0.3, 0.1];
        let r = filter_kv_indices(&scores, 0.69, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert_eq!(r.indices, vec![1, 3]); // 0.4 + 0.3 = 0.7 ≥ 0.69
        assert!((r.kv_ratio - 0.4).abs() < 1e-6);
        assert!((r.covered_mass - 0.7).abs() < 1e-6);
    }

    #[test]
    fn alpha_one_selects_all_positive_mass() {
        let scores = [0.2, 0.0, 0.8];
        let r = filter_kv_indices(&scores, 1.0, 1.0, &KvRatioSchedule::Exact).unwrap();
        // prefix reaches total at k=2 (0.8 + 0.2); the zero column is not needed.
        assert_eq!(r.indices, vec![0, 2]);
        assert!((r.covered_mass - 1.0).abs() < 1e-6);
    }

    #[test]
    fn peaked_scores_tiny_selection() {
        let mut scores = vec![0.001f32; 1000];
        scores[7] = 10.0;
        scores[412] = 5.0;
        let r = filter_kv_indices(&scores, 0.9, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert!(r.indices.len() <= 3, "selected {}", r.indices.len());
        assert!(r.indices.contains(&7) && r.indices.contains(&412));
    }

    #[test]
    fn uniform_scores_select_alpha_fraction() {
        let scores = vec![1.0f32; 100];
        let r = filter_kv_indices(&scores, 0.95, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert_eq!(r.indices.len(), 95);
    }

    #[test]
    fn cap_limits_selection() {
        let scores = vec![1.0f32; 100];
        let r = filter_kv_indices(&scores, 0.95, 0.5, &KvRatioSchedule::Exact).unwrap();
        assert_eq!(r.indices.len(), 50);
        assert!((r.covered_mass - 0.5).abs() < 1e-4);
        // The cap truncated the selection below the α point: this must be
        // reported, not silently under-covered.
        assert!(!r.alpha_satisfied);
    }

    #[test]
    fn uncapped_selection_reports_alpha_satisfied() {
        let scores = vec![1.0f32; 100];
        let r = filter_kv_indices(&scores, 0.95, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert!(r.alpha_satisfied);
        assert!(r.covered_mass >= 0.95);
        // A cap that still leaves room for the α point also satisfies.
        let roomy = filter_kv_indices(&scores, 0.5, 0.8, &KvRatioSchedule::Exact).unwrap();
        assert!(roomy.alpha_satisfied);
    }

    #[test]
    fn capped_coarse_schedule_reports_unsatisfied() {
        let scores = vec![1.0f32; 1000];
        let r = filter_kv_indices(&scores, 0.9, 0.1, &KvRatioSchedule::paper_coarse()).unwrap();
        assert_eq!(r.indices.len(), 100);
        assert!(!r.alpha_satisfied);
        assert!((r.covered_mass - 0.1).abs() < 1e-4);
    }

    #[test]
    fn covered_mass_clamped_to_unit_interval() {
        // Many near-equal tiny values: the f32 prefix/total ratio is prone
        // to landing a hair above 1.0 at full coverage.
        let scores = vec![0.1f32; 10_000];
        let r = filter_kv_indices(&scores, 1.0, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert!(r.covered_mass <= 1.0, "covered_mass {}", r.covered_mass);
        assert!(r.covered_mass >= 0.0);
        // Zero-mass input reports unsatisfied, zero coverage.
        let z = filter_kv_indices(&[0.0, 0.0], 0.9, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert!(!z.alpha_satisfied);
        assert_eq!(z.covered_mass, 0.0);
    }

    #[test]
    fn coarse_schedule_over_selects() {
        let scores = vec![1.0f32; 1000];
        let exact = filter_kv_indices(&scores, 0.3, 1.0, &KvRatioSchedule::Exact).unwrap();
        let coarse = filter_kv_indices(&scores, 0.3, 1.0, &KvRatioSchedule::paper_coarse()).unwrap();
        assert_eq!(exact.indices.len(), 300);
        // First paper ratio clearing 0.3 of uniform mass is 0.4.
        assert_eq!(coarse.indices.len(), 400);
        assert!(coarse.covered_mass >= exact.covered_mass);
    }

    #[test]
    fn coarse_schedule_exact_when_first_candidate_suffices() {
        let mut scores = vec![0.0f32; 1000];
        scores[3] = 1.0;
        let coarse = filter_kv_indices(&scores, 0.9, 1.0, &KvRatioSchedule::paper_coarse()).unwrap();
        // 1.25 % of 1000 = 13 columns (rounded), includes the single hot one.
        assert!(coarse.indices.contains(&3));
        assert!(coarse.indices.len() <= 13);
    }

    #[test]
    fn empty_and_zero_mass() {
        let r = filter_kv_indices(&[], 0.9, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert!(r.indices.is_empty());
        let z = filter_kv_indices(&[0.0, 0.0], 0.9, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert!(z.indices.is_empty());
        assert_eq!(z.kv_ratio, 0.0);
    }

    #[test]
    fn indices_sorted_ascending() {
        let scores = [0.5, 0.1, 0.9, 0.3, 0.7];
        let r = filter_kv_indices(&scores, 0.99, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert!(r.indices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn invalid_alpha_errors() {
        for alpha in [0.0, -0.5, 1.5, f32::NAN] {
            let e = filter_kv_indices(&[1.0], alpha, 1.0, &KvRatioSchedule::Exact).unwrap_err();
            assert!(e.to_string().contains("alpha"), "{e}");
        }
    }

    #[test]
    fn invalid_cap_errors() {
        for cap in [0.0, -1.0, 2.0, f32::NAN] {
            let e = filter_kv_indices(&[1.0], 0.5, cap, &KvRatioSchedule::Exact).unwrap_err();
            assert!(e.to_string().contains("max_kv_ratio"), "{e}");
        }
    }

    #[test]
    fn higher_alpha_selects_no_fewer() {
        let scores: Vec<f32> = (0..64).map(|i| 1.0 / (1.0 + i as f32)).collect();
        let lo = filter_kv_indices(&scores, 0.5, 1.0, &KvRatioSchedule::Exact).unwrap();
        let hi = filter_kv_indices(&scores, 0.95, 1.0, &KvRatioSchedule::Exact).unwrap();
        assert!(hi.indices.len() >= lo.indices.len());
    }
}
