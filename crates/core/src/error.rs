use std::fmt;

use sa_tensor::TensorError;

/// Error type for the SampleAttention pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleAttentionError {
    /// A hyper-parameter was outside its valid range.
    InvalidConfig {
        /// Which field was rejected.
        field: &'static str,
        /// Why it was rejected.
        why: String,
    },
    /// An underlying tensor/kernel operation failed (shape mismatch etc.).
    Tensor(TensorError),
}

impl fmt::Display for SampleAttentionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleAttentionError::InvalidConfig { field, why } => {
                write!(f, "invalid SampleAttention config: {field}: {why}")
            }
            SampleAttentionError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for SampleAttentionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SampleAttentionError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SampleAttentionError {
    fn from(e: TensorError) -> Self {
        SampleAttentionError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SampleAttentionError::InvalidConfig {
            field: "cra_threshold",
            why: "must be in (0, 1]".to_string(),
        };
        assert!(e.to_string().contains("cra_threshold"));
        let t: SampleAttentionError = TensorError::InvalidDimension {
            op: "x",
            what: "y".to_string(),
        }
        .into();
        assert!(std::error::Error::source(&t).is_some());
    }
}
