//! The end-to-end SampleAttention operator.
//!
//! Ties the pipeline together per attention head: stage-1 sampling →
//! stage-2 filtering → mask merging → block-sparse flash attention
//! (Algorithm 1, Figure 3).

use sa_kernels::{sparse_flash_attention, CostReport, StructuredMask};
use sa_tensor::Matrix;

use crate::filtering::{filter_kv_indices, KvRatioSchedule};
use crate::merge::merge_mask_with_diagonals;
use crate::sampling::sample_attention_scores;
use crate::{SampleAttentionConfig, SampleAttentionError};

/// Per-invocation statistics of a SampleAttention forward pass.
#[derive(Debug, Clone, Copy)]
pub struct SampleAttentionStats {
    /// Fraction of key columns selected as stripes (`|I_KV| / S_k`).
    pub kv_ratio: f32,
    /// Fraction of sampled attention mass covered by the stripe set.
    pub covered_mass: f32,
    /// Whether stage-2 actually reached the configured α coverage (false
    /// when the `max_kv_ratio` cap truncated the stripe set short of it).
    pub alpha_satisfied: bool,
    /// Live fraction of the causal triangle in the merged mask.
    pub mask_density: f64,
    /// Cost of stage 1 (fused sampling kernel).
    pub sampling_cost: CostReport,
    /// Cost of stage 2 (sort / filter / gather).
    pub filtering_cost: CostReport,
    /// Cost of the sparse attention kernel.
    pub sparse_cost: CostReport,
}

sa_json::impl_json_struct!(SampleAttentionStats {
    kv_ratio,
    covered_mass,
    alpha_satisfied,
    mask_density,
    sampling_cost,
    filtering_cost,
    sparse_cost
});

impl SampleAttentionStats {
    /// Total cost across all three phases.
    pub fn total_cost(&self) -> CostReport {
        self.sampling_cost + self.filtering_cost + self.sparse_cost
    }

    /// Fraction of total FLOPs spent discovering the mask (stages 1+2) —
    /// the paper's Figure 5(b) "sampling overhead".
    pub fn sampling_overhead_fraction(&self) -> f64 {
        let overhead = self.sampling_cost.flops + self.filtering_cost.flops;
        let total = overhead + self.sparse_cost.flops;
        if total == 0 {
            0.0
        } else {
            overhead as f64 / total as f64
        }
    }
}

/// Result of a SampleAttention forward pass.
#[derive(Debug, Clone)]
pub struct SampleAttentionOutput {
    /// The `(S_q, d_v)` attention output.
    pub output: Matrix,
    /// The merged structured mask that was executed.
    pub mask: StructuredMask,
    /// The selected stripe indices `I_KV`.
    pub kv_indices: Vec<usize>,
    /// Pipeline statistics.
    pub stats: SampleAttentionStats,
}

/// Adaptive structured sparse attention (the paper's headline operator).
///
/// A `SampleAttention` value is a configured, reusable operator: call
/// [`forward`](Self::forward) per attention head. The discovered mask is
/// head- and content-specific because stages 1–2 run on the actual Q/K of
/// the call.
///
/// # Example
///
/// ```
/// use sa_core::{SampleAttention, SampleAttentionConfig};
/// use sa_tensor::DeterministicRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = DeterministicRng::new(1);
/// let q = rng.normal_matrix(128, 8, 1.0);
/// let k = rng.normal_matrix(128, 8, 1.0);
/// let v = rng.normal_matrix(128, 8, 1.0);
/// let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
/// let out = attn.forward(&q, &k, &v)?;
/// // Unstructured random heads are the worst case — the adaptive mask
/// // may legitimately stay dense; structured heads sparsify strongly.
/// assert!(out.stats.mask_density <= 1.0);
/// assert!(out.stats.covered_mass >= 0.95);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SampleAttention {
    config: SampleAttentionConfig,
    schedule: KvRatioSchedule,
}

impl SampleAttention {
    /// Creates the operator with the paper's Algorithm-1 stage-2 schedule
    /// (the coarse candidate-ratio list). The coarse schedule's
    /// overshoot — it keeps the smallest *candidate ratio* clearing `α`,
    /// not the literal minimum — is a deliberate robustness margin: the
    /// columns between the minimal set and the candidate ratio absorb
    /// weak-but-critical stripes (e.g. deep facts seen by few sampled
    /// rows). Use [`with_schedule`](Self::with_schedule) with
    /// [`KvRatioSchedule::Exact`] for the minimal-set variant.
    pub fn new(config: SampleAttentionConfig) -> Self {
        SampleAttention {
            config,
            schedule: KvRatioSchedule::paper_coarse(),
        }
    }

    /// Creates the operator with a custom stage-2 schedule (e.g.
    /// [`KvRatioSchedule::paper_coarse`]).
    pub fn with_schedule(config: SampleAttentionConfig, schedule: KvRatioSchedule) -> Self {
        SampleAttention { config, schedule }
    }

    /// The operator's configuration.
    pub fn config(&self) -> &SampleAttentionConfig {
        &self.config
    }

    /// Runs the full pipeline on one head's Q/K/V.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::Tensor`] on shape mismatches
    /// between `q`, `k` and `v`.
    pub fn forward(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<SampleAttentionOutput, SampleAttentionError> {
        let mask = self.discover_mask(q, k)?;
        self.forward_with_mask(q, k, v, mask.mask, mask.kv_indices, mask.stats)
    }

    /// Runs only the mask-discovery stages (1 + 2 + merge) without the
    /// sparse kernel. Useful for sparsity analysis and for reusing one
    /// head's mask across a GQA group.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::Tensor`] on Q/K shape mismatch.
    pub fn discover_mask(&self, q: &Matrix, k: &Matrix) -> Result<DiscoveredMask, SampleAttentionError> {
        let sampled =
            sample_attention_scores(q, k, self.config.effective_sample_ratio(q.rows()))?;
        let filtered = filter_kv_indices(
            &sampled.column_scores,
            self.config.cra_threshold,
            self.config.max_kv_ratio,
            &self.schedule,
        );
        // Appendix A.6 extension: select heavy relative diagonals beyond
        // the window when enabled.
        let diagonals = if self.config.diagonal_threshold > 0.0 {
            let total: f32 = sampled.diagonal_scores.iter().sum();
            let window = self.config.window_size(k.rows());
            let mut picks: Vec<(usize, f32)> = sampled
                .diagonal_scores
                .iter()
                .enumerate()
                .skip(window) // the window already covers small offsets
                .filter(|&(_, &m)| total > 0.0 && m / total >= self.config.diagonal_threshold)
                .map(|(d, &m)| (d, m))
                .collect();
            picks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            picks.truncate(self.config.max_diagonals);
            picks.into_iter().map(|(d, _)| d).collect()
        } else {
            Vec::new()
        };
        let mask = merge_mask_with_diagonals(
            q.rows(),
            k.rows(),
            &filtered.indices,
            &diagonals,
            &self.config,
        )?;
        let stats = SampleAttentionStats {
            kv_ratio: filtered.kv_ratio,
            covered_mass: filtered.covered_mass,
            alpha_satisfied: filtered.alpha_satisfied,
            mask_density: mask.density(),
            sampling_cost: sampled.cost,
            filtering_cost: filtered.cost,
            sparse_cost: CostReport::new(),
        };
        Ok(DiscoveredMask {
            mask,
            kv_indices: filtered.indices,
            stats,
        })
    }

    fn forward_with_mask(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        mask: StructuredMask,
        kv_indices: Vec<usize>,
        mut stats: SampleAttentionStats,
    ) -> Result<SampleAttentionOutput, SampleAttentionError> {
        let sparse = sparse_flash_attention(q, k, v, &mask)?;
        stats.sparse_cost = sparse.cost;
        Ok(SampleAttentionOutput {
            output: sparse.output,
            mask,
            kv_indices,
            stats,
        })
    }
}

/// A discovered (but not yet executed) structured mask with its discovery
/// statistics.
#[derive(Debug, Clone)]
pub struct DiscoveredMask {
    /// The merged mask.
    pub mask: StructuredMask,
    /// Selected stripe indices.
    pub kv_indices: Vec<usize>,
    /// Stats with `sparse_cost` still zero.
    pub stats: SampleAttentionStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::full_attention;
    use sa_tensor::{cosine_similarity, DeterministicRng};

    fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
        )
    }

    /// Q/K engineered so attention has strong sink + window + stripe
    /// structure (what real long-context heads look like).
    fn structured_qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        let mut k = rng.normal_matrix(s, d, 0.3);
        // Sink: key 0 has a large norm along the queries' shared direction
        // (strong enough to dominate an S-way softmax).
        for j in 0..d {
            let v = k.get(0, j);
            k.set(0, j, v + 4.0);
        }
        // Stripe: key s/2 likewise.
        for j in 0..d {
            let v = k.get(s / 2, j);
            k.set(s / 2, j, v + 4.0);
        }
        let q = Matrix::from_fn(s, d, |_, _| 0.5 + 0.1 * rng.normal());
        let v = rng.normal_matrix(s, d, 1.0);
        (q, k, v)
    }

    #[test]
    fn output_shape_and_mask_validity() {
        let (q, k, v) = qkv(200, 16, 1);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        assert_eq!(out.output.shape(), (200, 16));
        assert_eq!(out.mask.s_q(), 200);
        assert!(out.stats.mask_density > 0.0 && out.stats.mask_density <= 1.0);
    }

    #[test]
    fn near_lossless_on_structured_heads() {
        let (q, k, v) = structured_qkv(256, 16, 2);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let sparse = attn.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let sim = cosine_similarity(sparse.output.as_slice(), exact.output.as_slice());
        assert!(sim > 0.99, "cosine similarity {sim}");
        // And it actually sparsified.
        assert!(sparse.stats.mask_density < 0.6, "density {}", sparse.stats.mask_density);
    }

    #[test]
    fn discovers_engineered_stripes() {
        let (q, k, _) = structured_qkv(256, 16, 3);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let discovered = attn.discover_mask(&q, &k).unwrap();
        // The sink at 0 and stripe at 128 must be in I_KV.
        assert!(discovered.kv_indices.contains(&0), "{:?}", &discovered.kv_indices[..8.min(discovered.kv_indices.len())]);
        assert!(discovered.kv_indices.contains(&128));
    }

    #[test]
    fn higher_alpha_gives_denser_mask() {
        let (q, k, v) = qkv(128, 8, 4);
        let lo = SampleAttention::new(
            SampleAttentionConfig::builder().cra_threshold(0.5).build().unwrap(),
        );
        let hi = SampleAttention::new(
            SampleAttentionConfig::builder().cra_threshold(0.99).build().unwrap(),
        );
        let dl = lo.forward(&q, &k, &v).unwrap().stats.mask_density;
        let dh = hi.forward(&q, &k, &v).unwrap().stats.mask_density;
        assert!(dh >= dl, "{dh} vs {dl}");
    }

    #[test]
    fn alpha_one_recovers_exact_output() {
        let (q, k, v) = qkv(64, 8, 5);
        let cfg = SampleAttentionConfig::builder()
            .cra_threshold(1.0)
            .sample_ratio(1.0)
            .window_ratio(0.05)
            .build()
            .unwrap();
        let attn = SampleAttention::new(cfg);
        let sparse = attn.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let diff = sa_tensor::max_abs_diff(sparse.output.as_slice(), exact.output.as_slice());
        assert!(diff < 1e-3, "max diff {diff}");
    }

    #[test]
    fn stats_costs_populated() {
        let (q, k, v) = qkv(128, 8, 6);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        assert!(out.stats.sampling_cost.flops > 0);
        assert!(out.stats.sparse_cost.flops > 0);
        let frac = out.stats.sampling_overhead_fraction();
        assert!(frac > 0.0 && frac < 1.0, "{frac}");
        let total = out.stats.total_cost();
        assert_eq!(
            total.flops,
            out.stats.sampling_cost.flops
                + out.stats.filtering_cost.flops
                + out.stats.sparse_cost.flops
        );
    }

    #[test]
    fn shape_mismatch_propagates() {
        let (q, k, _) = qkv(16, 8, 7);
        let bad_v = Matrix::zeros(8, 8);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        assert!(attn.forward(&q, &k, &bad_v).is_err());
    }

    #[test]
    fn coarse_schedule_also_near_lossless() {
        let (q, k, v) = structured_qkv(256, 16, 8);
        let attn = SampleAttention::with_schedule(
            SampleAttentionConfig::paper_default(),
            KvRatioSchedule::paper_coarse(),
        );
        let sparse = attn.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let sim = cosine_similarity(sparse.output.as_slice(), exact.output.as_slice());
        assert!(sim > 0.99, "cosine similarity {sim}");
    }

    #[test]
    fn sparse_cheaper_than_full_on_long_sequences() {
        let (q, k, v) = structured_qkv(512, 16, 9);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let sparse = attn.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let total = sparse.stats.total_cost();
        assert!(
            total.flops < exact.cost.flops,
            "sparse {} vs full {}",
            total.flops,
            exact.cost.flops
        );
    }
}
