//! The end-to-end SampleAttention operator.
//!
//! Ties the pipeline together per attention head: stage-1 sampling →
//! stage-2 filtering → mask merging → block-sparse flash attention
//! (Algorithm 1, Figure 3).
//!
//! Numerical-health sentinels guard the stage boundaries (inputs, sampled
//! scores, merged mask, attention output). When one trips, the configured
//! [`HealthPolicy`] decides between propagating the typed error,
//! transparently degrading the head to dense [`flash_attention`], or
//! aborting. See DESIGN.md, "Failure model & degradation policy".
//!
//! When `sa_trace` is enabled, each pipeline stage opens a span in the
//! `core` category (`stage1_sampling`, `stage2_filtering`, `mask_merge`,
//! `sparse_kernel`, `dense_fallback`) — the instrumented ground truth
//! behind the paper's Table 4 stage breakdown — and the health machinery
//! feeds counters: `core.sentinel_trips`, `core.alpha_miss`,
//! `core.fallback.<reason>`, plus the `core.mask_nnz` histogram.

use sa_kernels::{
    flash_attention, sparse_flash_attention, sparse_flash_attention_tiled, CostReport,
    FlashParams, StructuredMask, TiledMask,
};
use sa_tensor::{Matrix, SaError};

use crate::autotune::{select_tile_size, TilePolicy};
use crate::filtering::{filter_kv_indices, KvRatioSchedule};
use crate::merge::merge_mask_with_diagonals;
use crate::sampling::sample_attention_scores;
use crate::sparsity::causal_width;
use crate::{HealthPolicy, SampleAttentionConfig, SampleAttentionError, SparseKernel};

/// Why a head's forward pass degraded to dense attention
/// ([`FallbackReason::None`] = the sparse pipeline ran healthily).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackReason {
    /// No fallback: the sparse pipeline completed.
    #[default]
    None,
    /// Non-finite values in Q/K/V (sentinel A).
    NonFiniteInputs,
    /// Non-finite stage-1 column scores (sentinel B).
    NonFiniteScores,
    /// Stage-1 sampling accumulated no mass despite live causal rows
    /// (sentinel B).
    ZeroSampledMass,
    /// The merged mask kept nothing of a non-empty causal triangle
    /// (sentinel C).
    DegenerateMask,
    /// Stage-2 coverage fell below `α` by more than the configured
    /// tolerance (sentinel C).
    AlphaUnsatisfied,
    /// A worker panicked inside one of the pipeline's kernels.
    WorkerPanic,
    /// The sparse kernel produced non-finite output values (sentinel D).
    NonFiniteOutput,
    /// The serving layer's quality guard routed this head to dense:
    /// canary drift detection quarantined it until it clears probation.
    /// Unlike the sentinels above, this reason is decided upstream of
    /// the pipeline, before the sparse path runs.
    QualityQuarantine,
}

sa_json::impl_json_enum!(FallbackReason {
    None,
    NonFiniteInputs,
    NonFiniteScores,
    ZeroSampledMass,
    DegenerateMask,
    AlphaUnsatisfied,
    WorkerPanic,
    NonFiniteOutput,
    QualityQuarantine
});

impl FallbackReason {
    /// The variant name, matching its JSON encoding (used as the key in
    /// fallback tallies and trace summaries).
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::None => "None",
            FallbackReason::NonFiniteInputs => "NonFiniteInputs",
            FallbackReason::NonFiniteScores => "NonFiniteScores",
            FallbackReason::ZeroSampledMass => "ZeroSampledMass",
            FallbackReason::DegenerateMask => "DegenerateMask",
            FallbackReason::AlphaUnsatisfied => "AlphaUnsatisfied",
            FallbackReason::WorkerPanic => "WorkerPanic",
            FallbackReason::NonFiniteOutput => "NonFiniteOutput",
            FallbackReason::QualityQuarantine => "QualityQuarantine",
        }
    }

    /// All variants that name an actual degradation (everything but
    /// [`FallbackReason::None`]), in declaration order — the stable key
    /// set for fallback tallies.
    pub const DEGRADATIONS: [FallbackReason; 8] = [
        FallbackReason::NonFiniteInputs,
        FallbackReason::NonFiniteScores,
        FallbackReason::ZeroSampledMass,
        FallbackReason::DegenerateMask,
        FallbackReason::AlphaUnsatisfied,
        FallbackReason::WorkerPanic,
        FallbackReason::NonFiniteOutput,
        FallbackReason::QualityQuarantine,
    ];

    /// Registry counter name for this fallback reason (static so hot
    /// paths can record without formatting). Public so upstream routers
    /// (the serving layer's quality guard) record their dense fallbacks
    /// under the same tally.
    pub fn counter_name(self) -> &'static str {
        match self {
            FallbackReason::None => "core.fallback.None",
            FallbackReason::NonFiniteInputs => "core.fallback.NonFiniteInputs",
            FallbackReason::NonFiniteScores => "core.fallback.NonFiniteScores",
            FallbackReason::ZeroSampledMass => "core.fallback.ZeroSampledMass",
            FallbackReason::DegenerateMask => "core.fallback.DegenerateMask",
            FallbackReason::AlphaUnsatisfied => "core.fallback.AlphaUnsatisfied",
            FallbackReason::WorkerPanic => "core.fallback.WorkerPanic",
            FallbackReason::NonFiniteOutput => "core.fallback.NonFiniteOutput",
            FallbackReason::QualityQuarantine => "core.fallback.QualityQuarantine",
        }
    }

    /// Maps a tripped health sentinel to its reason. Only health errors
    /// ([`SaError::is_health_error`]) take the fallback path, so the
    /// non-health arms never materialise as a recorded reason.
    fn from_error(e: &SaError) -> Self {
        match e {
            SaError::NonFinite { stage, .. } => match *stage {
                "inputs" => FallbackReason::NonFiniteInputs,
                "attention_output" => FallbackReason::NonFiniteOutput,
                _ => FallbackReason::NonFiniteScores,
            },
            SaError::DegenerateMask { stage, .. } => {
                if *stage == "stage1_scores" {
                    FallbackReason::ZeroSampledMass
                } else {
                    FallbackReason::DegenerateMask
                }
            }
            SaError::AlphaUnsatisfied { .. } => FallbackReason::AlphaUnsatisfied,
            SaError::WorkerPanic { .. } => FallbackReason::WorkerPanic,
            _ => FallbackReason::None,
        }
    }
}

/// Per-invocation statistics of a SampleAttention forward pass.
#[derive(Debug, Clone, Copy)]
pub struct SampleAttentionStats {
    /// Fraction of key columns selected as stripes (`|I_KV| / S_k`).
    pub kv_ratio: f32,
    /// Fraction of sampled attention mass covered by the stripe set.
    pub covered_mass: f32,
    /// Whether stage-2 actually reached the configured α coverage (false
    /// when the `max_kv_ratio` cap truncated the stripe set short of it).
    pub alpha_satisfied: bool,
    /// Live fraction of the causal triangle in the merged mask.
    pub mask_density: f64,
    /// Why this head degraded to dense attention
    /// ([`FallbackReason::None`] when the sparse pipeline ran).
    pub fallback_reason: FallbackReason,
    /// Cost of stage 1 (fused sampling kernel).
    pub sampling_cost: CostReport,
    /// Cost of stage 2 (sort / filter / gather).
    pub filtering_cost: CostReport,
    /// Cost of the sparse attention kernel (the dense kernel's cost when
    /// the head fell back).
    pub sparse_cost: CostReport,
    /// Tile edge the tiled sparse kernel ran with (`0` when the
    /// row-major kernel or the dense fallback executed instead).
    pub tile_size: usize,
}

sa_json::impl_json_struct!(SampleAttentionStats {
    kv_ratio,
    covered_mass,
    alpha_satisfied,
    mask_density,
    fallback_reason: default,
    sampling_cost,
    filtering_cost,
    sparse_cost,
    tile_size: default
});

impl SampleAttentionStats {
    /// Whether the head degraded to dense attention.
    pub fn fell_back(&self) -> bool {
        self.fallback_reason != FallbackReason::None
    }

    /// Total cost across all three phases.
    pub fn total_cost(&self) -> CostReport {
        self.sampling_cost + self.filtering_cost + self.sparse_cost
    }

    /// Fraction of total FLOPs spent discovering the mask (stages 1+2) —
    /// the paper's Figure 5(b) "sampling overhead".
    pub fn sampling_overhead_fraction(&self) -> f64 {
        let overhead = self.sampling_cost.flops + self.filtering_cost.flops;
        let total = overhead + self.sparse_cost.flops;
        if total == 0 {
            0.0
        } else {
            overhead as f64 / total as f64
        }
    }
}

/// Result of a SampleAttention forward pass.
#[derive(Debug, Clone)]
pub struct SampleAttentionOutput {
    /// The `(S_q, d_v)` attention output.
    pub output: Matrix,
    /// The merged structured mask that was executed.
    pub mask: StructuredMask,
    /// The selected stripe indices `I_KV`.
    pub kv_indices: Vec<usize>,
    /// Pipeline statistics.
    pub stats: SampleAttentionStats,
}

/// Adaptive structured sparse attention (the paper's headline operator).
///
/// A `SampleAttention` value is a configured, reusable operator: call
/// [`forward`](Self::forward) per attention head. The discovered mask is
/// head- and content-specific because stages 1–2 run on the actual Q/K of
/// the call.
///
/// # Example
///
/// ```
/// use sa_core::{SampleAttention, SampleAttentionConfig};
/// use sa_tensor::DeterministicRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = DeterministicRng::new(1);
/// let q = rng.normal_matrix(128, 8, 1.0);
/// let k = rng.normal_matrix(128, 8, 1.0);
/// let v = rng.normal_matrix(128, 8, 1.0);
/// let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
/// let out = attn.forward(&q, &k, &v)?;
/// // Unstructured random heads are the worst case — the adaptive mask
/// // may legitimately stay dense; structured heads sparsify strongly.
/// assert!(out.stats.mask_density <= 1.0);
/// assert!(out.stats.covered_mass >= 0.95);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SampleAttention {
    config: SampleAttentionConfig,
    schedule: KvRatioSchedule,
}

impl SampleAttention {
    /// Creates the operator with the paper's Algorithm-1 stage-2 schedule
    /// (the coarse candidate-ratio list). The coarse schedule's
    /// overshoot — it keeps the smallest *candidate ratio* clearing `α`,
    /// not the literal minimum — is a deliberate robustness margin: the
    /// columns between the minimal set and the candidate ratio absorb
    /// weak-but-critical stripes (e.g. deep facts seen by few sampled
    /// rows). Use [`with_schedule`](Self::with_schedule) with
    /// [`KvRatioSchedule::Exact`] for the minimal-set variant.
    pub fn new(config: SampleAttentionConfig) -> Self {
        SampleAttention {
            config,
            schedule: KvRatioSchedule::paper_coarse(),
        }
    }

    /// Creates the operator with a custom stage-2 schedule (e.g.
    /// [`KvRatioSchedule::paper_coarse`]).
    pub fn with_schedule(config: SampleAttentionConfig, schedule: KvRatioSchedule) -> Self {
        SampleAttention { config, schedule }
    }

    /// The operator's configuration.
    pub fn config(&self) -> &SampleAttentionConfig {
        &self.config
    }

    /// Runs the full pipeline on one head's Q/K/V.
    ///
    /// Numerical-health sentinels run at every stage boundary; when one
    /// trips, the configured [`HealthPolicy`] applies. Under the default
    /// [`HealthPolicy::FallbackDense`], the head transparently re-runs
    /// dense [`flash_attention`] (non-finite inputs sanitised to zero) and
    /// `stats.fallback_reason` records why.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::Tensor`] on shape mismatches
    /// between `q`, `k` and `v` (under every policy), and on tripped
    /// health sentinels under [`HealthPolicy::Propagate`].
    ///
    /// # Panics
    ///
    /// Under [`HealthPolicy::Abort`], a tripped health sentinel raises a
    /// panic carrying the sentinel's message.
    pub fn forward(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<SampleAttentionOutput, SampleAttentionError> {
        match self.try_sparse_forward(q, k, v) {
            Ok(out) => Ok(out),
            Err(SampleAttentionError::Tensor(e)) if e.is_health_error() => {
                match self.config.health_policy {
                    HealthPolicy::Propagate => Err(SampleAttentionError::Tensor(e)),
                    HealthPolicy::Abort => {
                        std::panic::panic_any(format!("SampleAttention abort policy: {e}"))
                    }
                    HealthPolicy::FallbackDense => self
                        .dense_fallback(q, k, v, FallbackReason::from_error(&e))
                        .map_err(SampleAttentionError::Tensor),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// The sparse pipeline with all sentinels armed; health errors are
    /// returned to [`forward`](Self::forward) for policy dispatch.
    fn try_sparse_forward(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<SampleAttentionOutput, SampleAttentionError> {
        // Sentinel A: non-finite Q/K/V poison every later stage (NaN is
        // silently swallowed by `f32::max` inside the softmaxes, so it
        // must be caught here, before it folds into zeros downstream).
        let bad =
            count_nonfinite(q.as_slice()) + count_nonfinite(k.as_slice()) + count_nonfinite(v.as_slice());
        if bad > 0 {
            sentinel_trip();
            return Err(SaError::NonFinite {
                stage: "inputs",
                head: None,
                count: bad,
            }
            .into());
        }
        let mask = self.discover_mask(q, k)?;
        self.forward_with_mask(q, k, v, mask.mask, mask.kv_indices, mask.stats)
    }

    /// Dense degradation path: sanitise non-finite inputs to zero, run the
    /// dense flash kernel, and report full-coverage stats tagged with the
    /// triggering `reason`.
    fn dense_fallback(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        reason: FallbackReason,
    ) -> Result<SampleAttentionOutput, SaError> {
        let _span = sa_trace::span_in("core", "dense_fallback");
        if sa_trace::enabled() {
            sa_trace::metrics::counter(reason.counter_name()).add(1);
        }
        let dense = flash_attention(
            &sanitized(q),
            &sanitized(k),
            &sanitized(v),
            true,
            FlashParams::default(),
        )?;
        let mut output = dense.output;
        // The dense kernel on sanitised inputs is finite by construction,
        // but a belt-and-braces scrub keeps the no-NaN-escape guarantee
        // unconditional.
        for x in output.as_mut_slice() {
            if !x.is_finite() {
                *x = 0.0;
            }
        }
        let mask = StructuredMask::dense_causal(q.rows(), k.rows());
        let stats = SampleAttentionStats {
            kv_ratio: 1.0,
            covered_mass: 1.0,
            alpha_satisfied: true,
            mask_density: 1.0,
            fallback_reason: reason,
            sampling_cost: CostReport::new(),
            filtering_cost: CostReport::new(),
            sparse_cost: dense.cost,
            tile_size: 0,
        };
        Ok(SampleAttentionOutput {
            output,
            mask,
            kv_indices: (0..k.rows()).collect(),
            stats,
        })
    }

    /// Runs only the mask-discovery stages (1 + 2 + merge) without the
    /// sparse kernel. Useful for sparsity analysis and for reusing one
    /// head's mask across a GQA group.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::Tensor`] on Q/K shape mismatch, and
    /// on tripped discovery-stage health sentinels: non-finite or
    /// zero-mass sampled scores, α coverage short of the configured
    /// tolerance, or a degenerate merged mask. (Policy dispatch happens in
    /// [`forward`](Self::forward); this method always propagates.)
    pub fn discover_mask(&self, q: &Matrix, k: &Matrix) -> Result<DiscoveredMask, SampleAttentionError> {
        let stage1 = sa_trace::span_in("core", "stage1_sampling");
        let sampled =
            sample_attention_scores(q, k, self.config.effective_sample_ratio(q.rows()))?;
        // Sentinel B: the stage-1 reduction must produce finite scores
        // with mass whenever any sampled row has live causal keys.
        let bad = count_nonfinite(&sampled.column_scores);
        if bad > 0 {
            sentinel_trip();
            return Err(SaError::NonFinite {
                stage: "sampled_scores",
                head: None,
                count: bad,
            }
            .into());
        }
        let live_rows = sampled
            .sampled_rows
            .iter()
            .any(|&i| causal_width(i, q.rows(), k.rows()) > 0);
        if live_rows && sampled.total_mass() <= 0.0 {
            sentinel_trip();
            return Err(SaError::DegenerateMask {
                stage: "stage1_scores",
                what: format!(
                    "zero sampled mass over {} sampled rows",
                    sampled.sampled_rows.len()
                ),
            }
            .into());
        }
        drop(stage1);
        let stage2 = sa_trace::span_in("core", "stage2_filtering");
        let filtered = filter_kv_indices(
            &sampled.column_scores,
            self.config.cra_threshold,
            self.config.max_kv_ratio,
            &self.schedule,
        )?;
        if !filtered.alpha_satisfied {
            sa_trace::counter_add!("core.alpha_miss", 1);
        }
        // Sentinel C (α half): only under a positive tolerance — a
        // deliberate `max_kv_ratio` cap legitimately under-covers, so the
        // default (0.0) keeps capped configs working unchanged.
        let tolerance = self.config.alpha_fallback_tolerance;
        if tolerance > 0.0
            && !filtered.alpha_satisfied
            && self.config.cra_threshold - filtered.covered_mass > tolerance
        {
            sentinel_trip();
            return Err(SaError::AlphaUnsatisfied {
                covered: filtered.covered_mass,
                alpha: self.config.cra_threshold,
                head: None,
            }
            .into());
        }
        // Appendix A.6 extension: select heavy relative diagonals beyond
        // the window when enabled.
        let diagonals = if self.config.diagonal_threshold > 0.0 {
            let total: f32 = sampled.diagonal_scores.iter().sum();
            let window = self.config.window_size(k.rows());
            let mut picks: Vec<(usize, f32)> = sampled
                .diagonal_scores
                .iter()
                .enumerate()
                .skip(window) // the window already covers small offsets
                .filter(|&(_, &m)| total > 0.0 && m / total >= self.config.diagonal_threshold)
                .map(|(d, &m)| (d, m))
                .collect();
            picks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            picks.truncate(self.config.max_diagonals);
            picks.into_iter().map(|(d, _)| d).collect()
        } else {
            Vec::new()
        };
        drop(stage2);
        let _merge = sa_trace::span_in("core", "mask_merge");
        let mask = merge_mask_with_diagonals(
            q.rows(),
            k.rows(),
            &filtered.indices,
            &diagonals,
            &self.config,
        )?;
        // Sentinel C (mask half): the merge always includes the local
        // window, so an empty mask over a non-empty causal triangle means
        // the discovery stages collapsed.
        if mask.nnz() == 0 && mask.causal_nnz() > 0 {
            sentinel_trip();
            return Err(SaError::DegenerateMask {
                stage: "mask_merge",
                what: "merged mask kept nothing of a non-empty causal triangle".to_string(),
            }
            .into());
        }
        sa_trace::histogram_record!("core.mask_nnz", mask.nnz() as u64);
        let stats = SampleAttentionStats {
            kv_ratio: filtered.kv_ratio,
            covered_mass: filtered.covered_mass,
            alpha_satisfied: filtered.alpha_satisfied,
            mask_density: mask.density(),
            fallback_reason: FallbackReason::None,
            sampling_cost: sampled.cost,
            filtering_cost: filtered.cost,
            sparse_cost: CostReport::new(),
            tile_size: 0,
        };
        Ok(DiscoveredMask {
            mask,
            kv_indices: filtered.indices,
            stats,
        })
    }

    /// Tiles `mask` for the tiled kernel: a pinned `tile_size` wins,
    /// otherwise the seeded autotuner picks per `(S, sparsity)`.
    /// Returns `None` when tiling is degenerate (selection or layout
    /// construction fails), signalling the row-major fallback.
    fn build_tiled(&self, mask: &StructuredMask) -> Option<TiledMask> {
        let tile = if self.config.tile_size > 0 {
            self.config.tile_size
        } else {
            select_tile_size(&TilePolicy::default(), mask).ok()?.tile
        };
        TiledMask::build(mask.clone(), tile).ok()
    }

    fn forward_with_mask(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        mask: StructuredMask,
        kv_indices: Vec<usize>,
        mut stats: SampleAttentionStats,
    ) -> Result<SampleAttentionOutput, SampleAttentionError> {
        let _span = sa_trace::span_in("core", "sparse_kernel");
        let sparse = match self.config.sparse_kernel {
            SparseKernel::RowMajor => sparse_flash_attention(q, k, v, &mask)?,
            SparseKernel::Tiled => match self.build_tiled(&mask) {
                Some(tiled) => {
                    stats.tile_size = tiled.tile();
                    if sa_trace::enabled() {
                        let (full, window, bitmap) = tiled.class_counts();
                        sa_trace::histogram_record!("core.tile_size", tiled.tile() as u64);
                        sa_trace::counter_add!("core.tile_full", full as u64);
                        sa_trace::counter_add!("core.tile_window", window as u64);
                        sa_trace::counter_add!("core.tile_bitmap", bitmap as u64);
                    }
                    sparse_flash_attention_tiled(q, k, v, &tiled)?
                }
                // Degenerate tiling (e.g. an empty merged mask the
                // sentinels let through): run the row-major kernel
                // rather than failing the head over a layout choice.
                None => {
                    sa_trace::counter_add!("core.tile_fallback_rowmajor", 1);
                    sparse_flash_attention(q, k, v, &mask)?
                }
            },
        };
        // Sentinel D: no non-finite value may escape the kernel.
        let bad = count_nonfinite(sparse.output.as_slice());
        if bad > 0 {
            sentinel_trip();
            return Err(SaError::NonFinite {
                stage: "attention_output",
                head: None,
                count: bad,
            }
            .into());
        }
        stats.sparse_cost = sparse.cost;
        Ok(SampleAttentionOutput {
            output: sparse.output,
            mask,
            kv_indices,
            stats,
        })
    }
}

fn count_nonfinite(xs: &[f32]) -> usize {
    xs.iter().filter(|x| !x.is_finite()).count()
}

/// Records one tripped health sentinel in the trace registry.
fn sentinel_trip() {
    sa_trace::counter_add!("core.sentinel_trips", 1);
}

/// A copy with non-finite entries replaced by zero (the dense-fallback
/// input sanitiser).
fn sanitized(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for x in out.as_mut_slice() {
        if !x.is_finite() {
            *x = 0.0;
        }
    }
    out
}

/// A discovered (but not yet executed) structured mask with its discovery
/// statistics.
#[derive(Debug, Clone)]
pub struct DiscoveredMask {
    /// The merged mask.
    pub mask: StructuredMask,
    /// Selected stripe indices.
    pub kv_indices: Vec<usize>,
    /// Stats with `sparse_cost` still zero.
    pub stats: SampleAttentionStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::full_attention;
    use sa_tensor::{cosine_similarity, DeterministicRng};

    fn qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
            rng.normal_matrix(s, d, 1.0),
        )
    }

    /// Q/K engineered so attention has strong sink + window + stripe
    /// structure (what real long-context heads look like).
    fn structured_qkv(s: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        let mut k = rng.normal_matrix(s, d, 0.3);
        // Sink: key 0 has a large norm along the queries' shared direction
        // (strong enough to dominate an S-way softmax).
        for j in 0..d {
            let v = k.get(0, j);
            k.set(0, j, v + 4.0);
        }
        // Stripe: key s/2 likewise.
        for j in 0..d {
            let v = k.get(s / 2, j);
            k.set(s / 2, j, v + 4.0);
        }
        let q = Matrix::from_fn(s, d, |_, _| 0.5 + 0.1 * rng.normal());
        let v = rng.normal_matrix(s, d, 1.0);
        (q, k, v)
    }

    #[test]
    fn output_shape_and_mask_validity() {
        let (q, k, v) = qkv(200, 16, 1);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        assert_eq!(out.output.shape(), (200, 16));
        assert_eq!(out.mask.s_q(), 200);
        assert!(out.stats.mask_density > 0.0 && out.stats.mask_density <= 1.0);
    }

    #[test]
    fn near_lossless_on_structured_heads() {
        let (q, k, v) = structured_qkv(256, 16, 2);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let sparse = attn.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let sim = cosine_similarity(sparse.output.as_slice(), exact.output.as_slice());
        assert!(sim > 0.99, "cosine similarity {sim}");
        // And it actually sparsified.
        assert!(sparse.stats.mask_density < 0.6, "density {}", sparse.stats.mask_density);
    }

    #[test]
    fn discovers_engineered_stripes() {
        let (q, k, _) = structured_qkv(256, 16, 3);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let discovered = attn.discover_mask(&q, &k).unwrap();
        // The sink at 0 and stripe at 128 must be in I_KV.
        assert!(discovered.kv_indices.contains(&0), "{:?}", &discovered.kv_indices[..8.min(discovered.kv_indices.len())]);
        assert!(discovered.kv_indices.contains(&128));
    }

    #[test]
    fn higher_alpha_gives_denser_mask() {
        let (q, k, v) = qkv(128, 8, 4);
        let lo = SampleAttention::new(
            SampleAttentionConfig::builder().cra_threshold(0.5).build().unwrap(),
        );
        let hi = SampleAttention::new(
            SampleAttentionConfig::builder().cra_threshold(0.99).build().unwrap(),
        );
        let dl = lo.forward(&q, &k, &v).unwrap().stats.mask_density;
        let dh = hi.forward(&q, &k, &v).unwrap().stats.mask_density;
        assert!(dh >= dl, "{dh} vs {dl}");
    }

    #[test]
    fn alpha_one_recovers_exact_output() {
        let (q, k, v) = qkv(64, 8, 5);
        let cfg = SampleAttentionConfig::builder()
            .cra_threshold(1.0)
            .sample_ratio(1.0)
            .window_ratio(0.05)
            .build()
            .unwrap();
        let attn = SampleAttention::new(cfg);
        let sparse = attn.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let diff = sa_tensor::max_abs_diff(sparse.output.as_slice(), exact.output.as_slice());
        assert!(diff < 1e-3, "max diff {diff}");
    }

    #[test]
    fn stats_costs_populated() {
        let (q, k, v) = qkv(128, 8, 6);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        assert!(out.stats.sampling_cost.flops > 0);
        assert!(out.stats.sparse_cost.flops > 0);
        let frac = out.stats.sampling_overhead_fraction();
        assert!(frac > 0.0 && frac < 1.0, "{frac}");
        let total = out.stats.total_cost();
        assert_eq!(
            total.flops,
            out.stats.sampling_cost.flops
                + out.stats.filtering_cost.flops
                + out.stats.sparse_cost.flops
        );
    }

    #[test]
    fn shape_mismatch_propagates() {
        let (q, k, _) = qkv(16, 8, 7);
        let bad_v = Matrix::zeros(8, 8);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        assert!(attn.forward(&q, &k, &bad_v).is_err());
    }

    #[test]
    fn nan_inputs_fall_back_to_dense() {
        let (mut q, k, v) = qkv(96, 8, 20);
        q.set(10, 3, f32::NAN);
        q.set(40, 0, f32::INFINITY);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        assert_eq!(out.stats.fallback_reason, FallbackReason::NonFiniteInputs);
        assert!(out.stats.fell_back());
        assert!(out.output.as_slice().iter().all(|x| x.is_finite()));
        // The fallback equals dense attention on the sanitised inputs.
        let exact = full_attention(&sanitized(&q), &k, &v, true).unwrap();
        let diff = sa_tensor::max_abs_diff(out.output.as_slice(), exact.output.as_slice());
        assert!(diff < 1e-4, "max diff {diff}");
        // Fallback stats report full coverage.
        assert_eq!(out.stats.kv_ratio, 1.0);
        assert!(out.stats.alpha_satisfied);
        assert_eq!(out.kv_indices.len(), k.rows());
    }

    #[test]
    fn propagate_policy_surfaces_typed_error() {
        let (mut q, k, v) = qkv(64, 8, 21);
        q.set(0, 0, f32::NAN);
        let cfg = SampleAttentionConfig::builder()
            .health_policy(crate::HealthPolicy::Propagate)
            .build()
            .unwrap();
        let attn = SampleAttention::new(cfg);
        match attn.forward(&q, &k, &v) {
            Err(SampleAttentionError::Tensor(SaError::NonFinite { stage, count, .. })) => {
                assert_eq!(stage, "inputs");
                assert_eq!(count, 1);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn healthy_heads_record_no_fallback() {
        let (q, k, v) = structured_qkv(128, 8, 22);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        assert_eq!(out.stats.fallback_reason, FallbackReason::None);
        assert!(!out.stats.fell_back());
    }

    #[test]
    fn alpha_tolerance_triggers_fallback_when_enabled() {
        // A hard cap under-covers on random heads; with the α sentinel
        // enabled the head degrades to dense instead.
        let (q, k, v) = qkv(256, 8, 23);
        let capped = SampleAttentionConfig::builder()
            .cra_threshold(0.95)
            .max_kv_ratio(0.05)
            .window_ratio(0.01)
            .build()
            .unwrap();
        let strict = SampleAttentionConfig::builder()
            .cra_threshold(0.95)
            .max_kv_ratio(0.05)
            .window_ratio(0.01)
            .alpha_fallback_tolerance(0.01)
            .build()
            .unwrap();
        let plain = SampleAttention::new(capped).forward(&q, &k, &v).unwrap();
        // Precondition: the cap really does truncate coverage below α.
        assert!(!plain.stats.alpha_satisfied);
        assert!(plain.stats.covered_mass < 0.94);
        let fell = SampleAttention::new(strict).forward(&q, &k, &v).unwrap();
        assert_eq!(fell.stats.fallback_reason, FallbackReason::AlphaUnsatisfied);
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let diff = sa_tensor::max_abs_diff(fell.output.as_slice(), exact.output.as_slice());
        assert!(diff < 1e-4, "max diff {diff}");
    }

    #[test]
    fn injected_worker_panic_degrades_gracefully() {
        let (q, k, v) = structured_qkv(128, 8, 24);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let plan = sa_tensor::fault::FaultPlan::new(7).worker_panic("sparse_flash_attention");
        let guard = sa_tensor::fault::install(plan);
        let out = attn.forward(&q, &k, &v).unwrap();
        drop(guard);
        assert_eq!(out.stats.fallback_reason, FallbackReason::WorkerPanic);
        assert!(out.output.as_slice().iter().all(|x| x.is_finite()));
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let diff = sa_tensor::max_abs_diff(out.output.as_slice(), exact.output.as_slice());
        assert!(diff < 1e-4, "max diff {diff}");
    }

    #[test]
    fn stats_json_round_trip_with_fallback_reason() {
        let (q, k, v) = qkv(64, 8, 25);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let stats = attn.forward(&q, &k, &v).unwrap().stats;
        let s = sa_json::to_string(&stats);
        let back: SampleAttentionStats = sa_json::from_str(&s).unwrap();
        assert_eq!(back.fallback_reason, stats.fallback_reason);
        // Legacy payloads without the field parse with `None`.
        let legacy = s.replace(",\"fallback_reason\":\"None\"", "");
        assert!(!legacy.contains("fallback_reason"));
        let old: SampleAttentionStats = sa_json::from_str(&legacy).unwrap();
        assert_eq!(old.fallback_reason, FallbackReason::None);
    }

    #[test]
    fn coarse_schedule_also_near_lossless() {
        let (q, k, v) = structured_qkv(256, 16, 8);
        let attn = SampleAttention::with_schedule(
            SampleAttentionConfig::paper_default(),
            KvRatioSchedule::paper_coarse(),
        );
        let sparse = attn.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let sim = cosine_similarity(sparse.output.as_slice(), exact.output.as_slice());
        assert!(sim > 0.99, "cosine similarity {sim}");
    }

    #[test]
    fn traced_forward_emits_stage_spans() {
        let _session = sa_trace::scoped();
        let (q, k, v) = structured_qkv(128, 8, 30);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        attn.forward(&q, &k, &v).unwrap();
        let events = sa_trace::drain();
        let has = |name: &str| events.iter().any(|e| e.cat == "core" && e.name == name);
        for stage in ["stage1_sampling", "stage2_filtering", "mask_merge", "sparse_kernel"] {
            assert!(has(stage), "missing {stage} span");
        }
        assert!(!has("dense_fallback"), "healthy head must not fall back");
        let snap = sa_trace::metrics::snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "core.mask_nnz")
            .expect("mask nnz histogram");
        assert_eq!(hist.count, 1);
        assert!(hist.max > 0);
    }

    #[test]
    fn traced_fallback_counts_reason_and_sentinel() {
        let _session = sa_trace::scoped();
        let (mut q, k, v) = qkv(96, 8, 31);
        q.set(5, 5, f32::NAN);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let out = attn.forward(&q, &k, &v).unwrap();
        assert_eq!(out.stats.fallback_reason, FallbackReason::NonFiniteInputs);
        assert_eq!(
            sa_trace::metrics::counter("core.fallback.NonFiniteInputs").get(),
            1
        );
        assert_eq!(sa_trace::metrics::counter("core.sentinel_trips").get(), 1);
        let events = sa_trace::drain();
        assert!(events
            .iter()
            .any(|e| e.cat == "core" && e.name == "dense_fallback"));
    }

    #[test]
    fn fallback_reason_as_str_matches_json_encoding() {
        for reason in FallbackReason::DEGRADATIONS {
            let json = sa_json::to_string(&sa_json::ToJson::to_json(&reason));
            assert_eq!(json, format!("\"{}\"", reason.as_str()));
        }
        assert_eq!(FallbackReason::None.as_str(), "None");
    }

    #[test]
    fn sparse_cheaper_than_full_on_long_sequences() {
        let (q, k, v) = structured_qkv(512, 16, 9);
        let attn = SampleAttention::new(SampleAttentionConfig::paper_default());
        let sparse = attn.forward(&q, &k, &v).unwrap();
        let exact = full_attention(&q, &k, &v, true).unwrap();
        let total = sparse.stats.total_cost();
        assert!(
            total.flops < exact.cost.flops,
            "sparse {} vs full {}",
            total.flops,
            exact.cost.flops
        );
    }
}
