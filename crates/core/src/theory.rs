//! Numeric verification of the paper's theory (Appendix A.1).
//!
//! - **Theorem 1** (near-lossless sparse attention): if
//!   `‖P̃ − P‖₁ ≤ ε/R` with `R ≥ max_j ‖V_j‖₁` then `‖Õ − O‖₁ ≤ ε`.
//! - **Lemma 1**: `CRA(M) ≥ 1 − ε/R` for such a mask, since
//!   `‖P̃ − P‖₁ = 1 − CRA(M)` row-wise.
//!
//! These checkers evaluate both sides of the inequalities on concrete
//! matrices so the property tests can assert the bounds hold for every
//! random instance.
//!
//! Norm convention: the paper's proof uses the row-wise induced form
//! `‖AB‖₁ ≤ ‖A‖₁·‖B‖₁` with `‖·‖₁` the maximum row L1 norm for the
//! score-difference factor and the maximum column-sum-compatible bound
//! `R` on `V`. We implement exactly that: per-row L1 of the score
//! difference, `R = max_k ‖V row k‖₁`.

use sa_kernels::{DenseMask, StructuredMask};
use sa_tensor::{matmul, Matrix, SaError};

/// The measured quantities of a Theorem-1 check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoremCheck {
    /// `max_i ‖P̃_i − P_i‖₁` — the score-matrix perturbation.
    pub score_error: f32,
    /// `R = max_k ‖V_k‖₁` — the value-row norm bound.
    pub value_bound: f32,
    /// `max_i ‖Õ_i − O_i‖₁` — the observed output perturbation.
    pub output_error: f32,
    /// The theorem's bound `score_error * value_bound`.
    pub bound: f32,
}

impl TheoremCheck {
    /// Whether the observed output error respects the bound (with a small
    /// floating-point slack).
    pub fn holds(&self) -> bool {
        self.output_error <= self.bound + 1e-4 * self.bound.max(1.0)
    }
}

/// Evaluates Theorem 1 on a probability matrix `p`, mask `mask`, and
/// values `v`: compares `‖Õ − O‖₁` against `‖P̃ − P‖₁ · R`.
///
/// # Panics
///
/// Panics if shapes are inconsistent (`p` is `S_q x S_k`, `v` is
/// `S_k x d`, mask matches `p`).
pub fn check_theorem1(p: &Matrix, mask: &DenseMask, v: &Matrix) -> TheoremCheck {
    assert_eq!((mask.s_q(), mask.s_k()), p.shape(), "mask/p shape mismatch");
    assert_eq!(p.cols(), v.rows(), "p/v shape mismatch");

    // P̃ = M * P (element-wise product, Eq. 2).
    let p_tilde = Matrix::from_fn(p.rows(), p.cols(), |i, j| {
        if mask.get(i, j) {
            p.get(i, j)
        } else {
            0.0
        }
    });

    let o = matmul(p, v).expect("shapes validated");
    let o_tilde = matmul(&p_tilde, v).expect("shapes validated");

    let mut score_error = 0.0f32;
    let mut output_error = 0.0f32;
    for i in 0..p.rows() {
        let se: f32 = p
            .row(i)
            .iter()
            .zip(p_tilde.row(i))
            .map(|(a, b)| (a - b).abs())
            .sum();
        score_error = score_error.max(se);
        let oe: f32 = o
            .row(i)
            .iter()
            .zip(o_tilde.row(i))
            .map(|(a, b)| (a - b).abs())
            .sum();
        output_error = output_error.max(oe);
    }
    let value_bound = (0..v.rows())
        .map(|k| v.row(k).iter().map(|x| x.abs()).sum::<f32>())
        .fold(0.0f32, f32::max);

    TheoremCheck {
        score_error,
        value_bound,
        output_error,
        bound: score_error * value_bound,
    }
}

/// Evaluates Lemma 1: for a row-stochastic `p`, verifies
/// `CRA(M) = 1 − max_i ‖P̃_i − P_i‖₁` and returns
/// `(cra, one_minus_score_error)`.
///
/// The two values agree exactly for row-stochastic `p` (each row of
/// `P̃ − P` is the dropped probability mass).
///
/// # Errors
///
/// Returns [`SaError::ShapeMismatch`] on shape mismatch between `p` and
/// `mask`.
pub fn check_lemma1(p: &Matrix, mask: &StructuredMask) -> Result<(f32, f32), SaError> {
    let cra = crate::cra::cra_of_structured_mask(p, mask)?;
    let mut max_dropped = 0.0f32;
    for i in 0..p.rows() {
        let total: f32 = p.row(i).iter().sum();
        if total <= 0.0 {
            continue;
        }
        let dropped: f32 = p
            .row(i)
            .iter()
            .enumerate()
            .filter(|&(j, _)| !mask.is_allowed(i, j))
            .map(|(_, &v)| v)
            .sum();
        max_dropped = max_dropped.max(dropped / total);
    }
    Ok((cra, 1.0 - max_dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::attention_probs;
    use sa_tensor::DeterministicRng;

    fn setup(s: usize, d: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        let q = rng.normal_matrix(s, d, 1.0);
        let k = rng.normal_matrix(s, d, 1.0);
        let p = attention_probs(&q, &k, true).unwrap();
        let v = rng.normal_matrix(s, d, 1.0);
        (p, v)
    }

    #[test]
    fn theorem1_holds_for_random_masks() {
        let (p, v) = setup(32, 8, 1);
        let mut rng = DeterministicRng::new(2);
        for _ in 0..10 {
            let mut mask = DenseMask::zeros(32, 32);
            for i in 0..32 {
                for j in 0..=i {
                    if rng.chance(0.5) {
                        mask.set(i, j, true);
                    }
                }
            }
            let check = check_theorem1(&p, &mask, &v);
            assert!(check.holds(), "{check:?}");
        }
    }

    #[test]
    fn full_mask_zero_error() {
        let (p, v) = setup(16, 4, 3);
        let check = check_theorem1(&p, &DenseMask::causal(16, 16), &v);
        assert_eq!(check.score_error, 0.0);
        assert_eq!(check.output_error, 0.0);
        assert!(check.holds());
    }

    #[test]
    fn empty_mask_score_error_is_one() {
        let (p, v) = setup(16, 4, 4);
        let check = check_theorem1(&p, &DenseMask::zeros(16, 16), &v);
        assert!((check.score_error - 1.0).abs() < 1e-4);
        assert!(check.holds());
    }

    #[test]
    fn bound_is_tightish_for_aligned_values() {
        // With all value rows equal to a constant positive vector, dropping
        // mass m loses exactly m * ||v||_1: the bound is met with equality.
        let s = 8;
        let p = Matrix::from_fn(s, s, |i, j| {
            if j <= i {
                1.0 / (i + 1) as f32
            } else {
                0.0
            }
        });
        let v = Matrix::full(s, 3, 1.0);
        let mut mask = DenseMask::causal(s, s);
        mask.set(s - 1, 0, false); // drop one entry from the last row
        let check = check_theorem1(&p, &mask, &v);
        assert!(check.holds());
        assert!(check.output_error > 0.5 * check.bound, "{check:?}");
    }

    #[test]
    fn lemma1_equality() {
        let (p, _) = setup(24, 8, 5);
        for window in [2usize, 6, 12] {
            let mask = StructuredMask::builder(24, 24)
                .window(window)
                .sinks(1)
                .build()
                .unwrap();
            let (cra, one_minus_err) = check_lemma1(&p, &mask).unwrap();
            assert!((cra - one_minus_err).abs() < 1e-5, "w={window}: {cra} vs {one_minus_err}");
        }
    }

    #[test]
    fn lemma1_bound_direction() {
        // CRA >= 1 - eps/R  with eps/R = max dropped mass: equality here,
        // so any mask keeping everything trivially has CRA = 1.
        let (p, _) = setup(16, 4, 6);
        let full = StructuredMask::dense_causal(16, 16);
        let (cra, om) = check_lemma1(&p, &full).unwrap();
        assert!((cra - 1.0).abs() < 1e-5);
        assert!((om - 1.0).abs() < 1e-5);
    }
}
