//! The adaptive degradation ladder.
//!
//! Under deadline or memory pressure a serving scheduler cannot afford
//! full attention for every request — but silently switching a request
//! to a cheaper attention method would violate the paper's near-lossless
//! contract (CRA ≥ α, Definition 2). The ladder makes the trade-off
//! explicit and *auditable*: each request starts at the highest rung its
//! constraints admit and is re-admitted one rung down under pressure,
//! and every rung it lands on is recorded in a [`DegradationReport`]
//! together with whether that rung still certified the α target.
//!
//! The rungs, top to bottom:
//!
//! | rung | method | α certification |
//! |---|---|---|
//! | [`Full`] | exact attention | trivially certified |
//! | [`PaperDefault`] | SampleAttention, `α=0.95, r_row=5%, r_w=8%` | measured (stage-2 CRA) |
//! | [`Tight`] | SampleAttention, `α=0.90, r_row=2%, r_w=4%` | measured (stage-2 CRA) |
//! | [`WindowOnly`] | fixed local window, `r_w=4%` | **never** — no CRA measurement exists |
//!
//! The bottom rung trades away the coverage guarantee entirely: a fixed
//! window has no stage-2 and therefore no CRA measurement, so the report
//! records `alpha_satisfied = false` for it *unconditionally*. This is
//! the ladder's core invariant — enforced by [`DegradationReport::record`]
//! by construction, not by caller discipline: a request can end below
//! the α target, but never silently.
//!
//! [`Full`]: DegradationRung::Full
//! [`PaperDefault`]: DegradationRung::PaperDefault
//! [`Tight`]: DegradationRung::Tight
//! [`WindowOnly`]: DegradationRung::WindowOnly

use crate::{SampleAttentionConfig, SampleAttentionError};

/// One rung of the degradation ladder, ordered cheapest-guarantee last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationRung {
    /// Exact full attention — the quality ceiling, quadratic cost.
    Full,
    /// SampleAttention at the paper's tuned operating point
    /// (`α = 0.95`, `r_row = 5 %`, `r_w = 8 %`).
    PaperDefault,
    /// SampleAttention with a tighter budget (`α = 0.90`, `r_row = 2 %`,
    /// `r_w = 4 %`): cheaper discovery and sparser masks, still CRA-
    /// measured.
    Tight,
    /// Fixed local window only (`r_w = 4 %`), StreamingLLM-style: the
    /// cheapest rung, with no coverage measurement at all.
    WindowOnly,
}

sa_json::impl_json_enum!(DegradationRung {
    Full,
    PaperDefault,
    Tight,
    WindowOnly
});

impl DegradationRung {
    /// All rungs, top (most faithful) to bottom (cheapest).
    pub const ALL: [DegradationRung; 4] = [
        DegradationRung::Full,
        DegradationRung::PaperDefault,
        DegradationRung::Tight,
        DegradationRung::WindowOnly,
    ];

    /// The window ratio used by the [`WindowOnly`](Self::WindowOnly) and
    /// [`Tight`](Self::Tight) rungs.
    pub const TIGHT_WINDOW_RATIO: f32 = 0.04;

    /// Position in [`DegradationRung::ALL`] (0 = full attention).
    pub fn index(self) -> usize {
        match self {
            DegradationRung::Full => 0,
            DegradationRung::PaperDefault => 1,
            DegradationRung::Tight => 2,
            DegradationRung::WindowOnly => 3,
        }
    }

    /// Stable snake_case name for ledgers and metrics labels.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationRung::Full => "full",
            DegradationRung::PaperDefault => "paper_default",
            DegradationRung::Tight => "tight",
            DegradationRung::WindowOnly => "window_only",
        }
    }

    /// The next rung down, or `None` at the bottom of the ladder.
    pub fn next_down(self) -> Option<DegradationRung> {
        DegradationRung::ALL.get(self.index() + 1).copied()
    }

    /// The SampleAttention configuration for the rungs that run
    /// SampleAttention; `None` for [`Full`](Self::Full) and
    /// [`WindowOnly`](Self::WindowOnly), which use other methods.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in rungs; the `Result` comes from the
    /// config builder's validation.
    pub fn sample_config(self) -> Result<Option<SampleAttentionConfig>, SampleAttentionError> {
        match self {
            DegradationRung::Full | DegradationRung::WindowOnly => Ok(None),
            DegradationRung::PaperDefault => Ok(Some(SampleAttentionConfig::paper_default())),
            DegradationRung::Tight => SampleAttentionConfig::builder()
                .cra_threshold(0.90)
                .sample_ratio(0.02)
                .window_ratio(Self::TIGHT_WINDOW_RATIO)
                .build()
                .map(Some),
        }
    }

    /// Whether the rung *can* certify the near-lossless α target: exact
    /// attention trivially covers any α, and the SampleAttention rungs
    /// measure CRA in stage 2. The window-only rung has no measurement
    /// and can never certify.
    pub fn can_certify_alpha(self) -> bool {
        !matches!(self, DegradationRung::WindowOnly)
    }

    /// Deterministic relative cost of the rung versus full attention, as
    /// used by the scheduler's *virtual* cost model (admission and
    /// deadline-feasibility decisions — never real timing). Derived from
    /// the typical mask densities the bench binaries measure: the paper
    /// point computes roughly a quarter of the causal triangle at the
    /// bench's sequence lengths, the tight point roughly an eighth, and a
    /// 4 % window less than a tenth.
    pub fn cost_factor(self) -> f64 {
        match self {
            DegradationRung::Full => 1.0,
            DegradationRung::PaperDefault => 0.25,
            DegradationRung::Tight => 0.12,
            DegradationRung::WindowOnly => 0.08,
        }
    }
}

impl std::fmt::Display for DegradationRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rung a request actually ran (or was considered) at.
#[derive(Debug, Clone, PartialEq)]
pub struct RungAttempt {
    /// The rung.
    pub rung: DegradationRung,
    /// Whether the rung satisfied the report's α target: measured CRA
    /// for the SampleAttention rungs, trivially `true` for full
    /// attention, and forced `false` for window-only (no measurement).
    pub alpha_satisfied: bool,
    /// What happened at this rung: `"served"`, `"deadline_infeasible"`,
    /// `"retry_exhausted"`, or an error category.
    pub outcome: String,
}

sa_json::impl_json_struct!(RungAttempt {
    rung,
    alpha_satisfied,
    outcome
});

/// The per-request audit trail of the degradation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// The near-lossless target the request was admitted under
    /// (the paper's `α`, 0.95 by default).
    pub alpha_target: f32,
    /// Every rung considered or executed, in ladder order.
    pub attempts: Vec<RungAttempt>,
}

sa_json::impl_json_struct!(DegradationReport {
    alpha_target,
    attempts
});

impl DegradationReport {
    /// An empty report for the given α target.
    pub fn new(alpha_target: f32) -> Self {
        DegradationReport {
            alpha_target,
            attempts: Vec::new(),
        }
    }

    /// Records an attempt at `rung`. `measured_alpha_ok` is the CRA
    /// verdict from the actual run (every head's stage-2 coverage met the
    /// target) — it is only trusted for rungs that can certify; for
    /// [`DegradationRung::WindowOnly`] the recorded `alpha_satisfied` is
    /// forced to `false` regardless, so a drop below the α target can
    /// never be silent.
    pub fn record(&mut self, rung: DegradationRung, measured_alpha_ok: bool, outcome: &str) {
        self.attempts.push(RungAttempt {
            rung,
            alpha_satisfied: rung.can_certify_alpha() && measured_alpha_ok,
            outcome: outcome.to_string(),
        });
    }

    /// The rung of the last attempt, if any.
    pub fn final_rung(&self) -> Option<DegradationRung> {
        self.attempts.last().map(|a| a.rung)
    }

    /// True when the request ended on a lower rung than it started on.
    pub fn degraded(&self) -> bool {
        match (self.attempts.first(), self.attempts.last()) {
            (Some(first), Some(last)) => last.rung.index() > first.rung.index(),
            _ => false,
        }
    }

    /// True when the final attempt is recorded as satisfying the α
    /// target. `false` for an empty report.
    pub fn final_alpha_satisfied(&self) -> bool {
        self.attempts.last().is_some_and(|a| a.alpha_satisfied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_json::{FromJson, ToJson};

    #[test]
    fn ladder_order_and_traversal() {
        assert_eq!(DegradationRung::ALL.len(), 4);
        assert_eq!(DegradationRung::Full.next_down(), Some(DegradationRung::PaperDefault));
        assert_eq!(
            DegradationRung::PaperDefault.next_down(),
            Some(DegradationRung::Tight)
        );
        assert_eq!(
            DegradationRung::Tight.next_down(),
            Some(DegradationRung::WindowOnly)
        );
        assert_eq!(DegradationRung::WindowOnly.next_down(), None);
        for (i, r) in DegradationRung::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn rung_configs_validate() {
        assert!(DegradationRung::Full.sample_config().unwrap().is_none());
        assert!(DegradationRung::WindowOnly.sample_config().unwrap().is_none());
        let paper = DegradationRung::PaperDefault
            .sample_config()
            .unwrap()
            .expect("paper rung has a config");
        assert_eq!(paper, SampleAttentionConfig::paper_default());
        let tight = DegradationRung::Tight
            .sample_config()
            .unwrap()
            .expect("tight rung has a config");
        assert!(tight.cra_threshold < paper.cra_threshold);
        assert!(tight.sample_ratio < paper.sample_ratio);
        assert!(tight.window_ratio < paper.window_ratio);
    }

    #[test]
    fn cost_factors_strictly_decrease_down_the_ladder() {
        let costs: Vec<f64> = DegradationRung::ALL.iter().map(|r| r.cost_factor()).collect();
        for pair in costs.windows(2) {
            assert!(pair[0] > pair[1], "{costs:?} not strictly decreasing");
        }
        assert_eq!(costs[0], 1.0);
    }

    #[test]
    fn window_only_can_never_record_alpha_satisfied() {
        // The acceptance invariant: dropping below the α target is never
        // silent. Even a (buggy or malicious) caller passing
        // `measured_alpha_ok = true` cannot make the window rung claim
        // certification.
        let mut report = DegradationReport::new(0.95);
        report.record(DegradationRung::WindowOnly, true, "served");
        assert!(!report.final_alpha_satisfied());
        assert_eq!(report.attempts[0].alpha_satisfied, false);
    }

    #[test]
    fn report_tracks_degradation_path() {
        let mut report = DegradationReport::new(0.95);
        assert!(!report.degraded());
        assert!(!report.final_alpha_satisfied());
        report.record(DegradationRung::Full, true, "deadline_infeasible");
        assert!(!report.degraded());
        report.record(DegradationRung::PaperDefault, true, "served");
        assert!(report.degraded());
        assert_eq!(report.final_rung(), Some(DegradationRung::PaperDefault));
        assert!(report.final_alpha_satisfied());
    }

    #[test]
    fn measured_verdict_respected_for_certifying_rungs() {
        let mut report = DegradationReport::new(0.95);
        report.record(DegradationRung::Tight, false, "served");
        assert!(!report.final_alpha_satisfied());
        report.record(DegradationRung::PaperDefault, true, "served");
        assert!(report.final_alpha_satisfied());
    }

    #[test]
    fn rung_json_round_trip() {
        for rung in DegradationRung::ALL {
            let j = rung.to_json();
            let back = DegradationRung::from_json(&j).expect("rung round-trips");
            assert_eq!(back, rung);
        }
        let mut report = DegradationReport::new(0.95);
        report.record(DegradationRung::PaperDefault, true, "served");
        report.record(DegradationRung::WindowOnly, true, "served");
        let text = sa_json::to_string_pretty(&report.to_json());
        let doc = sa_json::parse(&text).expect("report serializes");
        let back = DegradationReport::from_json(&doc).expect("report round-trips");
        assert_eq!(back, report);
    }

    #[test]
    fn display_names_are_snake_case() {
        assert_eq!(DegradationRung::PaperDefault.to_string(), "paper_default");
        assert_eq!(DegradationRung::WindowOnly.as_str(), "window_only");
    }
}
