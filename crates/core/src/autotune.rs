//! Runtime hyper-parameter autotuning (the paper's Appendix A.6 future
//! work: "we aim to implement autotuning of these hyperparameters during
//! task runtime, enabling SampleAttention to consistently achieve high
//! accuracy and low latency across diverse sequence lengths and
//! scenarios").
//!
//! [`RuntimeAutotuner`] is a deterministic feedback controller over the
//! CRA threshold `α`: every forward reports its achieved mask density
//! (the latency proxy) and covered sampled mass (the quality proxy); the
//! controller nudges `α` down while the density exceeds a latency budget
//! and back up when there is headroom, within safety bounds.
//! [`AdaptiveSampleAttention`] wraps the base operator with the
//! controller in the loop.

use sa_kernels::{StructuredMask, TiledMask, MAX_TILE};
use sa_tensor::{splitmix64, Matrix, TensorError};

use crate::{
    SampleAttention, SampleAttentionConfig, SampleAttentionError, SampleAttentionOutput,
    SampleAttentionStats,
};

/// Configuration of the runtime `α` controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneConfig {
    /// Mask-density budget the controller steers towards (latency SLO
    /// proxy; e.g. 0.3 = at most 30 % of the causal triangle computed).
    pub density_budget: f64,
    /// Lower bound on `α` (quality floor).
    pub min_alpha: f32,
    /// Upper bound on `α`.
    pub max_alpha: f32,
    /// Multiplicative step applied to `1 - α` per adjustment.
    pub step: f32,
    /// Observations between adjustments (smoothing window).
    pub window: usize,
}

sa_json::impl_json_struct!(AutotuneConfig {
    density_budget,
    min_alpha,
    max_alpha,
    step,
    window
});

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            density_budget: 0.5,
            min_alpha: 0.80,
            max_alpha: 0.99,
            step: 1.3,
            window: 4,
        }
    }
}

/// Deterministic runtime controller over the CRA threshold.
#[derive(Debug, Clone)]
pub struct RuntimeAutotuner {
    config: AutotuneConfig,
    alpha: f32,
    pending: Vec<f64>,
    adjustments: usize,
}

impl RuntimeAutotuner {
    /// Creates the controller starting from `initial_alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::InvalidConfig`] if the bounds are
    /// inconsistent or `initial_alpha` lies outside them.
    pub fn new(initial_alpha: f32, config: AutotuneConfig) -> Result<Self, SampleAttentionError> {
        if !(config.min_alpha > 0.0
            && config.min_alpha < config.max_alpha
            && config.max_alpha < 1.0)
        {
            return Err(SampleAttentionError::InvalidConfig {
                field: "autotune bounds",
                why: format!(
                    "need 0 < min_alpha < max_alpha < 1, got [{}, {}]",
                    config.min_alpha, config.max_alpha
                ),
            });
        }
        if !(config.density_budget > 0.0 && config.density_budget <= 1.0) {
            return Err(SampleAttentionError::InvalidConfig {
                field: "density_budget",
                why: format!("must be in (0, 1], got {}", config.density_budget),
            });
        }
        if !(initial_alpha >= config.min_alpha && initial_alpha <= config.max_alpha) {
            return Err(SampleAttentionError::InvalidConfig {
                field: "initial_alpha",
                why: format!(
                    "{initial_alpha} outside [{}, {}]",
                    config.min_alpha, config.max_alpha
                ),
            });
        }
        Ok(RuntimeAutotuner {
            config,
            alpha: initial_alpha,
            pending: Vec::new(),
            adjustments: 0,
        })
    }

    /// The current `α`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Number of adjustments made so far.
    pub fn adjustments(&self) -> usize {
        self.adjustments
    }

    /// Feeds one forward's statistics into the controller.
    pub fn observe(&mut self, stats: &SampleAttentionStats) {
        self.pending.push(stats.mask_density);
        if self.pending.len() < self.config.window {
            return;
        }
        let mean: f64 = self.pending.iter().sum::<f64>() / self.pending.len() as f64;
        self.pending.clear();
        let slack = 1.0 - self.alpha;
        let new_alpha = if mean > self.config.density_budget {
            // Too dense → loosen the CRA requirement.
            1.0 - slack * self.config.step
        } else if mean < 0.7 * self.config.density_budget {
            // Headroom → tighten for quality.
            1.0 - slack / self.config.step
        } else {
            self.alpha
        };
        let clamped = new_alpha.clamp(self.config.min_alpha, self.config.max_alpha);
        if (clamped - self.alpha).abs() > f32::EPSILON {
            self.adjustments += 1;
            self.alpha = clamped;
        }
    }
}

/// SampleAttention with the runtime controller in the loop.
#[derive(Debug, Clone)]
pub struct AdaptiveSampleAttention {
    base: SampleAttentionConfig,
    tuner: RuntimeAutotuner,
}

impl AdaptiveSampleAttention {
    /// Wraps a base configuration with a controller.
    ///
    /// # Errors
    ///
    /// Propagates controller validation errors.
    pub fn new(
        base: SampleAttentionConfig,
        autotune: AutotuneConfig,
    ) -> Result<Self, SampleAttentionError> {
        let initial = base
            .cra_threshold
            .clamp(autotune.min_alpha, autotune.max_alpha);
        Ok(AdaptiveSampleAttention {
            base,
            tuner: RuntimeAutotuner::new(initial, autotune)?,
        })
    }

    /// The controller's current `α`.
    pub fn alpha(&self) -> f32 {
        self.tuner.alpha()
    }

    /// Access to the controller.
    pub fn tuner(&self) -> &RuntimeAutotuner {
        &self.tuner
    }

    /// Runs a forward at the current `α`, then updates the controller.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn forward(
        &mut self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<SampleAttentionOutput, SampleAttentionError> {
        let config = SampleAttentionConfig {
            cra_threshold: self.tuner.alpha(),
            ..self.base
        };
        let out = SampleAttention::new(config).forward(q, k, v)?;
        self.tuner.observe(&out.stats);
        Ok(out)
    }
}

/// Convenience: validates shapes the same way the base operator does.
impl AdaptiveSampleAttention {
    /// Runs `n` forwards on the same tensors (useful in tests/benches to
    /// watch the controller converge).
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn run_n(
        &mut self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        n: usize,
    ) -> Result<Vec<f32>, TensorError> {
        let mut alphas = Vec::with_capacity(n);
        for _ in 0..n {
            self.forward(q, k, v).map_err(|e| match e {
                SampleAttentionError::Tensor(t) => t,
                other => TensorError::InvalidDimension {
                    op: "AdaptiveSampleAttention::run_n",
                    what: other.to_string(),
                },
            })?;
            alphas.push(self.alpha());
        }
        Ok(alphas)
    }
}

/// Seeded deterministic tile-size selection policy for the tiled
/// block-sparse kernel.
///
/// Selection is a pure function of `(policy, mask shape, sparsity)`:
/// candidates are ranked by the analytic load predictor
/// ([`TiledMask::predict_row_loads`]), and near-ties (within 1 % of the
/// best score) are broken by a hash seeded from `seed` and the problem
/// signature — never by timing, thread count, or ambient state — so the
/// same inputs pick the same tile size on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilePolicy {
    /// Candidate tile edges, each in `1..=MAX_TILE`.
    pub candidates: Vec<usize>,
    /// Seed for the deterministic near-tie break.
    pub seed: u64,
}

impl Default for TilePolicy {
    fn default() -> Self {
        TilePolicy {
            candidates: vec![8, 16, 32, 64],
            seed: 0x5a17_317e,
        }
    }
}

/// Outcome of a tile-size selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileChoice {
    /// The selected tile edge, always in `1..=MAX_TILE`.
    pub tile: usize,
    /// The predictor's load score for the selection (`u64::MAX` when
    /// the fallback path skipped prediction).
    pub predicted_loads: u64,
    /// `true` when a degenerate input (empty mask, or a problem smaller
    /// than every candidate) forced the clamped fallback tile.
    pub fallback: bool,
}

/// Selects a tile size for `mask` under `policy`.
///
/// Degenerate inputs — an empty mask, or a problem smaller than every
/// candidate — resolve to a valid clamped fallback tile instead of an
/// error, so mask discovery can always proceed.
///
/// # Errors
///
/// Returns [`SampleAttentionError::InvalidConfig`] when the candidate
/// list is empty or contains a tile outside `1..=MAX_TILE`, and a typed
/// dimension error when the mask has a zero dimension.
pub fn select_tile_size(
    policy: &TilePolicy,
    mask: &StructuredMask,
) -> Result<TileChoice, SampleAttentionError> {
    if policy.candidates.is_empty() {
        return Err(SampleAttentionError::InvalidConfig {
            field: "tile candidates",
            why: "candidate list is empty".to_string(),
        });
    }
    if let Some(&bad) = policy.candidates.iter().find(|&&c| c == 0 || c > MAX_TILE) {
        return Err(SampleAttentionError::InvalidConfig {
            field: "tile candidates",
            why: format!("tile {bad} outside 1..={MAX_TILE}"),
        });
    }
    if mask.s_q() == 0 || mask.s_k() == 0 {
        return Err(SampleAttentionError::Tensor(TensorError::InvalidDimension {
            op: "select_tile_size",
            what: format!("degenerate mask shape {}x{}", mask.s_q(), mask.s_k()),
        }));
    }
    let s = mask.s_q().min(mask.s_k());
    let fallback_tile = s.clamp(1, MAX_TILE);
    if mask.nnz() == 0 {
        return Ok(TileChoice {
            tile: fallback_tile,
            predicted_loads: u64::MAX,
            fallback: true,
        });
    }
    // Tiles wider than the problem only add padding; drop them. If that
    // empties the list the problem is smaller than every candidate —
    // fall back to the clamped problem size.
    let usable: Vec<usize> = policy
        .candidates
        .iter()
        .copied()
        .filter(|&c| c <= s)
        .collect();
    if usable.is_empty() {
        return Ok(TileChoice {
            tile: fallback_tile,
            predicted_loads: TiledMask::predict_row_loads(mask, fallback_tile),
            fallback: true,
        });
    }
    let scored: Vec<(usize, u64)> = usable
        .iter()
        .map(|&c| (c, TiledMask::predict_row_loads(mask, c)))
        .collect();
    let best = scored.iter().map(|&(_, s)| s).min().unwrap_or(u64::MAX);
    let slack = best / 100;
    let ties: Vec<(usize, u64)> = scored
        .into_iter()
        .filter(|&(_, s)| s <= best.saturating_add(slack))
        .collect();
    let sparsity_bucket = (mask.sparsity().clamp(0.0, 1.0) * 16.0) as u64;
    let mut state =
        policy.seed ^ (mask.s_q() as u64) ^ ((mask.s_k() as u64) << 20) ^ (sparsity_bucket << 56);
    let key = splitmix64(&mut state);
    let (tile, predicted_loads) = ties[(key % ties.len() as u64) as usize];
    Ok(TileChoice {
        tile,
        predicted_loads,
        fallback: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    fn dense_qk(s: usize) -> (Matrix, Matrix, Matrix) {
        // Random heads: the adaptive mask stays dense at high alpha.
        let mut rng = DeterministicRng::new(5);
        (
            rng.normal_matrix(s, 16, 1.0),
            rng.normal_matrix(s, 16, 1.0),
            rng.normal_matrix(s, 16, 1.0),
        )
    }

    #[test]
    fn controller_lowers_alpha_under_budget_pressure() {
        let (q, k, v) = dense_qk(256);
        let autotune = AutotuneConfig {
            density_budget: 0.3,
            window: 2,
            ..AutotuneConfig::default()
        };
        let mut attn =
            AdaptiveSampleAttention::new(SampleAttentionConfig::paper_default(), autotune).unwrap();
        let start = attn.alpha();
        let alphas = attn.run_n(&q, &k, &v, 12).unwrap();
        assert!(
            alphas.last().unwrap() < &start,
            "alpha did not drop: {alphas:?}"
        );
        assert!(attn.tuner().adjustments() >= 1);
        assert!(*alphas.last().unwrap() >= autotune.min_alpha);
    }

    #[test]
    fn controller_respects_bounds() {
        let (q, k, v) = dense_qk(128);
        let autotune = AutotuneConfig {
            density_budget: 0.01, // impossible: slams into min_alpha
            window: 1,
            ..AutotuneConfig::default()
        };
        let mut attn =
            AdaptiveSampleAttention::new(SampleAttentionConfig::paper_default(), autotune).unwrap();
        let alphas = attn.run_n(&q, &k, &v, 20).unwrap();
        assert!((alphas.last().unwrap() - autotune.min_alpha).abs() < 1e-6);
    }

    #[test]
    fn controller_raises_alpha_with_headroom() {
        // A strongly structured head is already far below budget: the
        // controller should push alpha up toward max for quality.
        let mut rng = DeterministicRng::new(6);
        let s = 256;
        let d = 16;
        let mut k = rng.normal_matrix(s, d, 0.3);
        for j in 0..d {
            let v0 = k.get(0, j);
            k.set(0, j, v0 + 4.0);
        }
        let q = Matrix::from_fn(s, d, |_, _| 0.5 + 0.1 * rng.normal());
        let v = rng.normal_matrix(s, d, 1.0);
        let autotune = AutotuneConfig {
            density_budget: 0.9,
            window: 1,
            ..AutotuneConfig::default()
        };
        let base = SampleAttentionConfig::builder()
            .cra_threshold(0.85)
            .build()
            .unwrap();
        let mut attn = AdaptiveSampleAttention::new(base, autotune).unwrap();
        let alphas = attn.run_n(&q, &k, &v, 10).unwrap();
        assert!(alphas.last().unwrap() > &0.85, "{alphas:?}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad_bounds = AutotuneConfig {
            min_alpha: 0.9,
            max_alpha: 0.8,
            ..AutotuneConfig::default()
        };
        assert!(RuntimeAutotuner::new(0.85, bad_bounds).is_err());
        let bad_budget = AutotuneConfig {
            density_budget: 0.0,
            ..AutotuneConfig::default()
        };
        assert!(RuntimeAutotuner::new(0.9, bad_budget).is_err());
        assert!(RuntimeAutotuner::new(0.5, AutotuneConfig::default()).is_err());
    }

    #[test]
    fn tile_selection_deterministic_across_runs_and_threads() {
        let mask = StructuredMask::builder(512, 512)
            .window(24)
            .sinks(4)
            .columns(vec![100, 333])
            .build()
            .unwrap();
        let policy = TilePolicy::default();
        let first = select_tile_size(&policy, &mask).unwrap();
        for _ in 0..5 {
            assert_eq!(select_tile_size(&policy, &mask).unwrap(), first);
        }
        for threads in [1, 2, 3] {
            let under_threads =
                sa_tensor::pool::with_threads(threads, || select_tile_size(&policy, &mask))
                    .unwrap();
            assert_eq!(under_threads, first, "selection drifted at threads={threads}");
        }
        assert!(!first.fallback);
        assert!(policy.candidates.contains(&first.tile));
    }

    #[test]
    fn tile_selection_varies_with_seed_only_on_near_ties() {
        // A mask where all candidates score within the tie window would
        // let the seed pick; different (S, sparsity) signatures must
        // still be internally deterministic for each seed.
        let mask = StructuredMask::builder(256, 256).window(16).build().unwrap();
        for seed in [0u64, 1, 99] {
            let policy = TilePolicy {
                seed,
                ..TilePolicy::default()
            };
            let a = select_tile_size(&policy, &mask).unwrap();
            let b = select_tile_size(&policy, &mask).unwrap();
            assert_eq!(a, b, "seed {seed} not reproducible");
        }
    }

    #[test]
    fn tile_selection_degenerate_inputs_fall_back() {
        // Problem smaller than every candidate: clamped fallback, no panic.
        let tiny = StructuredMask::dense_causal(3, 3);
        let choice = select_tile_size(&TilePolicy::default(), &tiny).unwrap();
        assert!(choice.fallback);
        assert_eq!(choice.tile, 3);
        // Empty mask (window 0, nothing else): valid fallback tile.
        let empty = StructuredMask::builder(32, 32).window(0).build().unwrap();
        assert_eq!(empty.nnz(), 0);
        let choice = select_tile_size(&TilePolicy::default(), &empty).unwrap();
        assert!(choice.fallback);
        assert!(choice.tile >= 1 && choice.tile <= MAX_TILE);
    }

    #[test]
    fn tile_selection_invalid_policy_is_typed_error() {
        let mask = StructuredMask::dense_causal(16, 16);
        let empty = TilePolicy {
            candidates: vec![],
            ..TilePolicy::default()
        };
        assert!(matches!(
            select_tile_size(&empty, &mask),
            Err(SampleAttentionError::InvalidConfig { .. })
        ));
        let oversized = TilePolicy {
            candidates: vec![16, MAX_TILE + 1],
            ..TilePolicy::default()
        };
        assert!(matches!(
            select_tile_size(&oversized, &mask),
            Err(SampleAttentionError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn window_smooths_adjustments() {
        let (q, k, v) = dense_qk(128);
        let autotune = AutotuneConfig {
            density_budget: 0.2,
            window: 5,
            ..AutotuneConfig::default()
        };
        let mut attn =
            AdaptiveSampleAttention::new(SampleAttentionConfig::paper_default(), autotune).unwrap();
        attn.run_n(&q, &k, &v, 4).unwrap();
        // Fewer observations than the window: no adjustment yet.
        assert_eq!(attn.tuner().adjustments(), 0);
        attn.run_n(&q, &k, &v, 1).unwrap();
        assert_eq!(attn.tuner().adjustments(), 1);
    }
}
