//! Runtime hyper-parameter autotuning (the paper's Appendix A.6 future
//! work: "we aim to implement autotuning of these hyperparameters during
//! task runtime, enabling SampleAttention to consistently achieve high
//! accuracy and low latency across diverse sequence lengths and
//! scenarios").
//!
//! [`RuntimeAutotuner`] is a deterministic feedback controller over the
//! CRA threshold `α`: every forward reports its achieved mask density
//! (the latency proxy) and covered sampled mass (the quality proxy); the
//! controller nudges `α` down while the density exceeds a latency budget
//! and back up when there is headroom, within safety bounds.
//! [`AdaptiveSampleAttention`] wraps the base operator with the
//! controller in the loop.

use sa_tensor::{Matrix, TensorError};

use crate::{
    SampleAttention, SampleAttentionConfig, SampleAttentionError, SampleAttentionOutput,
    SampleAttentionStats,
};

/// Configuration of the runtime `α` controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneConfig {
    /// Mask-density budget the controller steers towards (latency SLO
    /// proxy; e.g. 0.3 = at most 30 % of the causal triangle computed).
    pub density_budget: f64,
    /// Lower bound on `α` (quality floor).
    pub min_alpha: f32,
    /// Upper bound on `α`.
    pub max_alpha: f32,
    /// Multiplicative step applied to `1 - α` per adjustment.
    pub step: f32,
    /// Observations between adjustments (smoothing window).
    pub window: usize,
}

sa_json::impl_json_struct!(AutotuneConfig {
    density_budget,
    min_alpha,
    max_alpha,
    step,
    window
});

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            density_budget: 0.5,
            min_alpha: 0.80,
            max_alpha: 0.99,
            step: 1.3,
            window: 4,
        }
    }
}

/// Deterministic runtime controller over the CRA threshold.
#[derive(Debug, Clone)]
pub struct RuntimeAutotuner {
    config: AutotuneConfig,
    alpha: f32,
    pending: Vec<f64>,
    adjustments: usize,
}

impl RuntimeAutotuner {
    /// Creates the controller starting from `initial_alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`SampleAttentionError::InvalidConfig`] if the bounds are
    /// inconsistent or `initial_alpha` lies outside them.
    pub fn new(initial_alpha: f32, config: AutotuneConfig) -> Result<Self, SampleAttentionError> {
        if !(config.min_alpha > 0.0
            && config.min_alpha < config.max_alpha
            && config.max_alpha < 1.0)
        {
            return Err(SampleAttentionError::InvalidConfig {
                field: "autotune bounds",
                why: format!(
                    "need 0 < min_alpha < max_alpha < 1, got [{}, {}]",
                    config.min_alpha, config.max_alpha
                ),
            });
        }
        if !(config.density_budget > 0.0 && config.density_budget <= 1.0) {
            return Err(SampleAttentionError::InvalidConfig {
                field: "density_budget",
                why: format!("must be in (0, 1], got {}", config.density_budget),
            });
        }
        if !(initial_alpha >= config.min_alpha && initial_alpha <= config.max_alpha) {
            return Err(SampleAttentionError::InvalidConfig {
                field: "initial_alpha",
                why: format!(
                    "{initial_alpha} outside [{}, {}]",
                    config.min_alpha, config.max_alpha
                ),
            });
        }
        Ok(RuntimeAutotuner {
            config,
            alpha: initial_alpha,
            pending: Vec::new(),
            adjustments: 0,
        })
    }

    /// The current `α`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Number of adjustments made so far.
    pub fn adjustments(&self) -> usize {
        self.adjustments
    }

    /// Feeds one forward's statistics into the controller.
    pub fn observe(&mut self, stats: &SampleAttentionStats) {
        self.pending.push(stats.mask_density);
        if self.pending.len() < self.config.window {
            return;
        }
        let mean: f64 = self.pending.iter().sum::<f64>() / self.pending.len() as f64;
        self.pending.clear();
        let slack = 1.0 - self.alpha;
        let new_alpha = if mean > self.config.density_budget {
            // Too dense → loosen the CRA requirement.
            1.0 - slack * self.config.step
        } else if mean < 0.7 * self.config.density_budget {
            // Headroom → tighten for quality.
            1.0 - slack / self.config.step
        } else {
            self.alpha
        };
        let clamped = new_alpha.clamp(self.config.min_alpha, self.config.max_alpha);
        if (clamped - self.alpha).abs() > f32::EPSILON {
            self.adjustments += 1;
            self.alpha = clamped;
        }
    }
}

/// SampleAttention with the runtime controller in the loop.
#[derive(Debug, Clone)]
pub struct AdaptiveSampleAttention {
    base: SampleAttentionConfig,
    tuner: RuntimeAutotuner,
}

impl AdaptiveSampleAttention {
    /// Wraps a base configuration with a controller.
    ///
    /// # Errors
    ///
    /// Propagates controller validation errors.
    pub fn new(
        base: SampleAttentionConfig,
        autotune: AutotuneConfig,
    ) -> Result<Self, SampleAttentionError> {
        let initial = base
            .cra_threshold
            .clamp(autotune.min_alpha, autotune.max_alpha);
        Ok(AdaptiveSampleAttention {
            base,
            tuner: RuntimeAutotuner::new(initial, autotune)?,
        })
    }

    /// The controller's current `α`.
    pub fn alpha(&self) -> f32 {
        self.tuner.alpha()
    }

    /// Access to the controller.
    pub fn tuner(&self) -> &RuntimeAutotuner {
        &self.tuner
    }

    /// Runs a forward at the current `α`, then updates the controller.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn forward(
        &mut self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<SampleAttentionOutput, SampleAttentionError> {
        let config = SampleAttentionConfig {
            cra_threshold: self.tuner.alpha(),
            ..self.base
        };
        let out = SampleAttention::new(config).forward(q, k, v)?;
        self.tuner.observe(&out.stats);
        Ok(out)
    }
}

/// Convenience: validates shapes the same way the base operator does.
impl AdaptiveSampleAttention {
    /// Runs `n` forwards on the same tensors (useful in tests/benches to
    /// watch the controller converge).
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn run_n(
        &mut self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        n: usize,
    ) -> Result<Vec<f32>, TensorError> {
        let mut alphas = Vec::with_capacity(n);
        for _ in 0..n {
            self.forward(q, k, v).map_err(|e| match e {
                SampleAttentionError::Tensor(t) => t,
                other => TensorError::InvalidDimension {
                    op: "AdaptiveSampleAttention::run_n",
                    what: other.to_string(),
                },
            })?;
            alphas.push(self.alpha());
        }
        Ok(alphas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_tensor::DeterministicRng;

    fn dense_qk(s: usize) -> (Matrix, Matrix, Matrix) {
        // Random heads: the adaptive mask stays dense at high alpha.
        let mut rng = DeterministicRng::new(5);
        (
            rng.normal_matrix(s, 16, 1.0),
            rng.normal_matrix(s, 16, 1.0),
            rng.normal_matrix(s, 16, 1.0),
        )
    }

    #[test]
    fn controller_lowers_alpha_under_budget_pressure() {
        let (q, k, v) = dense_qk(256);
        let autotune = AutotuneConfig {
            density_budget: 0.3,
            window: 2,
            ..AutotuneConfig::default()
        };
        let mut attn =
            AdaptiveSampleAttention::new(SampleAttentionConfig::paper_default(), autotune).unwrap();
        let start = attn.alpha();
        let alphas = attn.run_n(&q, &k, &v, 12).unwrap();
        assert!(
            alphas.last().unwrap() < &start,
            "alpha did not drop: {alphas:?}"
        );
        assert!(attn.tuner().adjustments() >= 1);
        assert!(*alphas.last().unwrap() >= autotune.min_alpha);
    }

    #[test]
    fn controller_respects_bounds() {
        let (q, k, v) = dense_qk(128);
        let autotune = AutotuneConfig {
            density_budget: 0.01, // impossible: slams into min_alpha
            window: 1,
            ..AutotuneConfig::default()
        };
        let mut attn =
            AdaptiveSampleAttention::new(SampleAttentionConfig::paper_default(), autotune).unwrap();
        let alphas = attn.run_n(&q, &k, &v, 20).unwrap();
        assert!((alphas.last().unwrap() - autotune.min_alpha).abs() < 1e-6);
    }

    #[test]
    fn controller_raises_alpha_with_headroom() {
        // A strongly structured head is already far below budget: the
        // controller should push alpha up toward max for quality.
        let mut rng = DeterministicRng::new(6);
        let s = 256;
        let d = 16;
        let mut k = rng.normal_matrix(s, d, 0.3);
        for j in 0..d {
            let v0 = k.get(0, j);
            k.set(0, j, v0 + 4.0);
        }
        let q = Matrix::from_fn(s, d, |_, _| 0.5 + 0.1 * rng.normal());
        let v = rng.normal_matrix(s, d, 1.0);
        let autotune = AutotuneConfig {
            density_budget: 0.9,
            window: 1,
            ..AutotuneConfig::default()
        };
        let base = SampleAttentionConfig::builder()
            .cra_threshold(0.85)
            .build()
            .unwrap();
        let mut attn = AdaptiveSampleAttention::new(base, autotune).unwrap();
        let alphas = attn.run_n(&q, &k, &v, 10).unwrap();
        assert!(alphas.last().unwrap() > &0.85, "{alphas:?}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad_bounds = AutotuneConfig {
            min_alpha: 0.9,
            max_alpha: 0.8,
            ..AutotuneConfig::default()
        };
        assert!(RuntimeAutotuner::new(0.85, bad_bounds).is_err());
        let bad_budget = AutotuneConfig {
            density_budget: 0.0,
            ..AutotuneConfig::default()
        };
        assert!(RuntimeAutotuner::new(0.9, bad_budget).is_err());
        assert!(RuntimeAutotuner::new(0.5, AutotuneConfig::default()).is_err());
    }

    #[test]
    fn window_smooths_adjustments() {
        let (q, k, v) = dense_qk(128);
        let autotune = AutotuneConfig {
            density_budget: 0.2,
            window: 5,
            ..AutotuneConfig::default()
        };
        let mut attn =
            AdaptiveSampleAttention::new(SampleAttentionConfig::paper_default(), autotune).unwrap();
        attn.run_n(&q, &k, &v, 4).unwrap();
        // Fewer observations than the window: no adjustment yet.
        assert_eq!(attn.tuner().adjustments(), 0);
        attn.run_n(&q, &k, &v, 1).unwrap();
        assert_eq!(attn.tuner().adjustments(), 1);
    }
}
