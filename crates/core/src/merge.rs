//! Mask merging: `M_Merged = merge_mask(I_KV_per_head, r_w)`.
//!
//! Combines the stage-2 stripe indices with the tuned local window (and
//! any forced sinks) into the [`StructuredMask`] the sparse kernel
//! consumes. The "bottom area" of the paper's Figure 3 — the causal
//! diagonal region every query must keep — is the window's job; the
//! merge guarantees a nonzero window so no query row is left empty.

use sa_kernels::{StructuredMask, TiledMask};
use sa_tensor::TensorError;

use crate::SampleAttentionConfig;

/// Builds the merged structured mask for an `s_q x s_k` problem from the
/// selected stripe indices and the config's window/sink settings.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] if any stripe index is out of
/// range (`>= s_k`).
///
/// # Example
///
/// ```
/// use sa_core::{merge_mask, SampleAttentionConfig};
///
/// # fn main() -> Result<(), sa_tensor::TensorError> {
/// let cfg = SampleAttentionConfig::paper_default();
/// let mask = merge_mask(128, 128, &[3, 40, 77], &cfg)?;
/// assert!(mask.is_allowed(100, 40));          // stripe
/// assert!(mask.is_allowed(100, 95));          // window (8% of 128 ≈ 11)
/// assert_eq!(mask.window(), 11);              // ceil(0.08 * 128)
/// # Ok(())
/// # }
/// ```
pub fn merge_mask(
    s_q: usize,
    s_k: usize,
    kv_indices: &[usize],
    config: &SampleAttentionConfig,
) -> Result<StructuredMask, TensorError> {
    merge_mask_with_diagonals(s_q, s_k, kv_indices, &[], config)
}

/// [`merge_mask`] plus explicit relative diagonal offsets (the Appendix
/// A.6 extension pattern).
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] if any stripe index is out
/// of range.
pub fn merge_mask_with_diagonals(
    s_q: usize,
    s_k: usize,
    kv_indices: &[usize],
    diagonals: &[usize],
    config: &SampleAttentionConfig,
) -> Result<StructuredMask, TensorError> {
    StructuredMask::builder(s_q, s_k)
        .window(config.window_size(s_k))
        .sinks(config.forced_sinks)
        .columns(kv_indices.to_vec())
        .diagonals(diagonals.to_vec())
        .dense_tail_rows(config.bottom_area_rows)
        .build()
}

/// [`merge_mask_with_diagonals`] followed by block-CSR tiling: builds
/// the merged mask and lays it out in `tile × tile` blocks for the
/// tiled sparse kernel. Tiling is pure bookkeeping — the tiled layout
/// carries exactly the merged mask's live set (`nnz` preserved, dense
/// expansions equal).
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] if any stripe index is out
/// of range, the tile is outside `1..=MAX_TILE`, or the problem has a
/// zero dimension.
pub fn merge_mask_tiled(
    s_q: usize,
    s_k: usize,
    kv_indices: &[usize],
    diagonals: &[usize],
    config: &SampleAttentionConfig,
    tile: usize,
) -> Result<TiledMask, TensorError> {
    let mask = merge_mask_with_diagonals(s_q, s_k, kv_indices, diagonals, config)?;
    TiledMask::build(mask, tile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window_ratio: f32) -> SampleAttentionConfig {
        SampleAttentionConfig::builder()
            .window_ratio(window_ratio)
            .build()
            .unwrap()
    }

    #[test]
    fn merges_window_and_stripes() {
        let mask = merge_mask(100, 100, &[10, 50], &cfg(0.08)).unwrap();
        assert_eq!(mask.window(), 8);
        // Row 50 is above the bottom area: window + stripes only.
        assert!(mask.is_allowed(50, 10));
        assert!(mask.is_allowed(50, 50));
        assert!(mask.is_allowed(50, 45));
        assert!(!mask.is_allowed(50, 30));
    }

    #[test]
    fn bottom_area_rows_are_dense() {
        // The last `bottom_area_rows` rows (Figure 3's bottom area)
        // attend to every causal key.
        let mask = merge_mask(100, 100, &[], &cfg(0.08)).unwrap();
        assert!(mask.is_allowed(99, 30));
        assert!(mask.is_allowed(99, 0));
        assert!(mask.is_allowed(69, 0)); // 100 - 32 = 68: row 69 is dense
        assert!(!mask.is_allowed(50, 0));
        assert_eq!(mask.dense_tail_rows(), 32);
    }

    #[test]
    fn min_window_guarantees_nonempty_rows() {
        let c = SampleAttentionConfig::builder()
            .window_ratio(0.0)
            .min_window(1)
            .build()
            .unwrap();
        let mask = merge_mask(16, 16, &[], &c).unwrap();
        for i in 0..16 {
            assert!(mask.row_nnz(i) >= 1, "row {i} empty");
        }
    }

    #[test]
    fn forced_sinks_present() {
        let c = SampleAttentionConfig::builder().forced_sinks(4).build().unwrap();
        let mask = merge_mask(64, 64, &[], &c).unwrap();
        for s in 0..4 {
            assert!(mask.is_allowed(63, s));
        }
    }

    #[test]
    fn out_of_range_stripe_rejected() {
        assert!(merge_mask(8, 8, &[8], &cfg(0.1)).is_err());
    }

    #[test]
    fn rectangular_merge() {
        let mask = merge_mask(4, 32, &[2], &cfg(0.25)).unwrap();
        assert_eq!(mask.window(), 8);
        assert!(mask.is_allowed(0, 2));
        assert!(!mask.is_allowed(0, 30)); // non-causal for row 0 (end = 28)
        assert!(mask.is_allowed(3, 31));
    }

    /// Golden occupancy: a 128-row merge with stripes and a diagonal at
    /// tile 32 preserves nnz exactly and produces all three tile
    /// classes in known quantities.
    #[test]
    fn tiled_merge_preserves_nnz_with_known_occupancy() {
        let config = SampleAttentionConfig::builder()
            .window_ratio(0.5)
            .forced_sinks(2)
            .bottom_area_rows(8)
            .build()
            .unwrap();
        let mask =
            merge_mask_with_diagonals(128, 128, &[4, 40], &[90], &config).unwrap();
        let tiled = merge_mask_tiled(128, 128, &[4, 40], &[90], &config, 32).unwrap();
        assert_eq!(tiled.nnz(), mask.nnz(), "tiling must preserve the live set");
        assert_eq!(tiled.q_tiles(), 4);
        // Known occupancy of the 4x4 tile grid (10 of 16 tiles live,
        // 6 empty above the causal diagonal or between window and
        // sinks): the 64-wide window fully covers one sub-diagonal
        // tile per query tile from qt1 on (3 Full); each query tile's
        // diagonal tile is a causal clip plus qt1's second band tile
        // (4 Window); sinks {0,1}, stripe 4 below the window, and
        // diagonal-offset 90 keys force bitmaps in the low key tiles
        // of qt2/qt3, and stripe 40 drops below the window inside
        // qt3's kt1 (3 Bitmap).
        assert_eq!(tiled.class_counts(), (3, 4, 3));
        assert_eq!(tiled.tile_count(), 10);
        assert_eq!(tiled.expand(), mask.to_dense());
    }

    /// Round trip at awkward tile sizes: S not divisible by the tile,
    /// single-element tiles, and a tile wider than the bottom area.
    #[test]
    fn tiled_merge_round_trip_awkward_tiles() {
        let config = SampleAttentionConfig::builder()
            .window_ratio(0.1)
            .bottom_area_rows(5)
            .build()
            .unwrap();
        for tile in [1, 3, 13, 64] {
            let mask = merge_mask_with_diagonals(50, 50, &[7, 21], &[], &config).unwrap();
            let tiled = merge_mask_tiled(50, 50, &[7, 21], &[], &config, tile).unwrap();
            assert_eq!(tiled.nnz(), mask.nnz(), "nnz drift at tile={tile}");
            assert_eq!(tiled.expand(), mask.to_dense(), "expand drift at tile={tile}");
        }
    }

    #[test]
    fn tiled_merge_rejects_bad_tile() {
        let config = SampleAttentionConfig::paper_default();
        assert!(merge_mask_tiled(32, 32, &[], &[], &config, 0).is_err());
        assert!(merge_mask_tiled(32, 32, &[], &[], &config, 65).is_err());
    }
}
