//! # sa-core
//!
//! The paper's primary contribution: **SampleAttention**, an adaptive
//! structured sparse attention that replaces full attention at the prefill
//! stage with near-lossless accuracy.
//!
//! The pipeline (Algorithm 1 of the paper):
//!
//! 1. **Stage 1 — query-guided attention sampling** ([`sampling`]):
//!    compute exact attention scores for a strided `r_row` sample of the
//!    query rows and accumulate them along columns (a fused
//!    bmm+softmax+reduction).
//! 2. **Stage 2 — score-based key-value filtering** ([`filtering`]):
//!    sort the accumulated column scores, prefix-sum, and `searchsorted`
//!    against the CRA threshold `α` to select the minimal per-head stripe
//!    set `I_KV` (attention sinks are discovered automatically).
//! 3. **Mask merging + sparse compute** ([`merge`], [`SampleAttention`]):
//!    merge `I_KV` with a local window of `⌈r_w% · S_k⌉` tokens into a
//!    [`sa_kernels::StructuredMask`] and run the block-sparse flash
//!    kernel.
//!
//! The crate also implements the paper's analysis machinery: the
//! **cumulative residual attention** (CRA, Definition 2) and **sparsity
//! degree** (SD, Definition 1) metrics ([`cra`], [`sparsity`]), numeric
//! checkers for Theorem 1 / Lemma 1 ([`theory`]), and the offline
//! hyper-parameter tuner (Table 1) ([`tuner`]).
//!
//! ## Example
//!
//! ```
//! use sa_core::{SampleAttention, SampleAttentionConfig};
//! use sa_tensor::DeterministicRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = DeterministicRng::new(7);
//! let (s, d) = (256, 16);
//! let q = rng.normal_matrix(s, d, 1.0);
//! let k = rng.normal_matrix(s, d, 1.0);
//! let v = rng.normal_matrix(s, d, 1.0);
//!
//! let cfg = SampleAttentionConfig::builder()
//!     .cra_threshold(0.95)
//!     .sample_ratio(0.05)
//!     .window_ratio(0.08)
//!     .build()?;
//! let attn = SampleAttention::new(cfg);
//! let result = attn.forward(&q, &k, &v)?;
//! assert_eq!(result.output.shape(), (s, d));
//! assert!(result.mask.density() <= 1.0);
//! # Ok(())
//! # }
//! ```

mod attention;
pub mod autotune;
mod config;
pub mod cra;
mod error;
pub mod filtering;
pub mod ladder;
pub mod merge;
pub mod sampling;
pub mod sparsity;
pub mod theory;
pub mod tuner;

pub use attention::{
    DiscoveredMask, FallbackReason, SampleAttention, SampleAttentionOutput, SampleAttentionStats,
};
pub use autotune::{
    select_tile_size, AdaptiveSampleAttention, AutotuneConfig, RuntimeAutotuner, TileChoice,
    TilePolicy,
};
pub use config::{HealthPolicy, SampleAttentionConfig, SampleAttentionConfigBuilder, SparseKernel};
pub use cra::{cra_of_dense_mask, cra_of_structured_mask, stripe_coverage_curve, StripeCoverage};
pub use error::SampleAttentionError;
pub use filtering::{filter_kv_indices, KvFilterResult, KvRatioSchedule};
pub use ladder::{DegradationReport, DegradationRung, RungAttempt};
pub use merge::{merge_mask, merge_mask_tiled, merge_mask_with_diagonals};
pub use sampling::{sample_attention_scores, SampledScores};
pub use sparsity::{
    optimal_sparsity_degree, pattern_summary, structured_sparsity_degree, PatternSummary,
};
pub use theory::{check_lemma1, check_theorem1, TheoremCheck};
pub use tuner::{HyperParamTuner, ProfilingRequest, TunerGrid, TunerReport, TunerSelection};
