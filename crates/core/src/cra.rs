//! Cumulative residual attention (**CRA**, Definition 2).
//!
//! ```text
//! CRA(M) = min_i Σ_j (M * P)_{ij}
//! ```
//!
//! the minimum over query rows of the attention probability mass retained
//! after sparsification. The paper uses the minimum (not the mean) so that
//! even the worst-recovered row stays near-lossless.

use sa_kernels::{DenseMask, StructuredMask};
use sa_tensor::{Matrix, SaError};

/// CRA of a dense `{0,1}` mask against a probability matrix `p`.
///
/// `p` must already be row-stochastic over the causal region (rows of a
/// causal softmax). Rows of `p` that carry no mass (fully masked rows in
/// rectangular problems) are skipped — they constrain nothing.
///
/// Row totals and kept sums accumulate in f64 so the result stays exact
/// at paper-scale contexts (64K+ keys per row), mirroring the long-context
/// accumulator fixes elsewhere in the pipeline.
///
/// Returns 1.0 for an empty problem (no constraining rows).
///
/// # Errors
///
/// Returns [`SaError::ShapeMismatch`] if the mask shape differs from
/// `p`'s shape.
pub fn cra_of_dense_mask(p: &Matrix, mask: &DenseMask) -> Result<f32, SaError> {
    if (mask.s_q(), mask.s_k()) != p.shape() {
        return Err(SaError::ShapeMismatch {
            op: "cra_of_dense_mask",
            lhs: (mask.s_q(), mask.s_k()),
            rhs: p.shape(),
        });
    }
    let mut min = f64::INFINITY;
    for i in 0..p.rows() {
        let row = p.row(i);
        let total: f64 = row.iter().map(|&v| v as f64).sum();
        if total <= 0.0 {
            continue;
        }
        let kept: f64 = row
            .iter()
            .enumerate()
            .filter(|&(j, _)| mask.get(i, j))
            .map(|(_, &v)| v as f64)
            .sum();
        min = min.min(kept / total);
    }
    if min == f64::INFINITY {
        Ok(1.0)
    } else {
        Ok(min as f32)
    }
}

/// CRA of a [`StructuredMask`] against a probability matrix.
///
/// Semantics match [`cra_of_dense_mask`] on the materialised mask, but the
/// structured form is evaluated directly (window + extras per row) without
/// allocating the dense mask. Accumulation is f64, as above.
///
/// # Errors
///
/// Returns [`SaError::ShapeMismatch`] if the mask shape differs from
/// `p`'s shape.
pub fn cra_of_structured_mask(p: &Matrix, mask: &StructuredMask) -> Result<f32, SaError> {
    if (mask.s_q(), mask.s_k()) != p.shape() {
        return Err(SaError::ShapeMismatch {
            op: "cra_of_structured_mask",
            lhs: (mask.s_q(), mask.s_k()),
            rhs: p.shape(),
        });
    }
    let extras = mask.extra_columns();
    let mut min = f64::INFINITY;
    for i in 0..p.rows() {
        let row = p.row(i);
        let total: f64 = row.iter().map(|&v| v as f64).sum();
        if total <= 0.0 {
            continue;
        }
        let Some(end) = mask.causal_end(i) else {
            continue;
        };
        let win_start = mask.window_start(i);
        let mut kept: f64 = row[win_start..=end].iter().map(|&v| v as f64).sum();
        for &c in extras.iter().take_while(|&&c| c < win_start) {
            kept += row[c] as f64;
        }
        min = min.min(kept / total);
    }
    if min == f64::INFINITY {
        Ok(1.0)
    } else {
        Ok(min as f32)
    }
}

/// One point of the stripe-coverage curve: keeping the top `ratio` of
/// stripe columns (plus the window) achieves `cra`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripeCoverage {
    /// Fraction of key columns kept as stripes.
    pub stripe_ratio: f32,
    /// Achieved CRA.
    pub cra: f32,
}

/// The paper's Figure 2(e) / Table 6 curve: CRA achieved when selecting
/// the top-`ratio` stripe columns ranked by `column_scores`, merged with a
/// local window of `window` tokens.
///
/// `p` is the exact probability matrix; `column_scores` is the ranking
/// signal — pass exact column sums for the "100 % sampling" curve and
/// stage-1 sampled sums for the "5 % sampling" curve.
///
/// # Errors
///
/// Returns [`SaError::ShapeMismatch`] if
/// `column_scores.len() != p.cols()`, and propagates mask-construction
/// errors.
pub fn stripe_coverage_curve(
    p: &Matrix,
    column_scores: &[f32],
    window: usize,
    ratios: &[f32],
) -> Result<Vec<StripeCoverage>, SaError> {
    if column_scores.len() != p.cols() {
        return Err(SaError::ShapeMismatch {
            op: "stripe_coverage_curve",
            lhs: (1, column_scores.len()),
            rhs: p.shape(),
        });
    }
    let s_k = p.cols();
    let order = sa_tensor::argsort_desc(column_scores);
    ratios
        .iter()
        .map(|&ratio| {
            let k = ((ratio.clamp(0.0, 1.0) * s_k as f32).round() as usize).min(s_k);
            let cols: Vec<usize> = order[..k].to_vec();
            let mask = StructuredMask::builder(p.rows(), s_k)
                .window(window)
                .columns(cols)
                .build()?;
            Ok(StripeCoverage {
                stripe_ratio: ratio,
                cra: cra_of_structured_mask(p, &mask)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::attention_probs;
    use sa_tensor::{col_sum, DeterministicRng};

    fn probs(s: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = DeterministicRng::new(seed);
        let q = rng.normal_matrix(s, d, 1.0);
        let k = rng.normal_matrix(s, d, 1.0);
        attention_probs(&q, &k, true).unwrap()
    }

    #[test]
    fn full_mask_has_cra_one() {
        let p = probs(20, 8, 1);
        let dense = DenseMask::causal(20, 20);
        assert!((cra_of_dense_mask(&p, &dense).unwrap() - 1.0).abs() < 1e-5);
        let structured = StructuredMask::dense_causal(20, 20);
        assert!((cra_of_structured_mask(&p, &structured).unwrap() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_mask_has_cra_zero() {
        let p = probs(10, 4, 2);
        let dense = DenseMask::zeros(10, 10);
        assert_eq!(cra_of_dense_mask(&p, &dense).unwrap(), 0.0);
        let structured = StructuredMask::builder(10, 10).window(0).build().unwrap();
        assert_eq!(cra_of_structured_mask(&p, &structured).unwrap(), 0.0);
    }

    #[test]
    fn structured_matches_dense_oracle() {
        let p = probs(32, 8, 3);
        for (w, sinks, cols) in [
            (4usize, 0usize, vec![10usize, 20]),
            (0, 2, vec![]),
            (8, 1, vec![5, 15, 25]),
        ] {
            let m = StructuredMask::builder(32, 32)
                .window(w)
                .sinks(sinks)
                .columns(cols)
                .build()
                .unwrap();
            let a = cra_of_structured_mask(&p, &m).unwrap();
            let b = cra_of_dense_mask(&p, &m.to_dense()).unwrap();
            assert!((a - b).abs() < 1e-6, "w={w}: {a} vs {b}");
        }
    }

    #[test]
    fn cra_is_monotone_in_mask() {
        let p = probs(24, 8, 4);
        let small = StructuredMask::builder(24, 24).window(2).build().unwrap();
        let big = StructuredMask::builder(24, 24).window(12).build().unwrap();
        assert!(cra_of_structured_mask(&p, &big).unwrap() >= cra_of_structured_mask(&p, &small).unwrap());
    }

    #[test]
    fn cra_uses_minimum_row() {
        // Construct P manually: row 0 keeps 100 %, row 1 keeps 10 %.
        let p = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.1, 0.9]]).unwrap();
        let mut mask = DenseMask::zeros(2, 2);
        mask.set(0, 0, true);
        mask.set(1, 0, true); // keeps only the 0.1 entry of row 1
        let cra = cra_of_dense_mask(&p, &mask).unwrap();
        assert!((cra - 0.1).abs() < 1e-6);
    }

    #[test]
    fn zero_mass_rows_skipped() {
        // Row 1 has no probability mass at all (fully masked rectangular row).
        let p = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.0]]).unwrap();
        let mut mask = DenseMask::zeros(2, 2);
        mask.set(0, 0, true);
        assert!((cra_of_dense_mask(&p, &mask).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn coverage_curve_monotone_and_saturating() {
        let p = probs(64, 8, 5);
        let scores = col_sum(&p);
        let curve = stripe_coverage_curve(&p, &scores, 4, &[0.0, 0.1, 0.25, 0.5, 1.0]).unwrap();
        assert_eq!(curve.len(), 5);
        for w in curve.windows(2) {
            assert!(w[1].cra >= w[0].cra - 1e-6, "{curve:?}");
        }
        assert!((curve.last().unwrap().cra - 1.0).abs() < 1e-5);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let p = probs(8, 4, 7);
        let dense = DenseMask::zeros(9, 8);
        assert!(matches!(
            cra_of_dense_mask(&p, &dense),
            Err(SaError::ShapeMismatch {
                op: "cra_of_dense_mask",
                ..
            })
        ));
        let structured = StructuredMask::builder(8, 9).window(2).build().unwrap();
        assert!(matches!(
            cra_of_structured_mask(&p, &structured),
            Err(SaError::ShapeMismatch {
                op: "cra_of_structured_mask",
                ..
            })
        ));
        let scores = vec![1.0f32; 7];
        assert!(matches!(
            stripe_coverage_curve(&p, &scores, 2, &[0.5]),
            Err(SaError::ShapeMismatch {
                op: "stripe_coverage_curve",
                ..
            })
        ));
    }

    #[test]
    fn long_context_row_sums_use_f64_accumulators() {
        // 64K keys per row with magnitudes chosen so a running f32
        // accumulator drifts by ~1e-3 while f64 stays exact: the kept/total
        // ratio must agree with an f64 reference to well below that drift.
        let s_k = 64 * 1024;
        let p = Matrix::from_fn(2, s_k, |i, j| 1e-4 * (1 + (i + j) % 7) as f32);
        let mut mask = DenseMask::zeros(2, s_k);
        for i in 0..2 {
            for j in (0..s_k).step_by(2) {
                mask.set(i, j, true);
            }
        }
        let mut expected = f64::INFINITY;
        for i in 0..2 {
            let mut total = 0.0f64;
            let mut kept = 0.0f64;
            for (j, &v) in p.row(i).iter().enumerate() {
                total += v as f64;
                if mask.get(i, j) {
                    kept += v as f64;
                }
            }
            expected = expected.min(kept / total);
        }
        let cra = cra_of_dense_mask(&p, &mask).unwrap();
        assert!(
            (cra as f64 - expected).abs() < 1e-6,
            "dense: {cra} vs f64 reference {expected}"
        );

        // Structured path over the same context length: window + sinks,
        // checked against the same f64 reference on the materialised mask.
        let m = StructuredMask::builder(2, s_k)
            .window(s_k / 2)
            .sinks(3)
            .build()
            .unwrap();
        let dense_m = m.to_dense();
        let mut expected_s = f64::INFINITY;
        for i in 0..2 {
            let mut total = 0.0f64;
            let mut kept = 0.0f64;
            for (j, &v) in p.row(i).iter().enumerate() {
                total += v as f64;
                if dense_m.get(i, j) {
                    kept += v as f64;
                }
            }
            expected_s = expected_s.min(kept / total);
        }
        let cra_s = cra_of_structured_mask(&p, &m).unwrap();
        assert!(
            (cra_s as f64 - expected_s).abs() < 1e-6,
            "structured: {cra_s} vs f64 reference {expected_s}"
        );
    }

    #[test]
    fn coverage_curve_window_only_floor() {
        let p = probs(32, 8, 6);
        let scores = col_sum(&p);
        let curve = stripe_coverage_curve(&p, &scores, 8, &[0.0]).unwrap();
        // Window alone retains some mass on every row.
        assert!(curve[0].cra > 0.0);
        assert!(curve[0].cra < 1.0);
    }
}
