//! Stage 1: **query-guided attention sampling**.
//!
//! Computes exact attention scores for a strided sample of the query rows
//! and accumulates them along columns — the paper's fused
//! `sample_bmm_softmax_reduction(Q, K, r_row)`. The column-stripe pattern
//! (high row-wise similarity of score distributions, Figure 2(e)) is what
//! makes a small sample representative of all rows.

use sa_kernels::{score_scale, CostReport};
use sa_tensor::{softmax_row, Matrix, StrideSample, TensorError};

use crate::sparsity::causal_width;

/// Result of stage-1 sampling.
#[derive(Debug, Clone)]
pub struct SampledScores {
    /// Attention probability mass accumulated per key column over the
    /// sampled rows (the `SampleWeight` reduction of Algorithm 1).
    pub column_scores: Vec<f32>,
    /// Attention probability mass accumulated per *relative diagonal*
    /// offset (0 = the causal end itself). This is the reduction needed
    /// to detect Appendix A.6's diagonal structures; it reuses the same
    /// sampled scores, so the extra cost is one more accumulate per live
    /// pair.
    pub diagonal_scores: Vec<f32>,
    /// The sampled query row indices.
    pub sampled_rows: Vec<usize>,
    /// Exact cost of the fused sampling kernel.
    pub cost: CostReport,
}

impl SampledScores {
    /// Total accumulated mass (≈ number of sampled rows with nonzero
    /// causal width, since each sampled row contributes a probability
    /// distribution).
    pub fn total_mass(&self) -> f32 {
        self.column_scores.iter().sum()
    }

    /// Column scores normalised to sum to 1 (empty if there is no mass).
    pub fn normalized(&self) -> Vec<f32> {
        let total = self.total_mass();
        if total <= 0.0 {
            return vec![0.0; self.column_scores.len()];
        }
        self.column_scores.iter().map(|&v| v / total).collect()
    }
}

/// Runs stage-1 sampling: strided rows, exact causal softmax per sampled
/// row, column accumulation.
///
/// The kernel is *fused*: scores for one sampled row live only in a
/// register-sized buffer, so the memory traffic is the Q/K reads plus the
/// final `S_k` column-score write — this is exactly the IO the paper's
/// fused `bmm+softmax+reduction` performs and what makes stage 1 cheap.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `q.cols() != k.cols()`, or an
/// invalid-ratio error from the row sampler.
///
/// # Example
///
/// ```
/// use sa_core::sampling::sample_attention_scores;
/// use sa_tensor::DeterministicRng;
///
/// # fn main() -> Result<(), sa_tensor::TensorError> {
/// let mut rng = DeterministicRng::new(0);
/// let q = rng.normal_matrix(128, 8, 1.0);
/// let k = rng.normal_matrix(128, 8, 1.0);
/// let sampled = sample_attention_scores(&q, &k, 0.05)?;
/// assert_eq!(sampled.column_scores.len(), 128);
/// assert!(sampled.sampled_rows.len() < 20);
/// # Ok(())
/// # }
/// ```
pub fn sample_attention_scores(
    q: &Matrix,
    k: &Matrix,
    sample_ratio: f32,
) -> Result<SampledScores, TensorError> {
    if q.cols() != k.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "sample_attention_scores",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    let (s_q, d) = q.shape();
    let s_k = k.rows();
    let sample = StrideSample::by_ratio(s_q, sample_ratio)?;
    let scale = score_scale(d);

    let mut column_scores = vec![0.0f32; s_k];
    let mut diagonal_scores = vec![0.0f32; s_k];
    let mut scores_buf: Vec<f32> = Vec::with_capacity(s_k);
    let mut live_pairs: u64 = 0;

    for &i in sample.indices() {
        let visible = causal_width(i, s_q, s_k);
        if visible == 0 {
            continue;
        }
        let q_row = q.row(i);
        scores_buf.clear();
        scores_buf.extend((0..visible).map(|j| {
            q_row
                .iter()
                .zip(k.row(j))
                .map(|(a, b)| a * b)
                .sum::<f32>()
                * scale
        }));
        softmax_row(&mut scores_buf);
        for (j, (acc, &p)) in column_scores.iter_mut().zip(scores_buf.iter()).enumerate() {
            *acc += p;
            diagonal_scores[visible - 1 - j] += p;
        }
        live_pairs += visible as u64;
    }

    // Fused kernel cost: Q sample rows + visible K rows read, column
    // scores written once. (2d for the dot product, ~4 for softmax, 1 for
    // the accumulate per live pair.) K reads are shared across the
    // sampled rows of a tile (128-row tiles, as in the sparse kernel).
    let flops = live_pairs * (2 * d as u64 + 5);
    let bytes_read =
        4 * (sample.len() * d) as u64 + (4 * live_pairs * d as u64).div_ceil(128);
    let bytes_written = 4 * s_k as u64;
    let cost = CostReport::launch(flops, bytes_read, bytes_written);

    Ok(SampledScores {
        column_scores,
        diagonal_scores,
        sampled_rows: sample.indices().to_vec(),
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::attention_probs;
    use sa_tensor::{col_sum, cosine_similarity, DeterministicRng};

    fn qk(s: usize, d: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (rng.normal_matrix(s, d, 1.0), rng.normal_matrix(s, d, 1.0))
    }

    #[test]
    fn full_ratio_matches_exact_column_sums() {
        let (q, k) = qk(40, 8, 1);
        let sampled = sample_attention_scores(&q, &k, 1.0).unwrap();
        let p = attention_probs(&q, &k, true).unwrap();
        let exact = col_sum(&p);
        for (a, b) in sampled.column_scores.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn each_sampled_row_contributes_unit_mass() {
        let (q, k) = qk(64, 8, 2);
        let sampled = sample_attention_scores(&q, &k, 0.1).unwrap();
        let expected = sampled.sampled_rows.len() as f32;
        assert!((sampled.total_mass() - expected).abs() < 1e-3);
    }

    #[test]
    fn sampled_scores_correlate_with_exact_on_striped_heads() {
        // The core empirical claim (Appendix A.5): a 5 % sample ranks
        // columns almost like the full matrix does, because column stripes
        // are shared across rows.
        let mut rng = DeterministicRng::new(3);
        let s = 400;
        let d = 16;
        let mut k = rng.normal_matrix(s, d, 0.3);
        for &hot in &[0usize, 133, 250] {
            for j in 0..d {
                let v = k.get(hot, j);
                k.set(hot, j, v + 3.0);
            }
        }
        let q = Matrix::from_fn(s, d, |_, _| 0.5 + 0.1 * rng.normal());
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        let p = attention_probs(&q, &k, true).unwrap();
        let exact = col_sum(&p);
        let total: f32 = exact.iter().sum();
        let exact_norm: Vec<f32> = exact.iter().map(|v| v / total).collect();
        let sim = cosine_similarity(&sampled.normalized(), &exact_norm);
        assert!(sim > 0.95, "cosine similarity {sim}");
    }

    #[test]
    fn sampled_scores_roughly_track_exact_even_on_random_heads() {
        // Random (worst-case, unstructured) heads: the sample still
        // captures the causal column-mass ramp, just less sharply.
        let (q, k) = qk(400, 16, 3);
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        let p = attention_probs(&q, &k, true).unwrap();
        let exact = col_sum(&p);
        let total: f32 = exact.iter().sum();
        let exact_norm: Vec<f32> = exact.iter().map(|v| v / total).collect();
        let sim = cosine_similarity(&sampled.normalized(), &exact_norm);
        assert!(sim > 0.7, "cosine similarity {sim}");
    }

    #[test]
    fn sampling_cost_much_cheaper_than_full() {
        let (q, k) = qk(256, 16, 4);
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        let full = sample_attention_scores(&q, &k, 1.0).unwrap();
        assert!(sampled.cost.flops * 10 < full.cost.flops);
        assert_eq!(sampled.cost.kernel_launches, 1); // fused
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (q, _) = qk(8, 4, 5);
        let k = Matrix::zeros(8, 6);
        assert!(sample_attention_scores(&q, &k, 0.5).is_err());
    }

    #[test]
    fn invalid_ratio_rejected() {
        let (q, k) = qk(8, 4, 6);
        assert!(sample_attention_scores(&q, &k, 0.0).is_err());
    }

    #[test]
    fn rectangular_kv_longer() {
        let mut rng = DeterministicRng::new(7);
        let q = rng.normal_matrix(8, 4, 1.0);
        let k = rng.normal_matrix(32, 4, 1.0);
        let sampled = sample_attention_scores(&q, &k, 1.0).unwrap();
        assert_eq!(sampled.column_scores.len(), 32);
        let p = attention_probs(&q, &k, true).unwrap();
        let exact = col_sum(&p);
        for (a, b) in sampled.column_scores.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn normalized_sums_to_one() {
        let (q, k) = qk(32, 8, 8);
        let s = sample_attention_scores(&q, &k, 0.2).unwrap();
        let n = s.normalized();
        assert!((n.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn zero_rows_yield_empty_scores() {
        let q = Matrix::zeros(0, 4);
        let k = Matrix::zeros(16, 4);
        let s = sample_attention_scores(&q, &k, 0.5).unwrap();
        assert!(s.sampled_rows.is_empty());
        assert_eq!(s.total_mass(), 0.0);
        assert!(s.normalized().iter().all(|&v| v == 0.0));
    }
}
