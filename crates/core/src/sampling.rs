//! Stage 1: **query-guided attention sampling**.
//!
//! Computes exact attention scores for a strided sample of the query rows
//! and accumulates them along columns — the paper's fused
//! `sample_bmm_softmax_reduction(Q, K, r_row)`. The column-stripe pattern
//! (high row-wise similarity of score distributions, Figure 2(e)) is what
//! makes a small sample representative of all rows.

use sa_kernels::{score_scale, CostReport};
use sa_tensor::{fault, pool, softmax_row, Matrix, StrideSample, TensorError};

use crate::sparsity::causal_width;

/// Result of stage-1 sampling.
#[derive(Debug, Clone)]
pub struct SampledScores {
    /// Attention probability mass accumulated per key column over the
    /// sampled rows (the `SampleWeight` reduction of Algorithm 1).
    pub column_scores: Vec<f32>,
    /// Attention probability mass accumulated per *relative diagonal*
    /// offset (0 = the causal end itself). This is the reduction needed
    /// to detect Appendix A.6's diagonal structures; it reuses the same
    /// sampled scores, so the extra cost is one more accumulate per live
    /// pair.
    pub diagonal_scores: Vec<f32>,
    /// The sampled query row indices.
    pub sampled_rows: Vec<usize>,
    /// Exact cost of the fused sampling kernel.
    pub cost: CostReport,
}

impl SampledScores {
    /// Total accumulated mass (≈ number of sampled rows with nonzero
    /// causal width, since each sampled row contributes a probability
    /// distribution).
    pub fn total_mass(&self) -> f32 {
        self.column_scores.iter().sum()
    }

    /// Column scores normalised to sum to 1 (empty if there is no mass).
    pub fn normalized(&self) -> Vec<f32> {
        let total = self.total_mass();
        if total <= 0.0 {
            return vec![0.0; self.column_scores.len()];
        }
        self.column_scores.iter().map(|&v| v / total).collect()
    }
}

/// Runs stage-1 sampling: strided rows, exact causal softmax per sampled
/// row, column accumulation.
///
/// The kernel is *fused*: scores for one sampled row live only in a
/// register-sized buffer, so the memory traffic is the Q/K reads plus the
/// final `S_k` column-score write — this is exactly the IO the paper's
/// fused `bmm+softmax+reduction` performs and what makes stage 1 cheap.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `q.cols() != k.cols()`, or an
/// invalid-ratio error from the row sampler.
///
/// # Example
///
/// ```
/// use sa_core::sampling::sample_attention_scores;
/// use sa_tensor::DeterministicRng;
///
/// # fn main() -> Result<(), sa_tensor::TensorError> {
/// let mut rng = DeterministicRng::new(0);
/// let q = rng.normal_matrix(128, 8, 1.0);
/// let k = rng.normal_matrix(128, 8, 1.0);
/// let sampled = sample_attention_scores(&q, &k, 0.05)?;
/// assert_eq!(sampled.column_scores.len(), 128);
/// assert!(sampled.sampled_rows.len() < 20);
/// # Ok(())
/// # }
/// ```
pub fn sample_attention_scores(
    q: &Matrix,
    k: &Matrix,
    sample_ratio: f32,
) -> Result<SampledScores, TensorError> {
    if q.cols() != k.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "sample_attention_scores",
            lhs: q.shape(),
            rhs: k.shape(),
        });
    }
    let (s_q, d) = q.shape();
    let s_k = k.rows();
    let sample = StrideSample::by_ratio(s_q, sample_ratio)?;
    let scale = score_scale(d);

    // Parallel schedule with a serial reduction: sampled rows are
    // processed in fixed batches of SAMPLE_BATCH rows. Within a batch the
    // per-row probability vectors are computed on the worker pool
    // (per-row arithmetic identical to the serial loop, rows are
    // independent); the batch is then folded into the accumulators
    // strictly in sampled-row order. The batch size — and hence every
    // addition's position in the reduction — is independent of the thread
    // count, so the result is bit-identical under any `SA_THREADS`.
    // Memory stays bounded at SAMPLE_BATCH probability vectors.
    //
    // The accumulators are f64 (output stays f32): thousands of sampled
    // rows each add ~`visible` tiny probabilities, the same long-sum
    // regime that moves stage-2's α-threshold under f32 drift.
    const SAMPLE_BATCH: usize = 64;
    let mut column_acc = vec![0.0f64; s_k];
    let mut diagonal_acc = vec![0.0f64; s_k];
    let mut live_pairs: u64 = 0;

    let row_probs = |i: usize| -> Option<(usize, Vec<f32>)> {
        let visible = causal_width(i, s_q, s_k);
        if visible == 0 {
            return None;
        }
        let q_row = q.row(i);
        let mut probs: Vec<f32> = (0..visible)
            .map(|j| {
                q_row
                    .iter()
                    .zip(k.row(j))
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    * scale
            })
            .collect();
        softmax_row(&mut probs);
        Some((visible, probs))
    };
    let grain = pool::row_grain(s_k.max(1) * d.max(1));
    for batch in sample.indices().chunks(SAMPLE_BATCH) {
        let computed =
            pool::try_parallel_map("stage1_sampling", batch.len(), grain, |b| row_probs(batch[b]))?;
        for (visible, probs) in computed.into_iter().flatten() {
            for (j, (acc, &p)) in column_acc.iter_mut().zip(probs.iter()).enumerate() {
                *acc += f64::from(p);
                diagonal_acc[visible - 1 - j] += f64::from(p);
            }
            live_pairs += visible as u64;
        }
    }
    let mut column_scores: Vec<f32> = column_acc.into_iter().map(|v| v as f32).collect();
    let diagonal_scores: Vec<f32> = diagonal_acc.into_iter().map(|v| v as f32).collect();
    // Fault-injection hook: an installed plan with `zero_mass` wipes the
    // accumulated column scores here, exercising the zero-mass sentinel
    // downstream. Inert (a single atomic load) unless a plan is installed.
    fault::tamper_scores("stage1_scores", &mut column_scores);

    // Fused kernel cost: Q sample rows + visible K rows read, column
    // scores written once. (2d for the dot product, ~4 for softmax, 1 for
    // the accumulate per live pair.) K reads are shared across the
    // sampled rows of a tile (128-row tiles, as in the sparse kernel).
    let flops = live_pairs * (2 * d as u64 + 5);
    let bytes_read =
        4 * (sample.len() * d) as u64 + (4 * live_pairs * d as u64).div_ceil(128);
    let bytes_written = 4 * s_k as u64;
    let cost = CostReport::launch(flops, bytes_read, bytes_written);

    Ok(SampledScores {
        column_scores,
        diagonal_scores,
        sampled_rows: sample.indices().to_vec(),
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_kernels::attention_probs;
    use sa_tensor::{col_sum, cosine_similarity, DeterministicRng};

    fn qk(s: usize, d: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = DeterministicRng::new(seed);
        (rng.normal_matrix(s, d, 1.0), rng.normal_matrix(s, d, 1.0))
    }

    #[test]
    fn full_ratio_matches_exact_column_sums() {
        let (q, k) = qk(40, 8, 1);
        let sampled = sample_attention_scores(&q, &k, 1.0).unwrap();
        let p = attention_probs(&q, &k, true).unwrap();
        let exact = col_sum(&p);
        for (a, b) in sampled.column_scores.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn each_sampled_row_contributes_unit_mass() {
        let (q, k) = qk(64, 8, 2);
        let sampled = sample_attention_scores(&q, &k, 0.1).unwrap();
        let expected = sampled.sampled_rows.len() as f32;
        assert!((sampled.total_mass() - expected).abs() < 1e-3);
    }

    #[test]
    fn sampled_scores_correlate_with_exact_on_striped_heads() {
        // The core empirical claim (Appendix A.5): a 5 % sample ranks
        // columns almost like the full matrix does, because column stripes
        // are shared across rows.
        let mut rng = DeterministicRng::new(3);
        let s = 400;
        let d = 16;
        let mut k = rng.normal_matrix(s, d, 0.3);
        for &hot in &[0usize, 133, 250] {
            for j in 0..d {
                let v = k.get(hot, j);
                k.set(hot, j, v + 3.0);
            }
        }
        let q = Matrix::from_fn(s, d, |_, _| 0.5 + 0.1 * rng.normal());
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        let p = attention_probs(&q, &k, true).unwrap();
        let exact = col_sum(&p);
        let total: f32 = exact.iter().sum();
        let exact_norm: Vec<f32> = exact.iter().map(|v| v / total).collect();
        let sim = cosine_similarity(&sampled.normalized(), &exact_norm);
        assert!(sim > 0.95, "cosine similarity {sim}");
    }

    #[test]
    fn sampled_scores_roughly_track_exact_even_on_random_heads() {
        // Random (worst-case, unstructured) heads: the sample still
        // captures the causal column-mass ramp, just less sharply.
        let (q, k) = qk(400, 16, 3);
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        let p = attention_probs(&q, &k, true).unwrap();
        let exact = col_sum(&p);
        let total: f32 = exact.iter().sum();
        let exact_norm: Vec<f32> = exact.iter().map(|v| v / total).collect();
        let sim = cosine_similarity(&sampled.normalized(), &exact_norm);
        assert!(sim > 0.7, "cosine similarity {sim}");
    }

    #[test]
    fn sampling_cost_much_cheaper_than_full() {
        let (q, k) = qk(256, 16, 4);
        let sampled = sample_attention_scores(&q, &k, 0.05).unwrap();
        let full = sample_attention_scores(&q, &k, 1.0).unwrap();
        assert!(sampled.cost.flops * 10 < full.cost.flops);
        assert_eq!(sampled.cost.kernel_launches, 1); // fused
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (q, _) = qk(8, 4, 5);
        let k = Matrix::zeros(8, 6);
        assert!(sample_attention_scores(&q, &k, 0.5).is_err());
    }

    #[test]
    fn invalid_ratio_rejected() {
        let (q, k) = qk(8, 4, 6);
        assert!(sample_attention_scores(&q, &k, 0.0).is_err());
    }

    #[test]
    fn rectangular_kv_longer() {
        let mut rng = DeterministicRng::new(7);
        let q = rng.normal_matrix(8, 4, 1.0);
        let k = rng.normal_matrix(32, 4, 1.0);
        let sampled = sample_attention_scores(&q, &k, 1.0).unwrap();
        assert_eq!(sampled.column_scores.len(), 32);
        let p = attention_probs(&q, &k, true).unwrap();
        let exact = col_sum(&p);
        for (a, b) in sampled.column_scores.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn normalized_sums_to_one() {
        let (q, k) = qk(32, 8, 8);
        let s = sample_attention_scores(&q, &k, 0.2).unwrap();
        let n = s.normalized();
        assert!((n.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn zero_rows_yield_empty_scores() {
        let q = Matrix::zeros(0, 4);
        let k = Matrix::zeros(16, 4);
        let s = sample_attention_scores(&q, &k, 0.5).unwrap();
        assert!(s.sampled_rows.is_empty());
        assert_eq!(s.total_mass(), 0.0);
        assert!(s.normalized().iter().all(|&v| v == 0.0));
    }
}
